//! The paper's analytical success model (§5.3.1) and end-to-end time
//! estimate (§5.3.3), plus a Monte-Carlo validation of the bound.

use hh_sim::rng::SimRng;
use hh_sim::ByteSize;

/// The §5.3.1 bound: with Page Steering and the flip both succeeding, the
/// probability that the rewritten mapping lands on an EPT page is roughly
///
/// ```text
///        VM memory size
///   ---------------------------
///    512 × host memory size
/// ```
///
/// because every 512 sprayed 2 MiB hugepages produce 512 EPT pages out of
/// `host/4 KiB` total pages.
///
/// # Examples
///
/// ```
/// use hh_sim::ByteSize;
/// use hyperhammer::analysis::success_probability;
///
/// // "at the limit, the attacker is expected to succeed once every 512
/// // attack attempts" — when the VM owns all host memory.
/// let p = success_probability(ByteSize::gib(16), ByteSize::gib(16));
/// assert!((p - 1.0 / 512.0).abs() < 1e-12);
/// ```
pub fn success_probability(vm_mem: ByteSize, host_mem: ByteSize) -> f64 {
    vm_mem.bytes() as f64 / (512.0 * host_mem.bytes() as f64)
}

/// Expected number of attack attempts until the first success under the
/// §5.3.1 bound (geometric distribution).
pub fn expected_attempts(vm_mem: ByteSize, host_mem: ByteSize) -> f64 {
    1.0 / success_probability(vm_mem, host_mem)
}

/// The §5.3.3 end-to-end time model: each attempt must re-profile until
/// `bits_per_attempt` exploitable bits are found, which costs
/// `bits_per_attempt / exploitable_total` of a full profile; the expected
/// number of attempts comes from the §5.3.1 bound.
///
/// Returns expected days. With the paper's S1 numbers
/// (72 h, 96 bits, 12 per attempt, 512 attempts) this is 192 days.
///
/// # Examples
///
/// ```
/// use hyperhammer::analysis::expected_end_to_end_days;
///
/// let days = expected_end_to_end_days(72.0, 96, 12, 512.0);
/// assert!((days - 192.0).abs() < 1e-9);
/// let days = expected_end_to_end_days(48.0, 90, 12, 512.0);
/// assert!((days - 136.53).abs() < 0.01);
/// ```
pub fn expected_end_to_end_days(
    full_profile_hours: f64,
    exploitable_total: usize,
    bits_per_attempt: usize,
    expected_attempts: f64,
) -> f64 {
    let per_attempt_profile_hours =
        bits_per_attempt as f64 / exploitable_total as f64 * full_profile_hours;
    per_attempt_profile_hours * expected_attempts / 24.0
}

/// Result of a Monte-Carlo validation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Empirical per-attempt success probability.
    pub empirical_probability: f64,
    /// The analytical §5.3.1 bound for the same configuration.
    pub analytical_probability: f64,
    /// Attempts simulated.
    pub trials: u64,
}

/// Validates the §5.3.1 bound by direct sampling: each trial flips one
/// EPTE PFN bit uniformly and succeeds if the resulting frame is one of
/// the `vm/2 MiB × (pages-per-EPT-ratio)` EPT pages, which are assumed
/// uniformly placed — the model's own assumption ("assuming that bit
/// flips change the mapping to a random page").
pub fn monte_carlo_bound(
    vm_mem: ByteSize,
    host_mem: ByteSize,
    trials: u64,
    seed: u64,
) -> MonteCarloResult {
    let total_pages = host_mem.pages();
    // Spraying the whole VM creates vm/2 MiB EPT pages.
    let ept_pages = vm_mem.huge_pages();
    let mut rng = SimRng::seed_from(seed);
    let mut successes = 0u64;
    for _ in 0..trials {
        // The flipped mapping points at a uniformly random frame.
        let frame = rng.gen_range(0..total_pages);
        if frame < ept_pages {
            // EPT pages occupy `ept_pages` of the frame space; placement
            // is uniform, so any fixed region of that size is equivalent.
            successes += 1;
        }
    }
    MonteCarloResult {
        empirical_probability: successes as f64 / trials as f64,
        analytical_probability: success_probability(vm_mem, host_mem),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_limit_case() {
        // VM == host ⇒ once every 512 attempts.
        let p = success_probability(ByteSize::gib(16), ByteSize::gib(16));
        assert!((p - 1.0 / 512.0).abs() < 1e-15);
        assert!((expected_attempts(ByteSize::gib(16), ByteSize::gib(16)) - 512.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_vm_smaller_probability() {
        let big = success_probability(ByteSize::gib(13), ByteSize::gib(16));
        let small = success_probability(ByteSize::gib(2), ByteSize::gib(16));
        assert!(small < big);
        assert!((big / small - 6.5).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_estimates_match_section_5_3_3() {
        // S1: 12/96 × 72 h = 9 h per profile; 9 × 512 / 24 = 192 days.
        assert!((expected_end_to_end_days(72.0, 96, 12, 512.0) - 192.0).abs() < 1e-9);
        // S2: 12/90 × 48 = 6.4 h; 6.4 × 512 / 24 ≈ 136.5 days (the paper
        // rounds to 137).
        let s2 = expected_end_to_end_days(48.0, 90, 12, 512.0);
        assert!((136.0..138.0).contains(&s2));
    }

    #[test]
    fn monte_carlo_agrees_with_the_bound() {
        let r = monte_carlo_bound(ByteSize::gib(13), ByteSize::gib(16), 2_000_000, 7);
        let rel_err =
            (r.empirical_probability - r.analytical_probability).abs() / r.analytical_probability;
        assert!(rel_err < 0.1, "rel err {rel_err}: {r:?}");
    }

    #[test]
    fn monte_carlo_is_deterministic() {
        let a = monte_carlo_bound(ByteSize::gib(4), ByteSize::gib(16), 100_000, 3);
        let b = monte_carlo_bound(ByteSize::gib(4), ByteSize::gib(16), 100_000, 3);
        assert_eq!(a, b);
    }
}

/// Quantile of the geometric first-success distribution: the attempt
/// index by which success has occurred with probability `q`, given a
/// per-attempt success probability `p`.
///
/// Used to sanity-band Table 3's single-draw attempt counts: with
/// p ≈ 1/300, the central 80 % of campaigns finish between ~30 and
/// ~700 attempts.
///
/// # Panics
///
/// Panics unless `0 < p < 1` and `0 < q < 1`.
///
/// # Examples
///
/// ```
/// use hyperhammer::analysis::first_success_quantile;
///
/// // Median of a geometric with p = 1/512 ≈ 355 attempts.
/// let median = first_success_quantile(1.0 / 512.0, 0.5);
/// assert!((350..360).contains(&median));
/// ```
pub fn first_success_quantile(p: f64, q: f64) -> u64 {
    assert!(p > 0.0 && p < 1.0, "p must be a probability");
    assert!(q > 0.0 && q < 1.0, "q must be a probability");
    ((1.0 - q).ln() / (1.0 - p).ln()).ceil() as u64
}

#[cfg(test)]
mod quantile_tests {
    use super::*;

    #[test]
    fn quantiles_are_monotonic() {
        let p = 1.0 / 300.0;
        let q10 = first_success_quantile(p, 0.1);
        let q50 = first_success_quantile(p, 0.5);
        let q90 = first_success_quantile(p, 0.9);
        assert!(q10 < q50 && q50 < q90);
        // 80 % band spans roughly 30..700 at p ≈ 1/300.
        assert!(q10 < 50, "q10 = {q10}");
        assert!((500..900).contains(&q90), "q90 = {q90}");
    }

    #[test]
    fn table3_draws_fall_inside_the_95_percent_band() {
        // Our measured first successes (9, 43, 442, 477 across campaign
        // runs) and the paper's (250 and 432) all sit inside the central
        // 95 % band of a geometric with the empirically observed
        // p ≈ 1/300.
        let p = 1.0 / 300.0;
        let lo = first_success_quantile(p, 0.025);
        let hi = first_success_quantile(p, 0.975);
        for draw in [9u64, 43, 250, 432, 442, 477] {
            assert!((lo..=hi).contains(&draw), "{draw} outside [{lo},{hi}]");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_p() {
        first_success_quantile(1.5, 0.5);
    }
}

//! Memory profiling (§4.1, evaluated in §5.1 / Table 1).
//!
//! The profiler runs inside the attacker VM and works purely on
//! guest-visible information:
//!
//! * **Bank targeting.** With THP on both levels, the low 21 bits of a
//!   guest-physical address survive into the host-physical address, and
//!   the DRAM bank function (recovered offline with DRAMDig, §5.1) uses
//!   only XOR parities whose in-hugepage contributions are computable
//!   from those bits. Two offsets inside one 2 MiB hugepage therefore
//!   land in the same bank iff their *relative* bank — the parity of
//!   their XOR over mask bits below 21 — is zero.
//! * **Aggressor placement.** Each 2 MiB hugepage spans eight 256 KiB
//!   DRAM rows. Hammering the two rows at the *top* of a hugepage
//!   (rows 0–1) single-sided-disturbs the last row of the physically
//!   preceding hugepage; the two *bottom* rows (6–7) disturb the first
//!   row of the following one. Those victims are in different hugepages,
//!   which is what makes their vulnerable bits releasable (§4.1).
//! * **Patterns.** Two passes with complementary stripe fills (0x55 /
//!   0xAA) expose both flip directions.
//! * **Exploitability.** A bit is exploitable if flipping it in an EPTE
//!   changes PFN bits 21–⌈log₂ mem⌉ (bit positions within the aligned
//!   64-bit word), and if its hugepage can be released while the
//!   aggressors stay resident.

use std::collections::HashMap;

use hh_dram::FlipDirection;
use hh_hv::{Host, HvError, Vm};
use hh_sim::addr::{Gpa, HUGE_PAGE_SIZE};
use hh_sim::clock::SimDuration;
use hh_sim::{ByteSize, Hpa};

use crate::machine::AttackVariant;

/// Bits of a physical address preserved by 2 MiB mappings.
const LOW21: u64 = (1 << 21) - 1;
/// Bytes per DRAM row (bits 18–33 select the row on both machines).
const ROW_SPAN: u64 = 1 << 18;

/// Profiling parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParams {
    /// Hammer rounds per aggressor pair (the paper uses 250 000).
    pub hammer_rounds: u64,
    /// Number of repeat hammers a bit must survive to count as *stable*.
    pub stability_checks: u32,
    /// Stop as soon as this many exploitable bits are found (§5.3.3:
    /// "the attacker can stop when enough bits, 12 in our case, are
    /// found"). `None` profiles everything.
    pub stop_after_exploitable: Option<usize>,
    /// Host memory size, bounding the highest exploitable PFN bit.
    pub host_mem: ByteSize,
}

impl ProfileParams {
    /// Paper settings: 250 k rounds, 3 stability checks, full profile,
    /// 16 GiB host.
    pub fn paper() -> Self {
        Self {
            hammer_rounds: 250_000,
            stability_checks: 3,
            stop_after_exploitable: None,
            host_mem: ByteSize::gib(16),
        }
    }
}

/// Which border of the hugepage the aggressor pair sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    /// Rows 0–1: victim is the previous physical hugepage's last row.
    Top,
    /// Rows 6–7: victim is the next physical hugepage's first row.
    Bottom,
}

/// A vulnerable bit found by profiling, in guest coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfiledBit {
    /// Guest-physical byte address of the cell.
    pub gpa: Gpa,
    /// Bit index within the byte.
    pub bit: u8,
    /// Flip direction.
    pub direction: FlipDirection,
    /// The aggressor pair that triggers it.
    pub aggressors: [Gpa; 2],
    /// Whether it survived every stability re-check.
    pub stable: bool,
}

impl ProfiledBit {
    /// Bit position within the containing aligned 64-bit word.
    pub fn bit_in_word(&self) -> u32 {
        (self.gpa.raw() % 8) as u32 * 8 + u32::from(self.bit)
    }

    /// Base of the 2 MiB hugepage holding the vulnerable cell.
    pub fn hugepage_base(&self) -> Gpa {
        self.gpa.align_down(HUGE_PAGE_SIZE)
    }

    /// Base of the 2 MiB hugepage holding the aggressors.
    pub fn aggressor_hugepage(&self) -> Gpa {
        self.aggressors[0].align_down(HUGE_PAGE_SIZE)
    }

    /// Exploitability per §4.1: the flipped EPTE PFN bit must be in
    /// 21–⌈log₂ host_mem⌉, and the victim hugepage must be releasable
    /// while the aggressors stay (different hugepages, victim inside the
    /// virtio-mem region).
    pub fn is_exploitable(&self, host_mem: ByteSize, vm: &Vm) -> bool {
        self.is_exploitable_as(AttackVariant::VirtioMem, host_mem, vm)
    }

    /// [`ProfiledBit::is_exploitable`] for a specific attack variant.
    /// The placement constraints (remote aggressors, releasable victim
    /// hugepage) are variant-independent; the *word-bit window* is not:
    /// PFN-targeting variants need bits 21–⌈log₂ host_mem⌉, while the
    /// GbHammer variant targets the EPTE control field — permission
    /// bits 0–2 through the Global bit at position 8, up to the
    /// ignored/ept-memtype bits at 11.
    pub fn is_exploitable_as(&self, variant: AttackVariant, host_mem: ByteSize, vm: &Vm) -> bool {
        let b = self.bit_in_word();
        let in_window = match variant {
            AttackVariant::GbHammer => b <= 11,
            _ => (21..=host_mem.log2_ceil()).contains(&b),
        };
        if !in_window {
            return false;
        }
        if self.hugepage_base() == self.aggressor_hugepage() {
            return false;
        }
        let region = vm.virtio_mem();
        let base = region.region_base();
        self.gpa >= base && self.gpa.offset_from(base) < region.region_size()
    }
}

/// The outcome of a profiling campaign — the raw material of Table 1.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Every vulnerable bit found (deduplicated).
    pub bits: Vec<ProfiledBit>,
    /// Simulated wall time the campaign took.
    pub duration: SimDuration,
    /// Number of hugepages hammered.
    pub hugepages_profiled: u64,
    /// Exploitable-bit count at the stop point (see
    /// [`ProfileParams::stop_after_exploitable`]).
    pub exploitable_found: usize,
    /// Hammer-plan cache hits during this campaign. Profiling replays the
    /// same per-hugepage offset pairs everywhere, so nearly every burst
    /// after the first sweep of a hugepage should hit.
    pub plan_hits: u64,
    /// Hammer-plan compiles during this campaign.
    pub plan_misses: u64,
}

impl ProfileReport {
    /// Total vulnerable bits found.
    pub fn total(&self) -> usize {
        self.bits.len()
    }

    /// Count of 1→0 flips.
    pub fn one_to_zero(&self) -> usize {
        self.bits
            .iter()
            .filter(|b| b.direction == FlipDirection::OneToZero)
            .count()
    }

    /// Count of 0→1 flips.
    pub fn zero_to_one(&self) -> usize {
        self.bits
            .iter()
            .filter(|b| b.direction == FlipDirection::ZeroToOne)
            .count()
    }

    /// Count of stable bits.
    pub fn stable(&self) -> usize {
        self.bits.iter().filter(|b| b.stable).count()
    }

    /// The exploitable bits for this VM and host size.
    pub fn exploitable<'a>(&'a self, host_mem: ByteSize, vm: &'a Vm) -> Vec<&'a ProfiledBit> {
        self.bits
            .iter()
            .filter(|b| b.is_exploitable(host_mem, vm))
            .collect()
    }
}

/// A host-physical catalogue of profiled bits, built once via the debug
/// hypercall (§5.3.2) so later attack attempts skip re-profiling.
#[derive(Debug, Clone)]
pub struct FlipCatalog {
    /// Catalogued cells.
    pub entries: Vec<CatalogEntry>,
    /// Host memory size the exploitability filter used.
    pub host_mem: ByteSize,
}

/// One catalogued vulnerable cell, keyed by host-physical location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Host-physical byte address of the cell.
    pub cell_hpa: Hpa,
    /// Bit within the byte.
    pub bit: u8,
    /// Flip direction.
    pub direction: FlipDirection,
    /// Host-physical base of the hugepage holding the aggressors.
    pub aggressor_hugepage_hpa: Hpa,
    /// The aggressors' byte offsets inside that hugepage.
    pub aggressor_offsets: [u64; 2],
    /// Stability flag from profiling.
    pub stable: bool,
}

/// Computes the relative bank of an in-hugepage offset: the XOR-parity
/// vector of the offset over the mask bits preserved by 2 MiB mappings.
fn rel_bank(masks: &[u64], offset: u64) -> u32 {
    let mut bank = 0;
    for (i, &m) in masks.iter().enumerate() {
        bank |= ((offset & m & LOW21).count_ones() & 1) << i;
    }
    bank
}

/// Precomputes, per border side, one aggressor-offset pair for every
/// reachable relative-bank class. The pairs are hugepage-relative, so one
/// table serves every hugepage.
fn aggressor_pairs(masks: &[u64], side: Side) -> Vec<(u64, u64)> {
    let (row_a, row_b) = match side {
        Side::Top => (0u64, 1u64),
        Side::Bottom => (6, 7),
    };
    let mut seen: HashMap<u32, u64> = HashMap::new();
    for o in (row_a * ROW_SPAN..(row_a + 1) * ROW_SPAN).step_by(64) {
        seen.entry(rel_bank(masks, o)).or_insert(o);
    }
    let mut pairs = Vec::with_capacity(seen.len());
    for (&bank, &o1) in &seen {
        let o2 = (row_b * ROW_SPAN..(row_b + 1) * ROW_SPAN)
            .step_by(64)
            .find(|&o| rel_bank(masks, o) == bank);
        if let Some(o2) = o2 {
            pairs.push((o1, o2));
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Precomputed profiling inputs: the recovered bank-function masks and
/// the per-side aggressor-pair table.
///
/// Both are pure functions of DRAM *geometry* — the DRAMDig recovery
/// runs against a timing probe built from the geometry alone, and the
/// pair table is derived from the recovered masks — so they are
/// identical for every experiment seed of a scenario. A campaign grid
/// computes them once per scenario (see `MachineTemplate`) instead of
/// re-running the GF(2) solver for every cell. `Send + Sync`: worker
/// threads profile from a shared reference.
#[derive(Debug, Clone)]
pub struct ProfileTables {
    masks: Vec<u64>,
    pair_table: Vec<(Side, Vec<(u64, u64)>)>,
}

impl ProfileTables {
    /// Recovers the bank function for `geometry` (falling back to the
    /// installed function if the solver is defeated) and precomputes
    /// the aggressor-pair table.
    pub fn for_geometry(geometry: &hh_dram::geometry::DramGeometry) -> Self {
        // §5.1: the attacker first reverse engineers the DRAM address
        // function with DRAMDig. Run the actual solver against the
        // row-buffer timing side channel; only if the (synthetic)
        // geometry defeats it do we fall back to the installed function.
        // Any basis equivalent to the true function works: aggressor
        // pairing needs only same-bank *equality*, which is invariant
        // under output-bit recombination.
        let masks = {
            let probe = hh_dram::timing::TimingProbe::new(
                geometry.clone(),
                hh_dram::timing::AccessTiming::ddr4_2666(),
            );
            match hh_dram::dramdig::recover(&probe) {
                Ok(map) => map.bank_fn.masks().to_vec(),
                Err(_) => geometry.bank_fn().masks().to_vec(),
            }
        };
        let pair_table = vec![
            (Side::Top, aggressor_pairs(&masks, Side::Top)),
            (Side::Bottom, aggressor_pairs(&masks, Side::Bottom)),
        ];
        Self { masks, pair_table }
    }

    /// The recovered (or fallback) bank-function masks.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }
}

/// The memory profiler.
#[derive(Debug, Clone)]
pub struct Profiler {
    params: ProfileParams,
    variant: AttackVariant,
}

impl Profiler {
    /// Creates a profiler with the given parameters, targeting the
    /// paper's virtio-mem PFN-bit window.
    pub fn new(params: ProfileParams) -> Self {
        Self {
            params,
            variant: AttackVariant::VirtioMem,
        }
    }

    /// Returns a copy whose exploitability window (and hence the
    /// early-stop counter and catalogue filter) matches `variant`.
    pub fn with_variant(mut self, variant: AttackVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Runs the profiling campaign over the VM's virtio-mem region,
    /// recovering the bank function on the fly.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors from memory operations.
    pub fn run(&self, host: &mut Host, vm: &mut Vm) -> Result<ProfileReport, HvError> {
        self.run_with_tables(host, vm, None)
    }

    /// [`Profiler::run`] with optionally precomputed [`ProfileTables`].
    /// Passing `Some` skips the per-run DRAMDig recovery; because the
    /// tables are a pure function of the DRAM geometry, the report is
    /// bit-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors from memory operations.
    pub fn run_with_tables(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        tables: Option<&ProfileTables>,
    ) -> Result<ProfileReport, HvError> {
        host.tracer().stage_start(hh_trace::Stage::Profile);
        let result = self.run_inner(host, vm, tables);
        host.tracer().stage_end(hh_trace::Stage::Profile);
        result
    }

    fn run_inner(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        tables: Option<&ProfileTables>,
    ) -> Result<ProfileReport, HvError> {
        let start = host.now();
        let plan_stats_before = host.dram().plan_stats();
        let region_base = vm.virtio_mem().region_base();
        let region_size = vm.virtio_mem().region_size();
        let computed;
        let tables = match tables {
            Some(shared) => shared,
            None => {
                computed = ProfileTables::for_geometry(host.dram().geometry());
                &computed
            }
        };
        let pair_table: &[(Side, Vec<(u64, u64)>)] = &tables.pair_table;

        let mut found: HashMap<(u64, u8), ProfiledBit> = HashMap::new();
        let mut exploitable_found = 0usize;
        let mut hugepages_profiled = 0u64;
        let mut done = false;

        for pattern in [0x55u8, 0xaa] {
            if done {
                break;
            }
            vm.fill_gpa(host, region_base, region_size, pattern)?;
            for chunk in (0..region_size).step_by(HUGE_PAGE_SIZE as usize) {
                if done {
                    break;
                }
                let hp_base = region_base.add(chunk);
                hugepages_profiled += 1;
                let cursor = vm.journal_cursor(host);
                for (_side, pairs) in pair_table {
                    for &(o1, o2) in pairs {
                        vm.hammer_gpa(
                            host,
                            &[hp_base.add(o1), hp_base.add(o2)],
                            self.params.hammer_rounds,
                        )?;
                    }
                }
                let flips = vm.scan_for_flips(host, cursor, region_base, region_size);
                for flip in flips {
                    // §5.1: "a scan of all OTHER 2 MB regions" — flips
                    // inside the hammered hugepage are collateral on the
                    // aggressors' own rows and are never releasable.
                    if flip.gpa.align_down(HUGE_PAGE_SIZE) == hp_base {
                        continue;
                    }
                    let key = (flip.gpa.raw(), flip.bit);
                    if found.contains_key(&key) {
                        continue;
                    }
                    let bit = self.characterize(
                        host,
                        vm,
                        hp_base,
                        pair_table,
                        flip.gpa,
                        flip.bit,
                        flip.direction,
                        pattern,
                    )?;
                    let exploitable = bit.is_exploitable_as(self.variant, self.params.host_mem, vm);
                    found.insert(key, bit);
                    if exploitable {
                        exploitable_found += 1;
                        if let Some(target) = self.params.stop_after_exploitable {
                            if exploitable_found >= target {
                                done = true;
                                break;
                            }
                        }
                    }
                }
            }
        }

        let mut bits: Vec<ProfiledBit> = found.into_values().collect();
        bits.sort_unstable_by_key(|b| (b.gpa.raw(), b.bit));
        let plan_stats = host.dram().plan_stats();
        Ok(ProfileReport {
            bits,
            duration: host.elapsed_since(start),
            hugepages_profiled,
            exploitable_found,
            plan_hits: plan_stats.hits - plan_stats_before.hits,
            plan_misses: plan_stats.misses - plan_stats_before.misses,
        })
    }

    /// Identifies which aggressor pair triggers a found flip and measures
    /// its stability by repeated re-arming and re-hammering.
    #[allow(clippy::too_many_arguments)]
    fn characterize(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        hp_base: Gpa,
        pair_table: &[(Side, Vec<(u64, u64)>)],
        victim: Gpa,
        bit: u8,
        direction: FlipDirection,
        pattern: u8,
    ) -> Result<ProfiledBit, HvError> {
        let rearm = |host: &mut Host, vm: &mut Vm| -> Result<(), HvError> {
            vm.write_gpa(host, victim, &[pattern])
        };
        let flipped = |host: &Host, vm: &Vm| -> Result<bool, HvError> {
            let byte = vm.read_gpa(host, victim, 1)?[0];
            Ok((byte >> bit) & 1 == direction.target_bit())
        };

        // Find the responsible pair.
        let mut responsible: Option<[Gpa; 2]> = None;
        'search: for (_side, pairs) in pair_table {
            for &(o1, o2) in pairs {
                rearm(host, vm)?;
                vm.hammer_gpa(
                    host,
                    &[hp_base.add(o1), hp_base.add(o2)],
                    self.params.hammer_rounds,
                )?;
                if flipped(host, vm)? {
                    responsible = Some([hp_base.add(o1), hp_base.add(o2)]);
                    break 'search;
                }
            }
        }
        let Some(aggressors) = responsible else {
            // Could not reproduce (intermittent cell): record as
            // unstable with the first top pair as best effort.
            let (o1, o2) = pair_table[0].1[0];
            rearm(host, vm)?;
            return Ok(ProfiledBit {
                gpa: victim,
                bit,
                direction,
                aggressors: [hp_base.add(o1), hp_base.add(o2)],
                stable: false,
            });
        };

        // Stability: must flip on every re-check.
        let mut stable = true;
        for _ in 0..self.params.stability_checks {
            rearm(host, vm)?;
            vm.hammer_gpa(host, &aggressors, self.params.hammer_rounds)?;
            if !flipped(host, vm)? {
                stable = false;
                break;
            }
        }
        rearm(host, vm)?;
        Ok(ProfiledBit {
            gpa: victim,
            bit,
            direction,
            aggressors,
            stable,
        })
    }

    /// Converts a report into a host-physical catalogue via the debug
    /// hypercall, for reuse across VM respawns (§5.3.2).
    ///
    /// # Errors
    ///
    /// Propagates hypercall failures for unmapped addresses.
    pub fn to_catalog(&self, vm: &Vm, report: &ProfileReport) -> Result<FlipCatalog, HvError> {
        let mut entries = Vec::new();
        for bit in &report.bits {
            if !bit.is_exploitable_as(self.variant, self.params.host_mem, vm) {
                continue;
            }
            let cell_hpa = vm.hypercall_gpa_to_hpa(bit.gpa)?;
            let aggr_hp_gpa = bit.aggressor_hugepage();
            let aggr_hp_hpa = vm.hypercall_gpa_to_hpa(aggr_hp_gpa)?;
            entries.push(CatalogEntry {
                cell_hpa,
                bit: bit.bit,
                direction: bit.direction,
                aggressor_hugepage_hpa: aggr_hp_hpa,
                aggressor_offsets: [
                    bit.aggressors[0].offset_from(aggr_hp_gpa),
                    bit.aggressors[1].offset_from(aggr_hp_gpa),
                ],
                stable: bit.stable,
            });
        }
        Ok(FlipCatalog {
            entries,
            host_mem: self.params.host_mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Scenario;
    use hh_dram::geometry::BankFunction;

    #[test]
    fn rel_bank_is_linear_and_bounded() {
        let masks = BankFunction::core_i3_10100().masks().to_vec();
        for (a, b) in [(0u64, 64u64), (0x40000, 0x7ffc0), (0x1fffc0, 0x100)] {
            assert_eq!(
                rel_bank(&masks, a) ^ rel_bank(&masks, b),
                rel_bank(&masks, a ^ b)
            );
        }
        assert!(rel_bank(&masks, 0x155540) < 32);
    }

    #[test]
    fn aggressor_pairs_cover_all_banks_same_bank_rows() {
        for masks in [
            BankFunction::core_i3_10100().masks().to_vec(),
            BankFunction::xeon_e2124().masks().to_vec(),
        ] {
            for side in [Side::Top, Side::Bottom] {
                let pairs = aggressor_pairs(&masks, side);
                assert_eq!(pairs.len(), 32, "one pair per bank class");
                for &(o1, o2) in &pairs {
                    assert_eq!(rel_bank(&masks, o1), rel_bank(&masks, o2));
                    // Consecutive rows.
                    assert_eq!(o2 / ROW_SPAN, o1 / ROW_SPAN + 1);
                    match side {
                        Side::Top => assert_eq!(o1 / ROW_SPAN, 0),
                        Side::Bottom => assert_eq!(o1 / ROW_SPAN, 6),
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_profile_finds_and_classifies_bits() {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let report = Profiler::new(sc.profile_params())
            .run(&mut host, &mut vm)
            .unwrap();
        assert!(report.total() > 0, "dense DIMM must show flips");
        assert_eq!(report.total(), report.one_to_zero() + report.zero_to_one());
        assert!(report.stable() <= report.total());
        assert!(report.duration.as_nanos() > 0);
        // Flips the scan reports are observable in guest memory and the
        // recorded aggressors reproduce stable ones.
        let stable_bit = report.bits.iter().find(|b| b.stable);
        if let Some(bit) = stable_bit {
            assert_ne!(bit.aggressors[0], bit.aggressors[1]);
        }
        // Characterize/stability re-hammers replay patterns the sweep
        // just compiled, so the plan cache must see real reuse.
        assert!(report.plan_misses > 0, "sweep compiles plans");
        assert!(report.plan_hits > 0, "re-hammers reuse cached plans");
    }

    #[test]
    fn stop_after_exploitable_stops_early() {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let mut params = sc.profile_params();
        params.stop_after_exploitable = Some(1);
        let report = Profiler::new(params.clone())
            .run(&mut host, &mut vm)
            .unwrap();
        if report.exploitable_found >= 1 {
            // Early-stopped runs profile fewer hugepages than the region
            // holds across two passes.
            let region_hps = vm.virtio_mem().region_size() / HUGE_PAGE_SIZE;
            assert!(report.hugepages_profiled < region_hps * 2);
        }
    }

    #[test]
    fn catalog_round_trips_through_hypercall() {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let profiler = Profiler::new(sc.profile_params());
        let report = profiler.run(&mut host, &mut vm).unwrap();
        let catalog = profiler.to_catalog(&vm, &report).unwrap();
        assert_eq!(
            catalog.entries.len(),
            report.exploitable(sc.profile_params().host_mem, &vm).len()
        );
        for e in &catalog.entries {
            assert!(e.aggressor_offsets[0] < HUGE_PAGE_SIZE);
            assert!(e.aggressor_offsets[1] < HUGE_PAGE_SIZE);
            assert!(e.aggressor_hugepage_hpa.is_aligned(HUGE_PAGE_SIZE));
        }
    }

    #[test]
    fn exploitable_filter_checks_bit_range_and_hugepages() {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let vm = host.create_vm(sc.vm_config()).unwrap();
        let base = vm.virtio_mem().region_base();
        let mk = |gpa: Gpa, bit: u8, aggr: Gpa| ProfiledBit {
            gpa,
            bit,
            direction: FlipDirection::OneToZero,
            aggressors: [aggr, aggr.add(64)],
            stable: true,
        };
        // Word-bit 24 (byte offset 3 in word, bit 0): exploitable when in
        // the virtio-mem region with remote aggressors.
        let good = mk(base.add(3), 0, base.add(HUGE_PAGE_SIZE));
        assert_eq!(good.bit_in_word(), 24);
        assert!(good.is_exploitable(ByteSize::mib(512), &vm));
        // Same cell with aggressors in the same hugepage: not releasable.
        let same_hp = mk(base.add(3), 0, base.add(0x40000));
        assert!(!same_hp.is_exploitable(ByteSize::mib(512), &vm));
        // Bit 7 of byte 0: word-bit 7, points inside the same page.
        let low = mk(base.add(0), 7, base.add(HUGE_PAGE_SIZE));
        assert!(!low.is_exploitable(ByteSize::mib(512), &vm));
        // Boot RAM cell: not unpluggable.
        let boot = mk(Gpa::new(3), 0, base.add(HUGE_PAGE_SIZE));
        assert!(!boot.is_exploitable(ByteSize::mib(512), &vm));
        // GbHammer inverts the window: the control-field bit 7 is in,
        // the PFN bit 24 is out; placement constraints still apply.
        let gb = AttackVariant::GbHammer;
        assert!(low.is_exploitable_as(gb, ByteSize::mib(512), &vm));
        assert!(!good.is_exploitable_as(gb, ByteSize::mib(512), &vm));
        assert!(!mk(base.add(0), 7, base.add(0x40000)).is_exploitable_as(
            gb,
            ByteSize::mib(512),
            &vm
        ));
    }
}

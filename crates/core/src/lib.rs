//! # HyperHammer — reproduction of the ASPLOS '25 attack
//!
//! This crate implements the paper's contribution: a guest-to-hypervisor
//! Rowhammer attack against KVM, running on the simulated substrate
//! provided by [`hh_dram`], [`hh_buddy`] and [`hh_hv`].
//!
//! The attack follows the paper's three steps:
//!
//! 1. **Memory profiling** ([`profile`]) — find Rowhammer-vulnerable bits
//!    in the VM's memory using the THP 21-bit physical-address leak to
//!    target DRAM banks, single-sided hammering at 2 MiB hugepage
//!    borders, and exploitability filtering on the bit's position within
//!    a 64-bit word (§4.1).
//! 2. **Page Steering** ([`steering`]) — exhaust small-order
//!    `MIGRATE_UNMOVABLE` host free blocks through vIOMMU IOPT
//!    allocations, voluntarily release vulnerable sub-blocks through
//!    virtio-mem, and spray EPT pages by executing an idling function on
//!    NX hugepages to trigger the iTLB-Multihit split (§4.2).
//! 3. **Exploitation** ([`exploit`]) — hammer the still-resident
//!    aggressor rows, detect mapping changes with magic values, recognize
//!    and validate EPT-formatted pages, and rewrite EPTEs for arbitrary
//!    host-physical access (§4.3).
//!
//! [`driver`] chains the steps into repeatable end-to-end attempts
//! (Table 3), [`parallel`] fans (scenario × seed) campaign grids out over
//! worker threads with bit-identical results to the serial path,
//! [`analysis`] implements the paper's §5.3 success-probability
//! model, [`balloon_steering`] completes the §6 virtio-balloon variant the
//! paper leaves to future work, [`machine`] provides the S1/S2/S3
//! evaluation presets, and [`snapshot`] serializes mid-campaign machines
//! to the versioned `hyperhammer-snap-v1` format for checkpoint/resume
//! and copy-on-write forking.
//!
//! # Quickstart
//!
//! ```
//! use hyperhammer::machine::Scenario;
//! use hyperhammer::profile::{ProfileParams, Profiler};
//!
//! // A scaled-down S1-like machine that profiles in milliseconds.
//! let scenario = Scenario::tiny_demo();
//! let mut host = scenario.boot_host();
//! let mut vm = host.create_vm(scenario.vm_config())?;
//!
//! let params = ProfileParams { stop_after_exploitable: Some(1), ..scenario.profile_params() };
//! let report = Profiler::new(params).run(&mut host, &mut vm)?;
//! assert!(report.total() > 0, "the demo DIMM is densely vulnerable");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analysis;
pub mod balloon_steering;
pub mod driver;
pub mod exploit;
pub mod jobspec;
pub mod machine;
pub mod parallel;
pub mod profile;
pub mod snapshot;
pub mod steering;
pub mod streamref;
pub mod template;

pub use balloon_steering::BalloonSteering;
pub use driver::{AttackDriver, AttemptOutcome, CampaignStats};
pub use exploit::{EscapeProof, Exploiter};
pub use jobspec::JobSpec;
pub use machine::{AttackVariant, Scenario};
pub use parallel::{CampaignGrid, CancelToken, CellResult};
pub use profile::{FlipCatalog, ProfileReport, ProfileTables, Profiler};
pub use snapshot::{Machine, SNAP_MAGIC, SNAP_VERSION};
pub use steering::{PageSteering, RetryPolicy};
pub use template::MachineTemplate;

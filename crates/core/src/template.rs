//! Per-scenario machine templates.
//!
//! Every cell of a campaign grid used to pay the full cold-boot bill:
//! build a buddy allocator frame by frame, replay boot-time allocation
//! noise, and re-run DRAMDig bank-function recovery — all of which are
//! *identical* for every cell of a scenario. A [`MachineTemplate`]
//! hoists that work out of the per-cell path:
//!
//! * **Host side** — [`HostTemplate`](hh_hv::HostTemplate) snapshots
//!   the buddy allocator *after* boot noise (which is deliberately
//!   RNG-free, hence seed-independent); instantiating a cell's host is
//!   then a plain-data clone plus the seed-dependent tail (RNG streams,
//!   DRAM device, fault plan).
//! * **Profile side** — [`ProfileTables`] caches the recovered
//!   bank-function masks and the aggressor-pair table, both pure
//!   functions of the DRAM geometry.
//!
//! What deliberately stays **per cell**: the [`DramDevice`]
//! (vulnerable-cell tables, flip RNG) and its compiled-hammer-plan
//! cache. Both are seeded from the cell seed (`seed ^ 0xd1a`), so no
//! two cells of a grid share them and caching either in the template
//! would change results. The template is `Send + Sync` plain data, so
//! campaign workers instantiate cells from a shared reference.
//!
//! Instantiated machines are bit-identical to cold-booted ones — the
//! host side is pinned by `hh-hv`'s `HostTemplate` tests, the profile
//! side by the equivalence test in this module.
//!
//! [`DramDevice`]: hh_dram::DramDevice

use hh_hv::{Host, HostTemplate};

use crate::machine::Scenario;
use crate::profile::ProfileTables;

/// The scenario-invariant parts of a campaign cell's machine: a
/// post-boot-noise buddy snapshot and the precomputed profiling tables.
///
/// Build once per scenario with [`MachineTemplate::for_scenario`], then
/// stamp out each cell's [`Host`] with [`MachineTemplate::instantiate`].
#[derive(Debug, Clone)]
pub struct MachineTemplate {
    host: HostTemplate,
    tables: ProfileTables,
}

impl MachineTemplate {
    /// Builds the template for `scenario`: boots the buddy allocator
    /// (with boot noise) once and runs DRAMDig recovery once. The
    /// scenario's current seed is irrelevant — every template product
    /// is re-seeded at instantiation time.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        let host = HostTemplate::new(scenario.host_config().clone());
        let tables = ProfileTables::for_geometry(&scenario.host_config().dimm.geometry);
        Self { host, tables }
    }

    /// Instantiates the cell host for `seed` — bit-identical to
    /// `scenario.with_seed(seed).boot_host()`.
    pub fn instantiate(&self, seed: u64) -> Host {
        self.host.instantiate(seed)
    }

    /// The precomputed profiling tables shared by every cell.
    pub fn tables(&self) -> &ProfileTables {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{AttackDriver, DriverParams};
    use hh_sim::rng::SimRng;

    #[test]
    fn template_profiling_matches_cold_boot_profiling() {
        let scenario = Scenario::tiny_demo();
        let template = MachineTemplate::for_scenario(&scenario);
        let params = DriverParams {
            bits_per_attempt: 4,
            stable_bits_only: true,
            ..DriverParams::paper()
        };
        let driver = AttackDriver::new(params);
        for i in 0..2u64 {
            let seed = SimRng::split_seed(0x7e3a, i);
            let cell = scenario.clone().with_seed(seed);

            // Cold path: fresh boot, on-the-fly DRAMDig recovery.
            let mut cold_host = cell.boot_host();
            let mut cold_vm = cold_host.create_vm(cell.vm_config()).unwrap();
            let cold = driver
                .profile_and_catalog(&mut cold_host, &mut cold_vm, cell.profile_params())
                .unwrap();
            cold_vm.destroy(&mut cold_host);

            // Template path: snapshot instantiation + cached tables.
            let mut warm_host = template.instantiate(seed);
            let mut warm_vm = warm_host.create_vm(cell.vm_config()).unwrap();
            let warm = driver
                .profile_and_catalog_with(
                    &mut warm_host,
                    &mut warm_vm,
                    cell.profile_params(),
                    Some(template.tables()),
                )
                .unwrap();
            warm_vm.destroy(&mut warm_host);

            assert_eq!(
                cold.entries, warm.entries,
                "catalogue diverged (seed {seed:#x})"
            );
            assert_eq!(
                cold_host.pagetypeinfo(),
                warm_host.pagetypeinfo(),
                "allocator state diverged (seed {seed:#x})"
            );
        }
    }

    #[test]
    fn template_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let template = MachineTemplate::for_scenario(&Scenario::tiny_demo());
        assert_send_sync(&template);
        assert!(!template.tables().masks().is_empty());
    }
}

//! The §6 virtio-balloon steering variant, engineered to completion.
//!
//! The paper leaves a balloon-based HyperHammer to future work but
//! observes the key differences from the virtio-mem path:
//!
//! * the balloon releases **individual 4 KiB pages**, so the attacker
//!   frees exactly the vulnerable frame — no 2 MiB sub-block constraint,
//!   no 511 sibling pages of noise;
//! * there is no order-9 block to out-compete: the freed page enters the
//!   front of the order-0 path (the per-CPU pageset), where the *very
//!   next* page-table allocation pops it.
//!
//! That second point makes balloon steering nearly deterministic: inflate
//! the vulnerable page, then immediately trigger one iTLB-Multihit split;
//! the new EPT page lands on the just-freed frame via PCP LIFO. The
//! spray shrinks from `512 × (N + 2)` pages to roughly *one split per
//! bit* — this module implements and measures exactly that.
//!
//! A bonus the paper hints at: inflating a page of a THP-backed chunk
//! forces the hypervisor to split that chunk's 2 MiB mapping first, which
//! itself allocates an EPT page — the attacker gets multihit splits
//! "for free" while releasing.

use hh_hv::{Host, HvError, Vm};
use hh_sim::addr::{Gpa, HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::driver::RelocatedBit;
use crate::steering::IDLE_FUNCTION;

/// Result of one balloon-steered placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalloonPlacement {
    /// The vulnerable guest page that was released.
    pub released_gpa: Gpa,
    /// The hugepage executed to trigger the follow-up split.
    pub sprayed_hugepage: Gpa,
    /// Whether the new EPT page landed on the released frame (verified
    /// against hypervisor ground truth — experiment instrumentation, not
    /// attacker knowledge).
    pub ept_on_released_frame: bool,
}

/// Statistics of a balloon steering run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BalloonSteeringStats {
    /// Per-bit placements.
    pub placements: Vec<BalloonPlacement>,
    /// Pages released in total.
    pub pages_released: u64,
    /// Multihit splits triggered (including the implicit ones from
    /// inflating THP-backed pages).
    pub splits: u64,
}

impl BalloonSteeringStats {
    /// Fraction of bits whose EPT page landed exactly on the released
    /// frame.
    pub fn placement_rate(&self) -> f64 {
        if self.placements.is_empty() {
            return 0.0;
        }
        self.placements
            .iter()
            .filter(|p| p.ept_on_released_frame)
            .count() as f64
            / self.placements.len() as f64
    }
}

/// The balloon-based steering engine.
#[derive(Debug, Clone, Default)]
pub struct BalloonSteering;

impl BalloonSteering {
    /// Creates the engine.
    pub fn new() -> Self {
        Self
    }

    /// Steers EPT pages onto the given bits' frames using per-page
    /// balloon releases: for each bit, inflate the vulnerable page and
    /// immediately execute a fresh hugepage so the multihit split's EPT
    /// allocation pops the just-freed frame from the PCP.
    ///
    /// `spray_pool` supplies hugepages to execute; they must still be
    /// 2 MiB-mapped. Bits whose hugepage would collide with the pool are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors (balloon protocol, allocation).
    pub fn steer(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        bits: &[RelocatedBit],
        spray_pool: &mut Vec<Gpa>,
    ) -> Result<BalloonSteeringStats, HvError> {
        let mut stats = BalloonSteeringStats::default();
        for bit in bits {
            let victim_page = Gpa::new(bit.gpa.align_down(PAGE_SIZE).raw());
            let victim_frame = match vm.hypercall_gpa_to_hpa(victim_page) {
                Ok(hpa) => hpa.pfn(),
                Err(_) => continue, // already gone
            };
            // Keep the aggressors' hugepage out of the spray pool: its
            // mapping may split (harmless) but must stay resident.
            let aggr_hp = bit.aggressors[0].align_down(HUGE_PAGE_SIZE);
            spray_pool.retain(|hp| *hp != victim_page.align_down(HUGE_PAGE_SIZE) && *hp != aggr_hp);

            // 1. Release exactly the vulnerable frame. On THP-backed
            //    chunks this splits the hugepage first (one implicit
            //    EPT allocation) and then frees the frame to the PCP.
            match vm.balloon_inflate(host, victim_page) {
                Ok(()) => {
                    stats.pages_released += 1;
                    stats.splits += 1; // the implicit THP split
                }
                Err(HvError::AlreadyInflated(_)) => {}
                Err(e) => return Err(e),
            }

            // 2. Immediately trigger one multihit split; its EPT page
            //    allocation pops the freed frame (PCP LIFO).
            let Some(hugepage) = spray_pool.pop() else {
                break;
            };
            vm.write_gpa(host, hugepage, &IDLE_FUNCTION)?;
            let split = vm.exec_gpa(host, hugepage)?;
            if split {
                stats.splits += 1;
            }

            // Experiment instrumentation: did it land?
            let landed = vm.ept_leaf_pages(host).contains(&victim_frame);
            stats.placements.push(BalloonPlacement {
                released_gpa: victim_page,
                sprayed_hugepage: hugepage,
                ept_on_released_frame: landed,
            });
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Scenario;
    use hh_dram::FlipDirection;

    fn bits_in(vm: &Vm, count: u64) -> Vec<RelocatedBit> {
        let base = vm.virtio_mem().region_base();
        (0..count)
            .map(|i| RelocatedBit {
                gpa: base.add(i * 3 * HUGE_PAGE_SIZE + 5 * PAGE_SIZE + 3),
                bit: 2,
                direction: FlipDirection::OneToZero,
                aggressors: [
                    base.add((i * 3 + 1) * HUGE_PAGE_SIZE),
                    base.add((i * 3 + 1) * HUGE_PAGE_SIZE + 64),
                ],
                stable: true,
            })
            .collect()
    }

    fn spray_pool(vm: &Vm, skip: u64) -> Vec<Gpa> {
        // Hugepages far away from the test bits.
        let base = vm.virtio_mem().region_base();
        (skip..skip + 16)
            .map(|i| base.add(i * HUGE_PAGE_SIZE))
            .collect()
    }

    #[test]
    fn balloon_steering_places_ept_pages_deterministically() {
        let sc = Scenario::small_attack();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let bits = bits_in(&vm, 6);
        let mut pool = spray_pool(&vm, 600);
        let stats = BalloonSteering::new()
            .steer(&mut host, &mut vm, &bits, &mut pool)
            .unwrap();
        assert_eq!(stats.pages_released, 6);
        assert!(
            stats.placement_rate() >= 0.99,
            "PCP LIFO should make placement ~deterministic: {:?}",
            stats.placement_rate()
        );
        // Two splits per bit: the implicit THP split + the sprayed one.
        assert_eq!(stats.splits, 12);
        vm.destroy(&mut host);
    }

    #[test]
    fn spray_cost_is_one_hugepage_per_bit() {
        // The virtio-mem path needs 512·(N+2) EPT pages; the balloon
        // path needs N sprayed hugepages (plus the implicit splits).
        let sc = Scenario::small_attack();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let bits = bits_in(&vm, 4);
        let mut pool = spray_pool(&vm, 700);
        let pool_before = pool.len();
        let stats = BalloonSteering::new()
            .steer(&mut host, &mut vm, &bits, &mut pool)
            .unwrap();
        assert_eq!(pool_before - pool.len(), stats.placements.len());
        assert_eq!(stats.placements.len(), 4);
        vm.destroy(&mut host);
    }

    #[test]
    fn quarantine_does_not_stop_the_balloon_path() {
        // The §6 point: the virtio-mem patch covers one gMD only.
        let sc = Scenario::small_attack().with_quarantine();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let bits = bits_in(&vm, 2);
        let mut pool = spray_pool(&vm, 650);
        let stats = BalloonSteering::new()
            .steer(&mut host, &mut vm, &bits, &mut pool)
            .unwrap();
        assert_eq!(stats.pages_released, 2);
        assert!(stats.placement_rate() > 0.99);
        vm.destroy(&mut host);
    }
}

//! Page Steering (§4.2): coercing the hypervisor into placing EPT pages
//! on attacker-chosen physical frames.
//!
//! Three sub-steps, each with its own method:
//!
//! 1. [`PageSteering::exhaust_noise`] — drain the host's small-order
//!    `MIGRATE_UNMOVABLE` free blocks by creating tens of thousands of
//!    vIOMMU mappings of a single guest page, 2 MiB apart in IOVA space,
//!    each consuming one IOPT page (§4.2.1 / Figure 3).
//! 2. [`PageSteering::release_hugepages`] — voluntarily unplug the
//!    hugepages holding vulnerable bits through virtio-mem; each lands on
//!    the host free lists as an order-9 `MIGRATE_UNMOVABLE` block
//!    (§4.2.2).
//! 3. [`PageSteering::spray_ept`] — write the idling function into
//!    hugepages and execute it, triggering the iTLB-Multihit
//!    countermeasure once per hugepage; each split allocates one EPT page
//!    from the small-order unmovable lists — which, post-exhaustion, are
//!    fed by splitting the attacker's released blocks (§4.2.3).

use hh_hv::{Host, HvError, Vm};
use hh_sim::addr::{Gpa, Iova, HUGE_PAGE_SIZE};
use hh_sim::clock::{SimDuration, SimInstant};
use hh_trace::Stage;

/// Machine code of the paper's Listing 1 — an idling function
/// (`push %rbp; mov %rsp,%rbp; nop…; pop %rbp; ret`). The attack only
/// needs *something executable* on the hugepage; this is that something.
pub const IDLE_FUNCTION: [u8; 16] = [
    0x55, // push %rbp
    0x48, 0x89, 0xe5, // mov %rsp,%rbp
    0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, // nop sled
    0x5d, // pop %rbp
    0xc3, // ret
];

/// Steering parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteeringParams {
    /// Number of vIOMMU mappings to create (§5.2 uses 60 000).
    pub iova_mappings: u64,
    /// First I/O virtual address (§5.2 uses 0x1_0000_0000).
    pub iova_base: u64,
    /// Sample the noise-page count after every this many mappings.
    pub mapping_batch: u64,
    /// Artificial delay between batches (Figure 3 inserts 1 s per 1 000
    /// mappings to make the curve legible).
    pub batch_delay_secs: u64,
}

impl SteeringParams {
    /// Paper settings.
    pub fn paper() -> Self {
        Self {
            iova_mappings: 60_000,
            iova_base: 0x1_0000_0000,
            mapping_batch: 1_000,
            batch_delay_secs: 1,
        }
    }
}

/// Recovery policy for transient host faults ([`HvError::Transient`]).
///
/// Choke-point operations (vIOMMU map, virtio-mem unplug, EPT split,
/// page allocation) that fail transiently are retried in place: each
/// retry advances the simulated clock by `backoff` before re-issuing
/// the *same* operation, which is safe because injected transients
/// never have side effects. An operation that stays faulty past
/// `max_retries` propagates its `Transient` error — except during the
/// EPT spray, where `degrade` turns persistent failures into a
/// degradation ladder (halve the remaining spray width, re-drain the
/// noise pool, continue) instead of failing the whole attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per choke-point operation before giving up on it.
    pub max_retries: u32,
    /// Simulated-time backoff charged before each retry.
    pub backoff: SimDuration,
    /// Degrade the spray instead of failing the attempt.
    pub degrade: bool,
}

impl RetryPolicy {
    /// Default recovery: 4 retries, 10 ms backoff, degradation on.
    /// With faults off this is pure dead code — no clock or trace
    /// impact — so default-built drivers stay byte-identical to
    /// pre-fault revisions.
    pub const fn standard() -> Self {
        Self {
            max_retries: 4,
            backoff: SimDuration::from_millis(10),
            degrade: true,
        }
    }

    /// No recovery: every transient fault propagates immediately.
    pub const fn none() -> Self {
        Self {
            max_retries: 0,
            backoff: SimDuration::ZERO,
            degrade: false,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::standard()
    }
}

/// Runs `op`, retrying [`HvError::Transient`] failures per `policy`:
/// each retry charges the backoff to the simulated clock and records a
/// retry event. Any other outcome (success or fatal error) passes
/// through untouched.
pub(crate) fn with_retries<T>(
    policy: &RetryPolicy,
    host: &mut Host,
    mut op: impl FnMut(&mut Host) -> Result<T, HvError>,
) -> Result<T, HvError> {
    let mut attempt = 0u32;
    loop {
        match op(host) {
            Err(HvError::Transient { stage, .. }) if attempt < policy.max_retries => {
                attempt += 1;
                host.charge_nanos(policy.backoff.as_nanos());
                host.tracer().retry(stage.name(), u64::from(attempt));
            }
            other => return other,
        }
    }
}

/// One point of the Figure 3 noise curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseSample {
    /// Simulated time of the sample.
    pub time: SimInstant,
    /// vIOMMU mappings established so far.
    pub mappings: u64,
    /// Free small-order `MIGRATE_UNMOVABLE` pages on the host.
    pub noise_pages: u64,
}

/// Result of the EPT-spraying step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SprayStats {
    /// Hugepages executed.
    pub hugepages_executed: u64,
    /// Splits actually triggered (fresh EPT pages allocated).
    pub splits: u64,
}

/// Page reuse accounting — the quantities of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReuseStats {
    /// `N`: pages released by the VM.
    pub released_pages: u64,
    /// `E`: EPT pages in the system.
    pub ept_pages: u64,
    /// `R`: released pages now reused as EPT pages.
    pub reused_pages: u64,
}

impl ReuseStats {
    /// `R_N = R / N`.
    pub fn r_n(&self) -> f64 {
        if self.released_pages == 0 {
            0.0
        } else {
            self.reused_pages as f64 / self.released_pages as f64
        }
    }

    /// `R_E = R / E`.
    pub fn r_e(&self) -> f64 {
        if self.ept_pages == 0 {
            0.0
        } else {
            self.reused_pages as f64 / self.ept_pages as f64
        }
    }
}

/// The Page Steering engine.
#[derive(Debug, Clone)]
pub struct PageSteering {
    params: SteeringParams,
    retry: RetryPolicy,
}

impl PageSteering {
    /// Creates the engine with the given parameters and the
    /// [`RetryPolicy::standard`] recovery policy.
    pub fn new(params: SteeringParams) -> Self {
        Self {
            params,
            retry: RetryPolicy::standard(),
        }
    }

    /// Returns a copy with a different recovery policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The recovery policy in force.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Step 1: exhaust small-order unmovable free blocks via vIOMMU.
    ///
    /// Maps one guest page (the first page of boot RAM) at
    /// `iova_mappings` IOVAs spaced 2 MiB apart so every mapping burns a
    /// fresh IOPT page. Returns the sampled noise curve (Figure 3).
    ///
    /// # Errors
    ///
    /// Stops early and returns `Ok` on [`HvError::IommuMapLimit`];
    /// propagates other hypervisor errors.
    pub fn exhaust_noise(&self, host: &mut Host, vm: &mut Vm) -> Result<Vec<NoiseSample>, HvError> {
        host.tracer().stage_start(Stage::ExhaustNoise);
        let result = self.exhaust_noise_inner(host, vm);
        host.tracer().stage_end(Stage::ExhaustNoise);
        result
    }

    fn exhaust_noise_inner(
        &self,
        host: &mut Host,
        vm: &mut Vm,
    ) -> Result<Vec<NoiseSample>, HvError> {
        let target_page = Gpa::new(0); // one page in the attacker's space
        let mut samples = vec![NoiseSample {
            time: host.now(),
            mappings: 0,
            noise_pages: host.noise_pages(),
        }];
        for i in 0..self.params.iova_mappings {
            let iova = Iova::new(self.params.iova_base + i * HUGE_PAGE_SIZE);
            match with_retries(&self.retry, host, |h| vm.iommu_map(h, 0, iova, target_page)) {
                Ok(()) => {}
                // Re-drains (the spray degradation ladder) walk the same
                // IOVA sequence again: mappings that survived the first
                // pass are skipped, only the missing tail is established.
                Err(HvError::IovaAlreadyMapped(_)) => {}
                Err(HvError::IommuMapLimit) => break,
                // Draining the host's free pool is this stage's success
                // condition (§4.2.1), not a failure: on small hosts the
                // pool empties before the vIOMMU map limit is reached.
                Err(HvError::OutOfHostMemory(_)) => break,
                Err(e) => return Err(e),
            }
            if (i + 1) % self.params.mapping_batch == 0 {
                host.charge_nanos(self.params.batch_delay_secs * 1_000_000_000);
                samples.push(NoiseSample {
                    time: host.now(),
                    mappings: i + 1,
                    noise_pages: host.noise_pages(),
                });
            }
        }
        samples.push(NoiseSample {
            time: host.now(),
            mappings: self.params.iova_mappings,
            noise_pages: host.noise_pages(),
        });
        Ok(samples)
    }

    /// Step 2: voluntarily release the given hugepages to the host.
    ///
    /// Returns the sub-blocks actually released. Fails fast on the
    /// quarantine countermeasure.
    ///
    /// # Errors
    ///
    /// Propagates [`HvError::QuarantineNack`] and allocation errors;
    /// skips sub-blocks that are already gone.
    pub fn release_hugepages(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        hugepages: &[Gpa],
    ) -> Result<Vec<Gpa>, HvError> {
        host.tracer().stage_start(Stage::ReleaseHugepages);
        let result = self.release_hugepages_inner(host, vm, hugepages);
        host.tracer().stage_end(Stage::ReleaseHugepages);
        result
    }

    fn release_hugepages_inner(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        hugepages: &[Gpa],
    ) -> Result<Vec<Gpa>, HvError> {
        let mut released = Vec::new();
        let mut targets: Vec<Gpa> = hugepages
            .iter()
            .map(|g| g.align_down(HUGE_PAGE_SIZE))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for hp in targets {
            match with_retries(&self.retry, host, |h| vm.virtio_mem_unplug(h, hp)) {
                Ok(()) => released.push(hp),
                Err(HvError::NotPlugged(_)) => {} // already released
                Err(e) => return Err(e),
            }
        }
        Ok(released)
    }

    /// Step 3: spray EPT pages by executing the idling function on up to
    /// `spray_bytes` of still-plugged hugepages.
    ///
    /// Per §4.2.3, releasing `N` hugepages calls for at least
    /// `512 × (N + 2)` EPT pages, i.e. `N + 2` GiB of sprayed memory —
    /// use [`Self::spray_budget`] to compute it.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors (allocation failures abort the
    /// spray).
    pub fn spray_ept(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        spray_bytes: u64,
    ) -> Result<SprayStats, HvError> {
        host.tracer().stage_start(Stage::SprayEpt);
        let result = self.spray_ept_inner(host, vm, spray_bytes);
        if let Ok(stats) = &result {
            host.tracer()
                .ept_spray(stats.hugepages_executed, stats.splits);
        }
        host.tracer().stage_end(Stage::SprayEpt);
        result
    }

    fn spray_ept_inner(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        spray_bytes: u64,
    ) -> Result<SprayStats, HvError> {
        let mut stats = SprayStats::default();
        let ranges = vm.usable_ranges();
        let mut budget = spray_bytes;
        for (base, len) in ranges {
            for off in (0..len).step_by(HUGE_PAGE_SIZE as usize) {
                if budget < HUGE_PAGE_SIZE {
                    return Ok(stats);
                }
                let hp = base.add(off);
                // Write the idling function, then call it. Retries
                // re-issue both: the write is idempotent and the split
                // only happens once.
                let executed = with_retries(&self.retry, host, |h| {
                    vm.write_gpa(h, hp, &IDLE_FUNCTION)?;
                    vm.exec_gpa(h, hp)
                });
                match executed {
                    Ok(split) => {
                        stats.hugepages_executed += 1;
                        if split {
                            stats.splits += 1;
                        }
                        budget -= HUGE_PAGE_SIZE;
                    }
                    // Degradation ladder (§4.2.3 sizing under a hostile
                    // host): a hugepage that stays faulty past the retry
                    // budget is skipped, the remaining spray width is
                    // halved, and the noise pool is re-drained so the
                    // narrower spray still lands on released blocks.
                    Err(HvError::Transient { .. }) if self.retry.degrade => {
                        budget /= 2;
                        host.tracer().spray_degraded(budget);
                        if budget < HUGE_PAGE_SIZE {
                            return Ok(stats);
                        }
                        self.exhaust_noise_inner(host, vm)?;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(stats)
    }

    /// The §4.2.3 spray sizing rule: `(N + 2)` GiB for `N` released
    /// hugepages (at least `512 × (N + 2)` EPT pages).
    pub fn spray_budget(released_hugepages: usize) -> u64 {
        (released_hugepages as u64 + 2) << 30
    }

    /// Table 2 accounting: intersects the host's released-page log with
    /// the VM's current EPT pages.
    pub fn reuse_stats(host: &Host, vm: &Vm) -> ReuseStats {
        let released = host.released_log();
        let ept: std::collections::HashSet<u64> = vm
            .ept_table_pages(host)
            .into_iter()
            .map(|(pfn, _)| pfn.index())
            .collect();
        let reused = released.iter().filter(|p| ept.contains(&p.index())).count() as u64;
        ReuseStats {
            released_pages: released.len() as u64,
            ept_pages: ept.len() as u64,
            reused_pages: reused,
        }
    }

    /// Runs all three steps for the given victim hugepages, sizing the
    /// spray by the §4.2.3 rule (capped by the VM's plugged memory).
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors, including the quarantine NACK.
    pub fn run(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        victim_hugepages: &[Gpa],
    ) -> Result<(Vec<NoiseSample>, Vec<Gpa>, SprayStats), HvError> {
        let noise = self.exhaust_noise(host, vm)?;
        let released = self.release_hugepages(host, vm, victim_hugepages)?;
        match self.spray_ept(host, vm, Self::spray_budget(released.len())) {
            Ok(stats) => Ok((noise, released, stats)),
            Err(e) => {
                // Roll the release back so a failed steering run leaves
                // the VM's virtio-mem plug state as it found it (the
                // retry loop depends on starting from a clean state).
                // Re-plugging is best-effort: if the host is too far
                // gone to provision fresh backing, the original error
                // still propagates.
                for &hp in &released {
                    let _ = with_retries(&self.retry, host, |h| vm.virtio_mem_plug(h, hp));
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Scenario;

    fn setup() -> (hh_hv::Host, hh_hv::Vm, PageSteering) {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let vm = host.create_vm(sc.vm_config()).unwrap();
        let steering = PageSteering::new(sc.steering_params());
        (host, vm, steering)
    }

    #[test]
    fn exhaust_drains_noise_pages() {
        let (mut host, mut vm, steering) = setup();
        let samples = steering.exhaust_noise(&mut host, &mut vm).unwrap();
        assert!(samples.len() >= 2);
        let first = samples.first().unwrap();
        let last = samples.last().unwrap();
        // The curve goes down (modulo split sawtooth) and ends below the
        // 1 024-page threshold the paper draws in Figure 3.
        assert!(first.noise_pages > 0);
        assert!(last.noise_pages < 1_024, "ended at {}", last.noise_pages);
        assert!(last.time > first.time, "delays advance the clock");
    }

    #[test]
    fn release_produces_order9_unmovable_blocks() {
        let (mut host, mut vm, steering) = setup();
        let base = vm.virtio_mem().region_base();
        let victims = [base.add(4 * HUGE_PAGE_SIZE), base.add(9 * HUGE_PAGE_SIZE)];
        let released = steering
            .release_hugepages(&mut host, &mut vm, &victims)
            .unwrap();
        assert_eq!(released.len(), 2);
        assert_eq!(host.released_log().len(), 2 * 512);
        // Duplicate release is a no-op.
        let again = steering
            .release_hugepages(&mut host, &mut vm, &victims)
            .unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn spray_splits_hugepages_and_allocates_ept_pages() {
        let (mut host, mut vm, steering) = setup();
        let leaves_before = vm.ept_leaf_pages(&host).len();
        let stats = steering
            .spray_ept(&mut host, &mut vm, 10 * HUGE_PAGE_SIZE)
            .unwrap();
        assert_eq!(stats.hugepages_executed, 10);
        assert_eq!(stats.splits, 10);
        assert_eq!(vm.ept_leaf_pages(&host).len(), leaves_before + 10);
        // Spraying the same region again splits nothing.
        let stats2 = steering
            .spray_ept(&mut host, &mut vm, 10 * HUGE_PAGE_SIZE)
            .unwrap();
        assert_eq!(stats2.splits, 0);
    }

    #[test]
    fn full_steering_reuses_released_pages_for_ept() {
        // Needs the mid-size scenario: the spray must out-volume the PCP
        // plus split-remnant noise floor (§4.2.3's sizing rule).
        let sc = Scenario::small_attack();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let steering = PageSteering::new(sc.steering_params());
        host.reset_released_log();
        let base = vm.virtio_mem().region_base();
        let victims: Vec<_> = (0..4u64).map(|i| base.add(i * HUGE_PAGE_SIZE)).collect();
        let (_noise, released, spray) = steering.run(&mut host, &mut vm, &victims).unwrap();
        assert_eq!(released.len(), 4);
        assert!(spray.splits > 512, "spray must out-volume the noise floor");
        let reuse = PageSteering::reuse_stats(&host, &vm);
        assert_eq!(reuse.released_pages, 4 * 512);
        assert!(
            reuse.reused_pages > 0,
            "post-exhaustion EPT allocations must hit released blocks: {reuse:?}"
        );
        assert!(reuse.r_n() > 0.0 && reuse.r_e() > 0.0);
        assert!(reuse.r_n() <= 1.0 && reuse.r_e() <= 1.0);
    }

    #[test]
    fn quarantine_blocks_the_release_step() {
        let sc = Scenario::tiny_demo().with_quarantine();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let steering = PageSteering::new(sc.steering_params());
        let base = vm.virtio_mem().region_base();
        let err = steering
            .release_hugepages(&mut host, &mut vm, &[base])
            .unwrap_err();
        assert!(matches!(err, HvError::QuarantineNack { .. }));
    }

    #[test]
    fn spray_budget_rule() {
        assert_eq!(PageSteering::spray_budget(0), 2 << 30);
        assert_eq!(PageSteering::spray_budget(12), 14 << 30);
    }

    #[test]
    fn idle_function_is_listing1_shaped() {
        assert_eq!(IDLE_FUNCTION[0], 0x55); // push %rbp
        assert_eq!(IDLE_FUNCTION[IDLE_FUNCTION.len() - 1], 0xc3); // ret
        assert!(IDLE_FUNCTION.iter().filter(|&&b| b == 0x90).count() >= 8);
    }
}

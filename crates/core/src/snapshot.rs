//! Mid-campaign machine snapshots: serialize, restore, fork.
//!
//! A campaign cell's machine is a pure function of `(scenario, seed,
//! fault config)` *plus* accumulated mutable state — allocator free-list
//! LIFO order, DRAM contents (which include the EPT trees: table pages
//! live in simulated DRAM), the flip journal, clock and RNG positions,
//! and the fault-injection stream indexes. [`Machine::snapshot`]
//! captures all of it in the versioned `hyperhammer-snap-v1` byte
//! format; [`Machine::restore`] rebuilds a bit-identical machine, so an
//! interrupted campaign resumed from a checkpoint replays the exact
//! byte stream an uninterrupted run would have produced.
//!
//! [`Machine::fork`] clones a machine without serializing: DRAM pages
//! are shared copy-on-write with the parent (see
//! [`hh_dram::DramDevice::fork`]), so one profiled host can fan out
//! into N divergent cells paying for profiling once.
//!
//! # Format (`hyperhammer-snap-v1`)
//!
//! All integers little-endian, fixed width; strings and byte blobs are
//! `u64` length-prefixed. See `docs/` for the field-by-field layout.
//! Decoding is bounds-checked end to end: truncated, bit-flipped or
//! wrong-version inputs return a typed [`SnapError`], never panic, and
//! never allocate from an unvalidated length prefix.
//!
//! Snapshots are taken at quiescent points — between campaign attempts,
//! with no live VM. Host state fully determines the machine there.

use hh_hv::{FaultConfig, Host};
use hh_sim::snap::{Dec, Enc, SnapError};
use hh_sim::{ByteSize, Hpa};

use crate::machine::Scenario;
use crate::profile::{CatalogEntry, FlipCatalog};
use hh_dram::FlipDirection;

/// Leading magic of every snapshot file.
pub const SNAP_MAGIC: &[u8; 16] = b"hyperhammer-snap";

/// Current snapshot format version. Bump only with a migration note in
/// `CHANGELOG.md` and a refreshed `tests/fixtures/snap-v1.bin` golden
/// fixture (the format-compat CI stage enforces both).
pub const SNAP_VERSION: u32 = 1;

/// A campaign cell's machine: the scenario binding plus the live host,
/// optionally carrying the profiled flip catalog so a restored or
/// forked machine can skip straight to the attack stages.
#[derive(Debug)]
pub struct Machine {
    /// Registry lookup name (`"tiny"`, `"s1"`, …) — the serialized
    /// scenario identity.
    scenario_name: String,
    scenario: Scenario,
    host: Host,
    catalog: Option<FlipCatalog>,
}

impl Machine {
    /// Boots a machine for the named scenario with the given seed and
    /// fault plan.
    ///
    /// # Errors
    ///
    /// Returns the scenario-registry error for an unknown name.
    pub fn boot(scenario_name: &str, seed: u64, faults: FaultConfig) -> Result<Self, String> {
        let scenario = Scenario::by_name(scenario_name)?
            .with_seed(seed)
            .with_faults(faults);
        let host = scenario.boot_host();
        Ok(Self {
            scenario_name: scenario_name.to_string(),
            scenario,
            host,
            catalog: None,
        })
    }

    /// The registry lookup name the machine was booted from.
    pub fn scenario_name(&self) -> &str {
        &self.scenario_name
    }

    /// The bound scenario (seed and faults already applied).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The machine's seed.
    pub fn seed(&self) -> u64 {
        self.scenario.host_config().seed
    }

    /// The live host.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable access to the live host.
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// The profiled flip catalog, if one has been attached.
    pub fn catalog(&self) -> Option<&FlipCatalog> {
        self.catalog.as_ref()
    }

    /// Attaches the profiled flip catalog so it travels with snapshots
    /// and forks.
    pub fn set_catalog(&mut self, catalog: FlipCatalog) {
        self.catalog = Some(catalog);
    }

    /// Serializes the machine to the `hyperhammer-snap-v1` format.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.raw(SNAP_MAGIC);
        enc.u32(SNAP_VERSION);
        enc.str(&self.scenario_name);
        let cfg = self.scenario.host_config();
        enc.u64(cfg.seed);
        enc.f64(cfg.faults.viommu_rate);
        enc.f64(cfg.faults.virtio_mem_rate);
        enc.f64(cfg.faults.ept_split_rate);
        enc.f64(cfg.faults.alloc_rate);
        enc.u64(cfg.faults.seed);
        match &self.catalog {
            None => enc.u8(0),
            Some(catalog) => {
                enc.u8(1);
                enc.u64(catalog.host_mem.bytes());
                enc.u64(catalog.entries.len() as u64);
                for e in &catalog.entries {
                    enc.u64(e.cell_hpa.raw());
                    enc.u8(e.bit);
                    enc.u8(match e.direction {
                        FlipDirection::OneToZero => 0,
                        FlipDirection::ZeroToOne => 1,
                    });
                    enc.u64(e.aggressor_hugepage_hpa.raw());
                    enc.u64(e.aggressor_offsets[0]);
                    enc.u64(e.aggressor_offsets[1]);
                    enc.u8(u8::from(e.stable));
                }
            }
        }
        self.host.encode_state_into(&mut enc);
        self.host.tracer().snapshot_write();
        enc.into_bytes()
    }

    /// Rebuilds a machine from [`snapshot`](Self::snapshot) bytes,
    /// bit-identical to the one serialized (with a detached tracer).
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`] / [`SnapError::UnsupportedVersion`] for
    /// foreign or future inputs, [`SnapError`] variants for truncated or
    /// corrupt streams.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut dec = Dec::new(bytes);
        if dec.raw(SNAP_MAGIC.len())? != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = dec.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let scenario_name = dec.str()?.to_string();
        let seed = dec.u64()?;
        let faults = FaultConfig {
            viommu_rate: rate(dec.f64()?)?,
            virtio_mem_rate: rate(dec.f64()?)?,
            ept_split_rate: rate(dec.f64()?)?,
            alloc_rate: rate(dec.f64()?)?,
            seed: dec.u64()?,
        };
        let scenario = Scenario::by_name(&scenario_name)
            .map_err(|_| SnapError::Corrupt("unknown scenario name"))?
            .with_seed(seed)
            .with_faults(faults);
        let catalog = match dec.u8()? {
            0 => None,
            1 => {
                let host_mem = ByteSize::bytes_exact(dec.u64()?);
                // cell u64 + bit u8 + dir u8 + hugepage u64 + 2×u64 + stable u8 = 43.
                let count = dec.count(43)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let cell_hpa = Hpa::new(dec.u64()?);
                    let bit = dec.u8()?;
                    if bit > 7 {
                        return Err(SnapError::Corrupt("catalog bit beyond byte"));
                    }
                    let direction = match dec.u8()? {
                        0 => FlipDirection::OneToZero,
                        1 => FlipDirection::ZeroToOne,
                        _ => return Err(SnapError::Corrupt("unknown flip direction")),
                    };
                    let aggressor_hugepage_hpa = Hpa::new(dec.u64()?);
                    let aggressor_offsets = [dec.u64()?, dec.u64()?];
                    let stable = match dec.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(SnapError::Corrupt("catalog stable flag not 0/1")),
                    };
                    entries.push(CatalogEntry {
                        cell_hpa,
                        bit,
                        direction,
                        aggressor_hugepage_hpa,
                        aggressor_offsets,
                        stable,
                    });
                }
                Some(FlipCatalog { entries, host_mem })
            }
            _ => return Err(SnapError::Corrupt("catalog presence flag not 0/1")),
        };
        let host = Host::from_snapshot_state(scenario.host_config().clone(), &mut dec)?;
        dec.finish()?;
        Ok(Self {
            scenario_name,
            scenario,
            host,
            catalog,
        })
    }

    /// A copy-on-write fork: DRAM pages are shared with the parent
    /// until either side writes; everything else (allocator, clock,
    /// RNG and fault-stream positions, catalog) is copied. The fork
    /// starts with a detached tracer.
    pub fn fork(&self) -> Self {
        self.host.tracer().snapshot_fork();
        Self {
            scenario_name: self.scenario_name.clone(),
            scenario: self.scenario.clone(),
            host: self.host.fork(),
            catalog: self.catalog.clone(),
        }
    }

    /// An order-sensitive digest of the full machine state (FNV-1a over
    /// the canonical snapshot encoding) — two machines digest equal iff
    /// their snapshots are byte-identical.
    pub fn digest(&self) -> u64 {
        let mut enc = Enc::new();
        enc.raw(SNAP_MAGIC);
        enc.u32(SNAP_VERSION);
        enc.str(&self.scenario_name);
        let cfg = self.scenario.host_config();
        enc.u64(cfg.seed);
        self.host.encode_state_into(&mut enc);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in enc.into_bytes().iter() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Validates a decoded fault rate: probabilities live in `[0, 1]` and a
/// corrupt (bit-flipped) float must not reach the constructors that
/// assert on it.
fn rate(x: f64) -> Result<f64, SnapError> {
    if (0.0..=1.0).contains(&x) {
        Ok(x)
    } else {
        Err(SnapError::Corrupt("fault rate out of [0, 1]"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{AttackDriver, DriverParams};
    use hh_buddy::MigrateType;

    fn worked_machine() -> Machine {
        let mut m = Machine::boot("tiny", 0x7e57, FaultConfig::uniform(0.02).with_seed(3)).unwrap();
        // Accumulate state in every subsystem.
        let host = m.host_mut();
        for _ in 0..4 {
            let _ = host.alloc_ept_page();
        }
        let blk = host.buddy_mut().alloc(2, MigrateType::Movable).unwrap();
        host.buddy_mut().free(blk, 2);
        host.charge_nanos(55_555);
        let _ = host.rng_mut().next_u64();
        m
    }

    #[test]
    fn snapshot_restore_is_bit_identical_by_digest() {
        let m = worked_machine();
        let bytes = m.snapshot();
        let restored = Machine::restore(&bytes).expect("valid snapshot");
        assert_eq!(restored.digest(), m.digest());
        assert_eq!(restored.scenario_name(), "tiny");
        assert_eq!(restored.seed(), 0x7e57);
        assert_eq!(
            restored.host().buddy().free_state_digest(),
            m.host().buddy().free_state_digest()
        );
        // Restore is reproducible: a second round trip is byte-identical.
        assert_eq!(restored.snapshot(), bytes);
    }

    #[test]
    fn catalog_travels_with_the_snapshot() {
        let mut m = worked_machine();
        let driver = AttackDriver::new(DriverParams {
            bits_per_attempt: 4,
            stable_bits_only: true,
            ..DriverParams::paper()
        });
        let scenario = m.scenario().clone();
        let host = m.host_mut();
        let mut vm = host.create_vm(scenario.vm_config()).unwrap();
        let catalog = driver
            .profile_and_catalog(host, &mut vm, scenario.profile_params())
            .unwrap();
        vm.destroy(host);
        m.set_catalog(catalog);

        let restored = Machine::restore(&m.snapshot()).expect("valid snapshot");
        assert_eq!(
            restored.catalog().map(|c| &c.entries),
            m.catalog().map(|c| &c.entries)
        );
        assert_eq!(restored.digest(), m.digest());
    }

    #[test]
    fn fork_preserves_digest_then_diverges() {
        let m = worked_machine();
        let fork = m.fork();
        assert_eq!(fork.digest(), m.digest());
        assert!(fork.host().dram().store().shared_pages() > 0);

        let mut fork = fork;
        let _ = fork.host_mut().alloc_ept_page();
        assert_ne!(fork.digest(), m.digest());
    }

    #[test]
    fn wrong_magic_version_and_truncation_are_typed_errors() {
        let bytes = worked_machine().snapshot();

        let mut foreign = bytes.clone();
        foreign[0] ^= 0x40;
        assert_eq!(Machine::restore(&foreign).err(), Some(SnapError::BadMagic));

        let mut future = bytes.clone();
        future[SNAP_MAGIC.len()] = 9;
        assert_eq!(
            Machine::restore(&future).err(),
            Some(SnapError::UnsupportedVersion(9))
        );

        for len in (0..bytes.len()).step_by(257).chain([bytes.len() - 1]) {
            let err = Machine::restore(&bytes[..len]).expect_err("truncated must fail");
            let _ = err.to_string();
        }

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Machine::restore(&trailing).err(),
            Some(SnapError::TrailingBytes(1))
        );
    }

    #[test]
    fn bit_flips_never_panic_and_rarely_slip_through() {
        let bytes = worked_machine().snapshot();
        // Flip one bit at a sweep of positions; every outcome must be a
        // typed error or a machine (no panics, no unbounded allocation).
        for pos in (0..bytes.len()).step_by(131) {
            for bit in [0, 3, 7] {
                let mut evil = bytes.clone();
                evil[pos] ^= 1 << bit;
                match Machine::restore(&evil) {
                    Ok(m) => drop(m),
                    Err(e) => {
                        let _ = e.to_string();
                    }
                }
            }
        }
    }
}

//! Campaign job specifications — the shared description of "one
//! campaign run" used by both the CLI `campaign` command and the
//! campaign server's `POST /jobs` API.
//!
//! The byte-identity contract between the two fronts (a server job's
//! streamed NDJSON must equal the serial CLI run's `--json` output)
//! holds **by construction**: both build their [`CampaignGrid`] through
//! [`JobSpec::grid_for`], so driver parameters, fault plans, retry
//! policies and seed derivation can never drift apart.

use hh_hv::FaultConfig;
use hh_sim::clock::SimDuration;

use crate::driver::DriverParams;
use crate::machine::Scenario;
use crate::parallel::CampaignGrid;
use crate::steering::RetryPolicy;

/// Everything that defines one campaign run: the scenario list, the
/// seed grid, the attack budget, fault injection, and (server-side)
/// scheduling hints. Plain data; field defaults mirror the CLI's.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Registered scenario lookup names (`"tiny"`, `"s1"`, …).
    pub scenarios: Vec<String>,
    /// Experiment seeds per scenario, derived from `base_seed`.
    pub seeds: usize,
    /// Base of the split-seed derivation.
    pub base_seed: u64,
    /// Attack attempts per cell.
    pub attempts: usize,
    /// Catalogued bits targeted per attempt.
    pub bits: usize,
    /// Requested worker count (`None` = all available parallelism).
    /// Cannot change results — only wall-clock time.
    pub jobs: Option<usize>,
    /// Server queue priority: higher runs first among queued jobs.
    pub priority: u8,
    /// Uniform transient-fault injection rate (0 disables).
    pub fault_rate: f64,
    /// Fault-stream seed.
    pub fault_seed: u64,
    /// Retries per faulted operation.
    pub max_retries: u32,
    /// Simulated backoff per retry, in milliseconds.
    pub backoff_ms: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            scenarios: vec!["small".to_string()],
            seeds: 1,
            base_seed: 0,
            attempts: 50,
            bits: 12,
            jobs: None,
            priority: 0,
            fault_rate: 0.0,
            fault_seed: 0,
            max_retries: 4,
            backoff_ms: 10,
        }
    }
}

impl JobSpec {
    /// Validates the spec without building anything: every scenario
    /// name must be registered, and the numeric fields must describe a
    /// non-empty, runnable grid.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found —
    /// unknown scenario names include the registered list.
    pub fn validate(&self) -> Result<(), String> {
        if self.scenarios.is_empty() {
            return Err("job spec needs at least one scenario".to_string());
        }
        for name in &self.scenarios {
            Scenario::by_name(name)?;
        }
        if self.seeds == 0 {
            return Err("seeds must be at least 1".to_string());
        }
        if self.attempts == 0 {
            return Err("attempts must be at least 1".to_string());
        }
        if self.bits == 0 {
            return Err("bits must be at least 1".to_string());
        }
        if !(self.fault_rate.is_finite() && (0.0..=1.0).contains(&self.fault_rate)) {
            return Err("fault_rate must be a rate in 0..=1".to_string());
        }
        Ok(())
    }

    /// Total cell count of the grid this spec describes.
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.seeds
    }

    /// The host-side fault plan this spec describes.
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig::uniform(self.fault_rate).with_seed(self.fault_seed)
    }

    /// The driver-side recovery policy this spec describes.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.max_retries,
            backoff: SimDuration::from_millis(self.backoff_ms),
            degrade: true,
        }
    }

    /// Builds the campaign grid for already-resolved scenarios — the
    /// one place driver parameters, fault plan and seed grid are
    /// assembled, shared by [`JobSpec::to_grid`] and the CLI (which
    /// resolves scenarios during argument parsing).
    ///
    /// Tracing is left [`Off`](hh_trace::TraceMode::Off); callers that
    /// trace add `.with_trace(..)` on top.
    pub fn grid_for(&self, scenarios: Vec<Scenario>) -> CampaignGrid {
        let params = DriverParams {
            bits_per_attempt: self.bits,
            retry: self.retry_policy(),
            ..DriverParams::paper()
        };
        CampaignGrid::new(scenarios, params, self.attempts)
            .with_faults(self.fault_config())
            .with_seed_count(self.base_seed, self.seeds)
    }

    /// Resolves the scenario names and builds the grid.
    ///
    /// # Errors
    ///
    /// See [`JobSpec::validate`].
    pub fn to_grid(&self) -> Result<CampaignGrid, String> {
        self.validate()?;
        let scenarios = self
            .scenarios
            .iter()
            .map(|name| Scenario::by_name(name))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.grid_for(scenarios))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::num::NonZeroUsize;

    fn tiny_spec() -> JobSpec {
        JobSpec {
            scenarios: vec!["tiny".to_string()],
            seeds: 2,
            base_seed: 0x717e,
            attempts: 2,
            bits: 4,
            ..JobSpec::default()
        }
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(tiny_spec().validate().is_ok());

        let mut bad = tiny_spec();
        bad.scenarios = vec!["warp9".to_string()];
        let err = bad.validate().unwrap_err();
        assert!(err.contains("unknown scenario warp9"), "got: {err}");
        assert!(err.contains("tiny"), "error must list registered names");

        let mut bad = tiny_spec();
        bad.scenarios.clear();
        assert!(bad.validate().is_err());

        let mut bad = tiny_spec();
        bad.seeds = 0;
        assert!(bad.validate().is_err());

        let mut bad = tiny_spec();
        bad.fault_rate = 1.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn spec_grid_matches_hand_built_grid() {
        // The spec-built grid must equal what the CLI used to assemble
        // by hand — same cells, same results.
        let spec = tiny_spec();
        let grid = spec.to_grid().unwrap();
        assert_eq!(grid.len(), spec.cell_count());

        let params = DriverParams {
            bits_per_attempt: 4,
            retry: spec.retry_policy(),
            ..DriverParams::paper()
        };
        let reference = CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2)
            .with_faults(spec.fault_config())
            .with_seed_count(0x717e, 2);

        let a = grid.run(NonZeroUsize::new(2).unwrap()).unwrap();
        let b = reference.run(NonZeroUsize::new(1).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn default_spec_mirrors_cli_defaults() {
        let spec = JobSpec::default();
        assert_eq!(spec.scenarios, vec!["small".to_string()]);
        assert_eq!((spec.seeds, spec.attempts, spec.bits), (1, 50, 12));
        assert_eq!((spec.max_retries, spec.backoff_ms), (4, 10));
        assert!(!spec.fault_config().is_active());
    }
}

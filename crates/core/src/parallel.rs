//! Deterministic parallel campaign engine.
//!
//! Table 3 and the §5.3.2 ablation sweeps repeat full attack campaigns —
//! profile, steer, hammer, escape — over a grid of (scenario ×
//! experiment-seed) cells. The cells are independent by construction:
//! each owns a freshly-booted [`Host`](hh_hv::Host) whose every RNG
//! stream descends from the cell's own seed, so running them on worker
//! threads changes wall-clock time and nothing else.
//!
//! Two properties make the engine *deterministic*, not merely parallel:
//!
//! 1. **Seed splitting.** Cell seeds come from
//!    [`SimRng::split_seed`]`(base, index)` — a pure function of the grid's
//!    base seed and the cell's position, never of worker count or
//!    scheduling order.
//! 2. **Indexed results.** Workers claim work through chunked
//!    work-stealing deques but each result lands in its item's own
//!    slot, so the output vector is always in grid order. A 1-worker
//!    run and an 8-worker run of the same grid return bit-identical
//!    [`CampaignStats`].
//!
//! Scheduling is *work-stealing*: every worker starts with its own
//! deque of index chunks and, once drained, steals whole chunks from
//! the back of its neighbours' deques. Stragglers (a cell whose
//! campaign runs long) therefore no longer serialize the tail of the
//! grid the way a static split would, and the deterministic-output
//! guarantee is untouched because *which worker* runs a cell never
//! influences *what the cell computes*.
//!
//! [`parallel_map`] also clamps its effective worker count to the
//! machine's available parallelism: requesting more workers than CPUs
//! can only add contention (on a 1-CPU host it made 4-worker runs ~24 %
//! *slower* than serial), and because results are scheduling-independent
//! the clamp is unobservable in the output.
//!
//! The engine is two layers: [`parallel_map`], a general deterministic
//! fan-out over `std::thread::scope` (also used by the benchmark
//! harness's ablation sweeps), and [`CampaignGrid`], the campaign-shaped
//! API on top.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hh_hv::{FaultConfig, HvError};
use hh_sim::rng::SimRng;
use hh_trace::{TraceMode, TraceSink, Tracer};

use crate::driver::{AttackDriver, CampaignStats, DriverParams};
use crate::machine::Scenario;
use crate::steering::{with_retries, RetryPolicy};
use crate::template::MachineTemplate;

/// Resolves a `--jobs`-style request: `None` means "use all available
/// parallelism", and a request is clamped to at least one worker.
pub fn resolve_jobs(requested: Option<usize>) -> NonZeroUsize {
    match requested {
        Some(n) => NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"),
        None => std::thread::available_parallelism()
            .unwrap_or_else(|_| NonZeroUsize::new(1).expect("1 is non-zero")),
    }
}

/// Applies `f` to every item on up to `jobs` scoped workers, returning
/// results in input order.
///
/// The effective worker count is clamped to the machine's available
/// parallelism (and to the item count): oversubscribing a small machine
/// only adds scheduler contention and per-thread allocator overhead,
/// and because outputs are scheduling-independent the clamp cannot
/// change results. Use [`parallel_map_exact`] to force a width (the
/// determinism tests do, so cross-thread scheduling is exercised even
/// on single-CPU machines).
///
/// Work distribution is chunked work-stealing — see the
/// [module docs](self). `f` must itself be deterministic per item for
/// the full determinism guarantee to hold; the campaign engine arranges
/// that by deriving every cell's RNG from its own seed.
///
/// # Panics
///
/// Propagates panics from `f` once all workers have stopped.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: NonZeroUsize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    run_on_workers(items, jobs.get().min(cpus), f)
}

/// [`parallel_map`] without the available-parallelism clamp: exactly
/// `jobs` workers (still at most one per item). Results are identical
/// to [`parallel_map`]'s — this variant exists so tests can prove that
/// on *any* machine, not to make production runs faster.
pub fn parallel_map_exact<T, R, F>(items: Vec<T>, jobs: NonZeroUsize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_on_workers(items, jobs.get(), f)
}

/// Chunk granularity: a few chunks per worker so early finishers have
/// something to steal, but no smaller than one item.
fn chunk_len(n: usize, workers: usize) -> usize {
    n.div_ceil(workers * 4).max(1)
}

fn run_on_workers<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers == 1 {
        // Serial fast path: no threads, same order, same results.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Deal contiguous index chunks round-robin onto per-worker deques.
    // Workers pop their own deque from the front (oldest chunk first)
    // and steal from victims' backs, so an owner and a thief never
    // contend for the same end until a deque is nearly empty.
    let chunk = chunk_len(n, workers);
    let mut deques: Vec<VecDeque<Range<usize>>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut start = 0;
    let mut next_worker = 0;
    while start < n {
        let end = (start + chunk).min(n);
        deques[next_worker].push_back(start..end);
        next_worker = (next_worker + 1) % workers;
        start = end;
    }
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> = deques.into_iter().map(Mutex::new).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let tasks = &tasks;
            let results = &results;
            let f = &f;
            scope.spawn(move || loop {
                // Own deque first; once drained, scan victims in a
                // fixed ring order. Chunks are only ever *removed*, so
                // a full empty scan means the grid is done.
                let mut claimed = queues[me].lock().expect("queue poisoned").pop_front();
                if claimed.is_none() {
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        claimed = queues[victim].lock().expect("queue poisoned").pop_back();
                        if claimed.is_some() {
                            break;
                        }
                    }
                }
                let Some(range) = claimed else {
                    break;
                };
                for i in range {
                    let item = tasks[i]
                        .lock()
                        .expect("task slot poisoned")
                        .take()
                        .expect("each task index is claimed exactly once");
                    let out = f(i, item);
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran to completion")
        })
        .collect()
}

/// One (scenario × seed) cell of a campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Position in the grid, row-major (scenario-major, then seed).
    pub index: usize,
    /// The scenario, already re-seeded for this cell.
    pub scenario: Scenario,
    /// The experiment seed applied to the scenario.
    pub seed: u64,
}

/// The outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scenario name.
    pub scenario: &'static str,
    /// The cell's experiment seed.
    pub seed: u64,
    /// Exploitable bits in the reused profiling catalogue.
    pub catalog_bits: usize,
    /// The campaign statistics (Table 3 raw material).
    pub stats: CampaignStats,
    /// The cell's trace recording, when the grid runs with
    /// [`CampaignGrid::with_trace`]. Cells are independent, so merging
    /// the sinks in grid order is deterministic regardless of `--jobs`.
    pub trace: Option<TraceSink>,
}

/// A grid of (scenario × experiment-seed) campaign cells plus the attack
/// parameters shared by every cell.
///
/// # Examples
///
/// ```
/// use hyperhammer::machine::Scenario;
/// use hyperhammer::driver::DriverParams;
/// use hyperhammer::parallel::CampaignGrid;
/// use std::num::NonZeroUsize;
///
/// let params = DriverParams { bits_per_attempt: 4, ..DriverParams::paper() };
/// let grid = CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2)
///     .with_seed_count(0xbeef, 2);
/// let serial = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
/// let parallel = grid.run(NonZeroUsize::new(2).unwrap()).unwrap();
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    params: DriverParams,
    max_attempts: usize,
    trace: TraceMode,
}

impl CampaignGrid {
    /// Creates a grid over `scenarios` with one default cell seed (0);
    /// widen with [`CampaignGrid::with_seeds`] or
    /// [`CampaignGrid::with_seed_count`].
    pub fn new(scenarios: Vec<Scenario>, params: DriverParams, max_attempts: usize) -> Self {
        Self {
            scenarios,
            seeds: vec![0],
            params,
            max_attempts,
            trace: TraceMode::Off,
        }
    }

    /// Records per-cell traces at the given level; each [`CellResult`]
    /// then carries its cell's [`TraceSink`].
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Applies a hostile-host fault plan to every scenario in the grid.
    /// Each cell still derives its own injection stream: the plan mixes
    /// the cell's host seed, which [`CampaignGrid::cells`] re-splits per
    /// cell, so no two cells share a fault schedule and determinism per
    /// cell (hence across `--jobs`) is preserved.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        for scenario in &mut self.scenarios {
            *scenario = scenario.clone().with_faults(faults);
        }
        self
    }

    /// Replaces the transient-fault recovery policy used by every cell.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.params.retry = retry;
        self
    }

    /// Uses these explicit experiment seeds for every scenario.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "a grid needs at least one seed");
        self.seeds = seeds;
        self
    }

    /// Derives `count` seeds from `base` via [`SimRng::split_seed`] —
    /// the canonical seed-splitting scheme, reproducible from `base`
    /// alone.
    pub fn with_seed_count(self, base: u64, count: usize) -> Self {
        assert!(count > 0, "a grid needs at least one seed");
        let seeds = (0..count as u64)
            .map(|i| SimRng::split_seed(base, i))
            .collect();
        self.with_seeds(seeds)
    }

    /// The grid's cells in row-major (scenario-major) order, each with
    /// its re-seeded scenario.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut out = Vec::with_capacity(self.scenarios.len() * self.seeds.len());
        for scenario in &self.scenarios {
            for &seed in &self.seeds {
                out.push(CampaignCell {
                    index: out.len(),
                    scenario: scenario.clone().with_seed(seed),
                    seed,
                });
            }
        }
        out
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// `true` when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One [`MachineTemplate`] per scenario, in scenario order; cell
    /// `i` uses entry `i / seeds`.
    fn scenario_templates(&self) -> Vec<MachineTemplate> {
        self.scenarios
            .iter()
            .map(MachineTemplate::for_scenario)
            .collect()
    }

    /// Runs one cell exactly as the serial path would: boot, profile,
    /// catalogue, then campaign to first success or the attempt budget.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors.
    pub fn run_cell(&self, cell: &CampaignCell) -> Result<CellResult, HvError> {
        self.run_cell_with(cell, &MachineTemplate::for_scenario(&cell.scenario), 0)
    }

    /// [`CampaignGrid::run_cell`] against a prebuilt template. The
    /// `events_hint` pre-sizes the cell's trace arena (capacity only —
    /// a wrong hint can never change recorded output, so passing a
    /// scheduling-dependent high-water mark is safe).
    fn run_cell_with(
        &self,
        cell: &CampaignCell,
        template: &MachineTemplate,
        events_hint: usize,
    ) -> Result<CellResult, HvError> {
        let driver = AttackDriver::new(self.params.clone());
        let mut host = template.instantiate(cell.seed);
        // Attach after boot: boot-time noise is outside the campaign.
        let tracer = Tracer::with_capacity(self.trace, events_hint);
        tracer.set_cell(cell.index);
        host.attach_tracer(tracer.clone());
        // An active fault plan can trip the profiling stage too (VM
        // creation jitter, EPT splits under the profiler's hammering).
        // Retry the whole stage on a fresh VM: the faulted try destroys
        // its VM before the backoff, so nothing leaks between tries.
        let catalog = with_retries(&self.params.retry, &mut host, |h| {
            let mut vm = h.create_vm(cell.scenario.vm_config())?;
            let result = driver.profile_and_catalog_with(
                h,
                &mut vm,
                cell.scenario.profile_params(),
                Some(template.tables()),
            );
            vm.destroy(h);
            result
        })?;
        let stats = driver.campaign(&cell.scenario, &mut host, &catalog, self.max_attempts)?;
        Ok(CellResult {
            scenario: cell.scenario.name,
            seed: cell.seed,
            catalog_bits: catalog.entries.len(),
            stats,
            trace: tracer.take_sink(),
        })
    }

    /// Runs the whole grid on `jobs` workers; results are in grid order
    /// and identical for every `jobs` value.
    ///
    /// # Errors
    ///
    /// Returns the first (grid-order) hypervisor error.
    pub fn run(&self, jobs: NonZeroUsize) -> Result<Vec<CellResult>, HvError> {
        self.run_with_progress(jobs, |_| {})
    }

    /// [`CampaignGrid::run`] with a completion callback per cell. The
    /// callback observes cells as workers finish them (i.e. in
    /// scheduling order) and must therefore not influence results — use
    /// it for liveness reporting only.
    ///
    /// # Errors
    ///
    /// Returns the first (grid-order) hypervisor error.
    pub fn run_with_progress(
        &self,
        jobs: NonZeroUsize,
        progress: impl Fn(&CellResult) + Sync,
    ) -> Result<Vec<CellResult>, HvError> {
        let templates = self.scenario_templates();
        let seeds_per_scenario = self.seeds.len();
        // High-water mark of per-cell event counts, used to pre-size
        // later cells' trace arenas. Scheduling-dependent, but hints
        // only set capacity, so determinism is untouched.
        let events_hint = AtomicUsize::new(0);
        let cells = self.cells();
        let results = parallel_map(cells, jobs, |_, cell| {
            let template = &templates[cell.index / seeds_per_scenario];
            let hint = events_hint.load(Ordering::Relaxed);
            let result = self.run_cell_with(&cell, template, hint);
            if let Ok(r) = &result {
                if let Some(sink) = &r.trace {
                    events_hint.fetch_max(sink.events().len(), Ordering::Relaxed);
                }
                progress(r);
            }
            result
        });
        results.into_iter().collect()
    }

    /// Runs the grid serially on the calling thread — the reference the
    /// parallel path is tested against. Shares the per-scenario
    /// template machinery with the parallel path, so "serial vs
    /// parallel" compares scheduling only.
    ///
    /// # Errors
    ///
    /// Returns the first hypervisor error.
    pub fn run_serial(&self) -> Result<Vec<CellResult>, HvError> {
        let templates = self.scenario_templates();
        let seeds_per_scenario = self.seeds.len();
        self.cells()
            .iter()
            .map(|cell| self.run_cell_with(cell, &templates[cell.index / seeds_per_scenario], 0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid(seeds: usize) -> CampaignGrid {
        let params = DriverParams {
            bits_per_attempt: 4,
            stable_bits_only: true,
            ..DriverParams::paper()
        };
        CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2).with_seed_count(0x717e, seeds)
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_every_item() {
        let items: Vec<u64> = (0..37).collect();
        let jobs = NonZeroUsize::new(4).unwrap();
        // The exact variant forces 4 real workers even on a 1-CPU
        // machine, so cross-thread stealing is actually exercised.
        let out = parallel_map_exact(items.clone(), jobs, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let clamped = parallel_map(items.clone(), jobs, |_, x| x * 2);
        assert_eq!(clamped, out, "CPU clamp must not change results");
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed() {
        let jobs = NonZeroUsize::new(8).unwrap();
        let empty: Vec<u8> = parallel_map(Vec::<u8>::new(), jobs, |_, x| x);
        assert!(empty.is_empty());
        let two = parallel_map_exact(vec![1, 2], jobs, |_, x| x + 1);
        assert_eq!(two, vec![2, 3]);
    }

    #[test]
    fn work_stealing_survives_pathological_imbalance() {
        // Front-loaded cost: item 0 is ~3 orders of magnitude heavier
        // than the rest. A static split would strand worker 0's whole
        // initial share behind it; stealing lets the other workers
        // drain it, and the output must stay in input order either way.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_exact(items, NonZeroUsize::new(4).unwrap(), |i, x| {
            let spins = if i == 0 { 2_000_000 } else { 2_000 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn chunks_cover_every_index_without_overlap() {
        for n in [1usize, 2, 5, 16, 37, 100] {
            for workers in [1usize, 2, 4, 8] {
                let chunk = chunk_len(n, workers);
                assert!(chunk >= 1);
                // Reconstruct the dealing loop and check coverage.
                let mut seen = vec![false; n];
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    for (i, slot) in seen.iter_mut().enumerate().take(end).skip(start) {
                        assert!(!*slot, "index {i} dealt twice (n={n}, w={workers})");
                        *slot = true;
                    }
                    start = end;
                }
                assert!(seen.iter().all(|&s| s), "coverage gap (n={n}, w={workers})");
            }
        }
    }

    #[test]
    fn grid_cells_enumerate_row_major() {
        let grid = tiny_grid(3);
        let cells = grid.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(grid.len(), 3);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, SimRng::split_seed(0x717e, i as u64));
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let grid = tiny_grid(2);
        let serial = grid.run_serial().unwrap();
        let one = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
        let four = grid.run(NonZeroUsize::new(4).unwrap()).unwrap();
        assert_eq!(serial, one);
        assert_eq!(serial, four);
        assert_eq!(serial.len(), 2);
        for cell in &serial {
            assert!(!cell.stats.attempts.is_empty());
        }
    }

    #[test]
    fn resolve_jobs_clamps_and_defaults() {
        assert_eq!(resolve_jobs(Some(0)).get(), 1);
        assert_eq!(resolve_jobs(Some(6)).get(), 6);
        assert!(resolve_jobs(None).get() >= 1);
    }
}

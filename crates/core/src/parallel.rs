//! Deterministic parallel campaign engine.
//!
//! Table 3 and the §5.3.2 ablation sweeps repeat full attack campaigns —
//! profile, steer, hammer, escape — over a grid of (scenario ×
//! experiment-seed) cells. The cells are independent by construction:
//! each owns a freshly-booted [`Host`](hh_hv::Host) whose every RNG
//! stream descends from the cell's own seed, so running them on worker
//! threads changes wall-clock time and nothing else.
//!
//! Two properties make the engine *deterministic*, not merely parallel:
//!
//! 1. **Seed splitting.** Cell seeds come from
//!    [`SimRng::split_seed`]`(base, index)` — a pure function of the grid's
//!    base seed and the cell's position, never of worker count or
//!    scheduling order.
//! 2. **Indexed results.** Workers pull cells from a shared cursor but
//!    write results into the cell's own slot, so the output vector is
//!    always in grid order. A 1-worker run and an 8-worker run of the
//!    same grid return bit-identical [`CampaignStats`].
//!
//! The engine is two layers: [`parallel_map`], a general deterministic
//! fan-out over `std::thread::scope` (also used by the benchmark
//! harness's ablation sweeps), and [`CampaignGrid`], the campaign-shaped
//! API on top.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hh_hv::{FaultConfig, HvError};
use hh_sim::rng::SimRng;
use hh_trace::{TraceMode, TraceSink, Tracer};

use crate::driver::{AttackDriver, CampaignStats, DriverParams};
use crate::machine::Scenario;
use crate::steering::{with_retries, RetryPolicy};

/// Resolves a `--jobs`-style request: `None` means "use all available
/// parallelism", and a request is clamped to at least one worker.
pub fn resolve_jobs(requested: Option<usize>) -> NonZeroUsize {
    match requested {
        Some(n) => NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"),
        None => std::thread::available_parallelism()
            .unwrap_or_else(|_| NonZeroUsize::new(1).expect("1 is non-zero")),
    }
}

/// Applies `f` to every item on `jobs` scoped workers, returning results
/// in input order.
///
/// Work distribution is a shared atomic cursor: workers race for the
/// *next* index but each result lands in its item's slot, so the output
/// is independent of scheduling. `f` must itself be deterministic per
/// item for the full determinism guarantee to hold — the campaign engine
/// arranges that by deriving every cell's RNG from its own seed.
///
/// # Panics
///
/// Propagates panics from `f` once all workers have stopped.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: NonZeroUsize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.get().min(n);
    if workers == 1 {
        // Serial fast path: no threads, same order, same results.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("each task index is claimed exactly once");
                let out = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran to completion")
        })
        .collect()
}

/// One (scenario × seed) cell of a campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Position in the grid, row-major (scenario-major, then seed).
    pub index: usize,
    /// The scenario, already re-seeded for this cell.
    pub scenario: Scenario,
    /// The experiment seed applied to the scenario.
    pub seed: u64,
}

/// The outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scenario name.
    pub scenario: &'static str,
    /// The cell's experiment seed.
    pub seed: u64,
    /// Exploitable bits in the reused profiling catalogue.
    pub catalog_bits: usize,
    /// The campaign statistics (Table 3 raw material).
    pub stats: CampaignStats,
    /// The cell's trace recording, when the grid runs with
    /// [`CampaignGrid::with_trace`]. Cells are independent, so merging
    /// the sinks in grid order is deterministic regardless of `--jobs`.
    pub trace: Option<TraceSink>,
}

/// A grid of (scenario × experiment-seed) campaign cells plus the attack
/// parameters shared by every cell.
///
/// # Examples
///
/// ```
/// use hyperhammer::machine::Scenario;
/// use hyperhammer::driver::DriverParams;
/// use hyperhammer::parallel::CampaignGrid;
/// use std::num::NonZeroUsize;
///
/// let params = DriverParams { bits_per_attempt: 4, ..DriverParams::paper() };
/// let grid = CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2)
///     .with_seed_count(0xbeef, 2);
/// let serial = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
/// let parallel = grid.run(NonZeroUsize::new(2).unwrap()).unwrap();
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    params: DriverParams,
    max_attempts: usize,
    trace: TraceMode,
}

impl CampaignGrid {
    /// Creates a grid over `scenarios` with one default cell seed (0);
    /// widen with [`CampaignGrid::with_seeds`] or
    /// [`CampaignGrid::with_seed_count`].
    pub fn new(scenarios: Vec<Scenario>, params: DriverParams, max_attempts: usize) -> Self {
        Self {
            scenarios,
            seeds: vec![0],
            params,
            max_attempts,
            trace: TraceMode::Off,
        }
    }

    /// Records per-cell traces at the given level; each [`CellResult`]
    /// then carries its cell's [`TraceSink`].
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Applies a hostile-host fault plan to every scenario in the grid.
    /// Each cell still derives its own injection stream: the plan mixes
    /// the cell's host seed, which [`CampaignGrid::cells`] re-splits per
    /// cell, so no two cells share a fault schedule and determinism per
    /// cell (hence across `--jobs`) is preserved.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        for scenario in &mut self.scenarios {
            *scenario = scenario.clone().with_faults(faults);
        }
        self
    }

    /// Replaces the transient-fault recovery policy used by every cell.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.params.retry = retry;
        self
    }

    /// Uses these explicit experiment seeds for every scenario.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "a grid needs at least one seed");
        self.seeds = seeds;
        self
    }

    /// Derives `count` seeds from `base` via [`SimRng::split_seed`] —
    /// the canonical seed-splitting scheme, reproducible from `base`
    /// alone.
    pub fn with_seed_count(self, base: u64, count: usize) -> Self {
        assert!(count > 0, "a grid needs at least one seed");
        let seeds = (0..count as u64)
            .map(|i| SimRng::split_seed(base, i))
            .collect();
        self.with_seeds(seeds)
    }

    /// The grid's cells in row-major (scenario-major) order, each with
    /// its re-seeded scenario.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut out = Vec::with_capacity(self.scenarios.len() * self.seeds.len());
        for scenario in &self.scenarios {
            for &seed in &self.seeds {
                out.push(CampaignCell {
                    index: out.len(),
                    scenario: scenario.clone().with_seed(seed),
                    seed,
                });
            }
        }
        out
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// `true` when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs one cell exactly as the serial path would: boot, profile,
    /// catalogue, then campaign to first success or the attempt budget.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors.
    pub fn run_cell(&self, cell: &CampaignCell) -> Result<CellResult, HvError> {
        let driver = AttackDriver::new(self.params.clone());
        let mut host = cell.scenario.boot_host();
        // Attach after boot: boot-time noise is outside the campaign.
        let tracer = Tracer::new(self.trace);
        tracer.set_cell(cell.index);
        host.attach_tracer(tracer.clone());
        // An active fault plan can trip the profiling stage too (VM
        // creation jitter, EPT splits under the profiler's hammering).
        // Retry the whole stage on a fresh VM: the faulted try destroys
        // its VM before the backoff, so nothing leaks between tries.
        let catalog = with_retries(&self.params.retry, &mut host, |h| {
            let mut vm = h.create_vm(cell.scenario.vm_config())?;
            let result = driver.profile_and_catalog(h, &mut vm, cell.scenario.profile_params());
            vm.destroy(h);
            result
        })?;
        let stats = driver.campaign(&cell.scenario, &mut host, &catalog, self.max_attempts)?;
        Ok(CellResult {
            scenario: cell.scenario.name,
            seed: cell.seed,
            catalog_bits: catalog.entries.len(),
            stats,
            trace: tracer.take_sink(),
        })
    }

    /// Runs the whole grid on `jobs` workers; results are in grid order
    /// and identical for every `jobs` value.
    ///
    /// # Errors
    ///
    /// Returns the first (grid-order) hypervisor error.
    pub fn run(&self, jobs: NonZeroUsize) -> Result<Vec<CellResult>, HvError> {
        self.run_with_progress(jobs, |_| {})
    }

    /// [`CampaignGrid::run`] with a completion callback per cell. The
    /// callback observes cells as workers finish them (i.e. in
    /// scheduling order) and must therefore not influence results — use
    /// it for liveness reporting only.
    ///
    /// # Errors
    ///
    /// Returns the first (grid-order) hypervisor error.
    pub fn run_with_progress(
        &self,
        jobs: NonZeroUsize,
        progress: impl Fn(&CellResult) + Sync,
    ) -> Result<Vec<CellResult>, HvError> {
        let cells = self.cells();
        let results = parallel_map(cells, jobs, |_, cell| {
            let result = self.run_cell(&cell);
            if let Ok(r) = &result {
                progress(r);
            }
            result
        });
        results.into_iter().collect()
    }

    /// Runs the grid serially on the calling thread — the reference the
    /// parallel path is tested against.
    ///
    /// # Errors
    ///
    /// Returns the first hypervisor error.
    pub fn run_serial(&self) -> Result<Vec<CellResult>, HvError> {
        self.cells()
            .iter()
            .map(|cell| self.run_cell(cell))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid(seeds: usize) -> CampaignGrid {
        let params = DriverParams {
            bits_per_attempt: 4,
            stable_bits_only: true,
            ..DriverParams::paper()
        };
        CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2).with_seed_count(0x717e, seeds)
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_every_item() {
        let items: Vec<u64> = (0..37).collect();
        let jobs = NonZeroUsize::new(4).unwrap();
        let out = parallel_map(items.clone(), jobs, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed() {
        let jobs = NonZeroUsize::new(8).unwrap();
        let empty: Vec<u8> = parallel_map(Vec::<u8>::new(), jobs, |_, x| x);
        assert!(empty.is_empty());
        let two = parallel_map(vec![1, 2], jobs, |_, x| x + 1);
        assert_eq!(two, vec![2, 3]);
    }

    #[test]
    fn grid_cells_enumerate_row_major() {
        let grid = tiny_grid(3);
        let cells = grid.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(grid.len(), 3);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, SimRng::split_seed(0x717e, i as u64));
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let grid = tiny_grid(2);
        let serial = grid.run_serial().unwrap();
        let one = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
        let four = grid.run(NonZeroUsize::new(4).unwrap()).unwrap();
        assert_eq!(serial, one);
        assert_eq!(serial, four);
        assert_eq!(serial.len(), 2);
        for cell in &serial {
            assert!(!cell.stats.attempts.is_empty());
        }
    }

    #[test]
    fn resolve_jobs_clamps_and_defaults() {
        assert_eq!(resolve_jobs(Some(0)).get(), 1);
        assert_eq!(resolve_jobs(Some(6)).get(), 6);
        assert!(resolve_jobs(None).get() >= 1);
    }
}

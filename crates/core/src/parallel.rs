//! Deterministic parallel campaign engine.
//!
//! Table 3 and the §5.3.2 ablation sweeps repeat full attack campaigns —
//! profile, steer, hammer, escape — over a grid of (scenario ×
//! experiment-seed) cells. The cells are independent by construction:
//! each owns a freshly-booted [`Host`](hh_hv::Host) whose every RNG
//! stream descends from the cell's own seed, so running them on worker
//! threads changes wall-clock time and nothing else.
//!
//! Two properties make the engine *deterministic*, not merely parallel:
//!
//! 1. **Seed splitting.** Cell seeds come from
//!    [`SimRng::split_seed`]`(base, index)` — a pure function of the grid's
//!    base seed and the cell's position, never of worker count or
//!    scheduling order.
//! 2. **Indexed results.** Workers claim work through chunked
//!    work-stealing deques but each result lands in its item's own
//!    slot, so the output vector is always in grid order. A 1-worker
//!    run and an 8-worker run of the same grid return bit-identical
//!    [`CampaignStats`].
//!
//! Scheduling is *work-stealing*: every worker starts with its own
//! deque of index chunks and, once drained, steals whole chunks from
//! the back of its neighbours' deques. Stragglers (a cell whose
//! campaign runs long) therefore no longer serialize the tail of the
//! grid the way a static split would, and the deterministic-output
//! guarantee is untouched because *which worker* runs a cell never
//! influences *what the cell computes*.
//!
//! [`parallel_map`] also clamps its effective worker count to the
//! machine's available parallelism: requesting more workers than CPUs
//! can only add contention (on a 1-CPU host it made 4-worker runs ~24 %
//! *slower* than serial), and because results are scheduling-independent
//! the clamp is unobservable in the output.
//!
//! The engine is two layers: [`parallel_map`], a general deterministic
//! fan-out over `std::thread::scope` (also used by the benchmark
//! harness's ablation sweeps), and [`CampaignGrid`], the campaign-shaped
//! API on top.

use std::any::Any;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hh_hv::{FaultConfig, HvError};
use hh_sim::rng::SimRng;
use hh_trace::{TraceMode, TraceSink, Tracer};

use crate::driver::{AttackDriver, CampaignStats, DriverParams};
use crate::machine::{AttackVariant, Scenario};
use crate::profile::FlipCatalog;
use crate::steering::{with_retries, RetryPolicy};
use crate::template::MachineTemplate;

/// Resolves a `--jobs`-style request: `None` means "use all available
/// parallelism", and a request is clamped to at least one worker.
pub fn resolve_jobs(requested: Option<usize>) -> NonZeroUsize {
    match requested {
        Some(n) => NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"),
        None => std::thread::available_parallelism()
            .unwrap_or_else(|_| NonZeroUsize::new(1).expect("1 is non-zero")),
    }
}

/// Applies `f` to every item on up to `jobs` scoped workers, returning
/// results in input order.
///
/// The effective worker count is clamped to the machine's available
/// parallelism (and to the item count): oversubscribing a small machine
/// only adds scheduler contention and per-thread allocator overhead,
/// and because outputs are scheduling-independent the clamp cannot
/// change results. Use [`parallel_map_exact`] to force a width (the
/// determinism tests do, so cross-thread scheduling is exercised even
/// on single-CPU machines).
///
/// Work distribution is chunked work-stealing — see the
/// [module docs](self). `f` must itself be deterministic per item for
/// the full determinism guarantee to hold; the campaign engine arranges
/// that by deriving every cell's RNG from its own seed.
///
/// # Panics
///
/// Propagates panics from `f` once all workers have stopped.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: NonZeroUsize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    run_on_workers(items, jobs.get().min(cpus), f)
}

/// [`parallel_map`] without the available-parallelism clamp: exactly
/// `jobs` workers (still at most one per item). Results are identical
/// to [`parallel_map`]'s — this variant exists so tests can prove that
/// on *any* machine, not to make production runs faster.
pub fn parallel_map_exact<T, R, F>(items: Vec<T>, jobs: NonZeroUsize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_on_workers(items, jobs.get(), f)
}

/// Chunk granularity: a few chunks per worker so early finishers have
/// something to steal, but no smaller than one item.
fn chunk_len(n: usize, workers: usize) -> usize {
    n.div_ceil(workers * 4).max(1)
}

/// Per-worker chunk deques with work stealing: a worker pops its own
/// deque from the front (oldest chunk first) and steals from victims'
/// backs, so an owner and a thief never contend for the same end until
/// a deque is nearly empty. Chunks are only ever *removed*, so a full
/// empty scan means the grid is done.
struct ChunkQueues {
    queues: Vec<Mutex<VecDeque<Range<usize>>>>,
}

impl ChunkQueues {
    /// Deals contiguous index chunks round-robin onto `workers` deques.
    fn deal(n: usize, workers: usize) -> Self {
        let chunk = chunk_len(n, workers);
        let mut deques: Vec<VecDeque<Range<usize>>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        let mut start = 0;
        let mut next_worker = 0;
        while start < n {
            let end = (start + chunk).min(n);
            deques[next_worker].push_back(start..end);
            next_worker = (next_worker + 1) % workers;
            start = end;
        }
        Self {
            queues: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Claims the next chunk for worker `me`: own deque first, then a
    /// fixed-ring scan of the victims.
    fn claim(&self, me: usize) -> Option<Range<usize>> {
        let workers = self.queues.len();
        if let Some(range) = self.queues[me].lock().expect("queue poisoned").pop_front() {
            return Some(range);
        }
        for offset in 1..workers {
            let victim = (me + offset) % workers;
            if let Some(range) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_back()
            {
                return Some(range);
            }
        }
        None
    }
}

/// Captures the grid-order-first panic from worker closures so it can
/// be resumed on the caller's thread with its original payload. All
/// items still run (never stopping early keeps the chosen panic a pure
/// function of the grid, not of scheduling), then the payload with the
/// lowest grid index wins — exactly the panic a serial run would have
/// surfaced first.
#[derive(Default)]
struct FirstPanic {
    slot: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

impl FirstPanic {
    fn record(&self, index: usize, payload: Box<dyn Any + Send>) {
        let mut slot = self.slot.lock().expect("panic slot poisoned");
        let replace = match slot.as_ref() {
            Some((held, _)) => index < *held,
            None => true,
        };
        if replace {
            *slot = Some((index, payload));
        }
    }

    /// Resumes the recorded panic, if any, on the calling thread.
    fn resume_if_any(self) {
        if let Some((_, payload)) = self.slot.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
    }
}

fn run_on_workers<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers == 1 {
        // Serial fast path: no threads, same order, same results, and
        // a panicking closure propagates on its own.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queues = ChunkQueues::deal(n, workers);
    let first_panic = FirstPanic::default();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let tasks = &tasks;
            let results = &results;
            let f = &f;
            let first_panic = &first_panic;
            scope.spawn(move || {
                while let Some(range) = queues.claim(me) {
                    for i in range {
                        let item = tasks[i]
                            .lock()
                            .expect("task slot poisoned")
                            .take()
                            .expect("each task index is claimed exactly once");
                        // Catch per item so a panicking closure surfaces
                        // with its own payload (not a poisoned-mutex or
                        // generic scope panic) after every worker stops.
                        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                            Ok(out) => {
                                *results[i].lock().expect("result slot poisoned") = Some(out);
                            }
                            Err(payload) => first_panic.record(i, payload),
                        }
                    }
                }
            });
        }
    });
    first_panic.resume_if_any();

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran to completion")
        })
        .collect()
}

/// Streaming variant of [`parallel_map`]: instead of parking every
/// result in an O(items) slot vector, each worker owns an accumulator
/// from `new_acc(worker)` and folds every index it claims into it via
/// `fold(acc, index)` — so a run holds O(workers) state, never
/// O(items). Returns the accumulators in worker order.
///
/// Indices arrive in ascending order *within* a contiguous chunk, but
/// chunks interleave under stealing, so deterministic aggregation
/// requires folds that commute across chunks (sums, histograms,
/// per-index spill files). The effective worker count is clamped to the
/// machine's available parallelism, like [`parallel_map`].
///
/// # Panics
///
/// Propagates the grid-order-first panic from `fold` once all workers
/// have stopped.
pub fn parallel_reduce_indexed<A, G, F>(n: usize, jobs: NonZeroUsize, new_acc: G, fold: F) -> Vec<A>
where
    A: Send,
    G: Fn(usize) -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    let cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    run_reduce_on_workers(n, jobs.get().min(cpus), new_acc, fold)
}

/// [`parallel_reduce_indexed`] without the available-parallelism clamp:
/// exactly `jobs` workers (still at most one per index), so tests can
/// exercise cross-thread stealing on any machine.
pub fn parallel_reduce_indexed_exact<A, G, F>(
    n: usize,
    jobs: NonZeroUsize,
    new_acc: G,
    fold: F,
) -> Vec<A>
where
    A: Send,
    G: Fn(usize) -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    run_reduce_on_workers(n, jobs.get(), new_acc, fold)
}

fn run_reduce_on_workers<A, G, F>(n: usize, workers: usize, new_acc: G, fold: F) -> Vec<A>
where
    A: Send,
    G: Fn(usize) -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers == 1 {
        let mut acc = new_acc(0);
        for i in 0..n {
            fold(&mut acc, i);
        }
        return vec![acc];
    }

    let queues = ChunkQueues::deal(n, workers);
    let first_panic = FirstPanic::default();
    let accs: Vec<Mutex<Option<A>>> = (0..workers).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let accs = &accs;
            let new_acc = &new_acc;
            let fold = &fold;
            let first_panic = &first_panic;
            scope.spawn(move || {
                let mut acc = new_acc(me);
                while let Some(range) = queues.claim(me) {
                    for i in range {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| fold(&mut acc, i))) {
                            first_panic.record(i, payload);
                        }
                    }
                }
                *accs[me].lock().expect("acc slot poisoned") = Some(acc);
            });
        }
    });
    first_panic.resume_if_any();

    accs.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("acc slot poisoned")
                .expect("every worker parks its accumulator")
        })
        .collect()
}

/// Cooperative cancellation handle for streamed grid runs.
///
/// Cancellation is *cell-granular and leak-free by construction*: a
/// worker checks the token before claiming each cell, so an in-flight
/// cell always completes its normal path (every faulted try destroys
/// its VM before retrying, and `free_pages()` accounting is asserted by
/// the driver), while unstarted cells are skipped without ever booting
/// a host. The campaign server's `DELETE /jobs/{id}` is built on this.
///
/// Clones share the flag; cancelling any clone cancels the run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation: no new cells start after this returns.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One (scenario × seed) cell of a campaign grid.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Position in the grid, row-major (scenario-major, then seed).
    pub index: usize,
    /// The scenario, already re-seeded for this cell.
    pub scenario: Scenario,
    /// The experiment seed applied to the scenario.
    pub seed: u64,
}

/// The outcome of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scenario name.
    pub scenario: &'static str,
    /// The attack variant this cell ran.
    pub variant: AttackVariant,
    /// The cell's experiment seed.
    pub seed: u64,
    /// Exploitable bits in the reused profiling catalogue.
    pub catalog_bits: usize,
    /// The campaign statistics (Table 3 raw material).
    pub stats: CampaignStats,
    /// The cell's trace recording, when the grid runs with
    /// [`CampaignGrid::with_trace`]. Cells are independent, so merging
    /// the sinks in grid order is deterministic regardless of `--jobs`.
    pub trace: Option<TraceSink>,
}

/// A grid of (scenario × experiment-seed) campaign cells plus the attack
/// parameters shared by every cell.
///
/// # Examples
///
/// ```
/// use hyperhammer::machine::Scenario;
/// use hyperhammer::driver::DriverParams;
/// use hyperhammer::parallel::CampaignGrid;
/// use std::num::NonZeroUsize;
///
/// let params = DriverParams { bits_per_attempt: 4, ..DriverParams::paper() };
/// let grid = CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2)
///     .with_seed_count(0xbeef, 2);
/// let serial = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
/// let parallel = grid.run(NonZeroUsize::new(2).unwrap()).unwrap();
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    params: DriverParams,
    max_attempts: usize,
    trace: TraceMode,
}

impl CampaignGrid {
    /// Creates a grid over `scenarios` with one default cell seed (0);
    /// widen with [`CampaignGrid::with_seeds`] or
    /// [`CampaignGrid::with_seed_count`].
    pub fn new(scenarios: Vec<Scenario>, params: DriverParams, max_attempts: usize) -> Self {
        Self {
            scenarios,
            seeds: vec![0],
            params,
            max_attempts,
            trace: TraceMode::Off,
        }
    }

    /// Records per-cell traces at the given level; each [`CellResult`]
    /// then carries its cell's [`TraceSink`].
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Applies a hostile-host fault plan to every scenario in the grid.
    /// Each cell still derives its own injection stream: the plan mixes
    /// the cell's host seed, which [`CampaignGrid::cells`] re-splits per
    /// cell, so no two cells share a fault schedule and determinism per
    /// cell (hence across `--jobs`) is preserved.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        for scenario in &mut self.scenarios {
            *scenario = scenario.clone().with_faults(faults);
        }
        self
    }

    /// Replaces the transient-fault recovery policy used by every cell.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.params.retry = retry;
        self
    }

    /// Uses these explicit experiment seeds for every scenario.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "a grid needs at least one seed");
        self.seeds = seeds;
        self
    }

    /// Derives `count` seeds from `base` via [`SimRng::split_seed`] —
    /// the canonical seed-splitting scheme, reproducible from `base`
    /// alone.
    pub fn with_seed_count(self, base: u64, count: usize) -> Self {
        assert!(count > 0, "a grid needs at least one seed");
        let seeds = (0..count as u64)
            .map(|i| SimRng::split_seed(base, i))
            .collect();
        self.with_seeds(seeds)
    }

    /// The grid's scenarios, in row order — one [`MachineTemplate`] per
    /// entry is what [`CampaignGrid::run_streamed_with`] expects.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The grid's cells in row-major (scenario-major) order, each with
    /// its re-seeded scenario.
    pub fn cells(&self) -> Vec<CampaignCell> {
        (0..self.len()).map(|i| self.cell_at(i)).collect()
    }

    /// Builds the cell at row-major `index` on demand — the streaming
    /// path materializes one cell per worker at a time instead of the
    /// whole grid.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn cell_at(&self, index: usize) -> CampaignCell {
        assert!(index < self.len(), "cell index {index} out of range");
        let scenario = &self.scenarios[index / self.seeds.len()];
        let seed = self.seeds[index % self.seeds.len()];
        CampaignCell {
            index,
            scenario: scenario.clone().with_seed(seed),
            seed,
        }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// `true` when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One [`MachineTemplate`] per scenario, in scenario order; cell
    /// `i` uses entry `i / seeds`. Callers that resume a checkpointed
    /// run build these once and hand them to
    /// [`CampaignGrid::run_streamed_resume`].
    pub fn scenario_templates(&self) -> Vec<MachineTemplate> {
        self.scenarios
            .iter()
            .map(MachineTemplate::for_scenario)
            .collect()
    }

    /// Runs one cell exactly as the serial path would: boot, profile,
    /// catalogue, then campaign to first success or the attempt budget.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors.
    pub fn run_cell(&self, cell: &CampaignCell) -> Result<CellResult, HvError> {
        self.run_cell_with(cell, &MachineTemplate::for_scenario(&cell.scenario), 0)
    }

    /// [`CampaignGrid::run_cell`] against a prebuilt template. The
    /// `events_hint` pre-sizes the cell's trace arena (capacity only —
    /// a wrong hint can never change recorded output, so passing a
    /// scheduling-dependent high-water mark is safe).
    fn run_cell_with(
        &self,
        cell: &CampaignCell,
        template: &MachineTemplate,
        events_hint: usize,
    ) -> Result<CellResult, HvError> {
        self.run_cell_recycled(cell, template, events_hint, None)
    }

    /// [`CampaignGrid::run_cell_with`] reusing a spent sink's event
    /// arena (see [`TraceSink::recycle`]); `None` allocates fresh.
    fn run_cell_recycled(
        &self,
        cell: &CampaignCell,
        template: &MachineTemplate,
        events_hint: usize,
        recycled: Option<TraceSink>,
    ) -> Result<CellResult, HvError> {
        let variant = cell.scenario.variant();
        let driver = AttackDriver::new(self.params.clone()).with_variant(variant);
        let mut host = template.instantiate(cell.seed);
        // Attach after boot: boot-time noise is outside the campaign.
        let tracer = Tracer::with_recycled(self.trace, events_hint, recycled);
        tracer.set_cell(cell.index);
        host.attach_tracer(tracer.clone());
        // An active fault plan can trip the profiling stage too (VM
        // creation jitter, EPT splits under the profiler's hammering).
        // Retry the whole stage on a fresh VM: the faulted try destroys
        // its VM before the backoff, so nothing leaks between tries.
        // The Xen variant steers p2m allocations instead of hammering
        // catalogued bits, so its cells skip profiling outright.
        let catalog = if variant == AttackVariant::Xen {
            FlipCatalog {
                entries: Vec::new(),
                host_mem: cell.scenario.profile_params().host_mem,
            }
        } else {
            with_retries(&self.params.retry, &mut host, |h| {
                let mut vm = h.create_vm(cell.scenario.vm_config())?;
                let result = driver.profile_and_catalog_with(
                    h,
                    &mut vm,
                    cell.scenario.profile_params(),
                    Some(template.tables()),
                );
                vm.destroy(h);
                result
            })?
        };
        let stats = driver.campaign(&cell.scenario, &mut host, &catalog, self.max_attempts)?;
        Ok(CellResult {
            scenario: cell.scenario.name,
            variant,
            seed: cell.seed,
            catalog_bits: catalog.entries.len(),
            stats,
            trace: tracer.take_sink(),
        })
    }

    /// Runs the whole grid on `jobs` workers; results are in grid order
    /// and identical for every `jobs` value.
    ///
    /// # Errors
    ///
    /// Returns the first (grid-order) hypervisor error.
    pub fn run(&self, jobs: NonZeroUsize) -> Result<Vec<CellResult>, HvError> {
        self.run_with_progress(jobs, |_| {})
    }

    /// [`CampaignGrid::run`] with a completion callback per cell. The
    /// callback observes cells as workers finish them (i.e. in
    /// scheduling order) and must therefore not influence results — use
    /// it for liveness reporting only.
    ///
    /// # Errors
    ///
    /// Returns the first (grid-order) hypervisor error.
    pub fn run_with_progress(
        &self,
        jobs: NonZeroUsize,
        progress: impl Fn(&CellResult) + Sync,
    ) -> Result<Vec<CellResult>, HvError> {
        let templates = self.scenario_templates();
        let seeds_per_scenario = self.seeds.len();
        // High-water mark of per-cell event counts, used to pre-size
        // later cells' trace arenas. Scheduling-dependent, but hints
        // only set capacity, so determinism is untouched.
        let events_hint = AtomicUsize::new(0);
        let cells = self.cells();
        let results = parallel_map(cells, jobs, |_, cell| {
            let template = &templates[cell.index / seeds_per_scenario];
            let hint = events_hint.load(Ordering::Relaxed);
            let result = self.run_cell_with(&cell, template, hint);
            if let Ok(r) = &result {
                if let Some(sink) = &r.trace {
                    events_hint.fetch_max(sink.events().len(), Ordering::Relaxed);
                }
                progress(r);
            }
            result
        });
        results.into_iter().collect()
    }

    /// Runs the grid serially on the calling thread — the reference the
    /// parallel path is tested against. Shares the per-scenario
    /// template machinery with the parallel path, so "serial vs
    /// parallel" compares scheduling only.
    ///
    /// # Errors
    ///
    /// Returns the first hypervisor error.
    pub fn run_serial(&self) -> Result<Vec<CellResult>, HvError> {
        let templates = self.scenario_templates();
        let seeds_per_scenario = self.seeds.len();
        self.cells()
            .iter()
            .map(|cell| self.run_cell_with(cell, &templates[cell.index / seeds_per_scenario], 0))
            .collect()
    }

    /// Runs the grid with O(workers) memory: each worker folds every
    /// finished [`CellResult`] into its own [`CellConsumer`] (built by
    /// `new_consumer(worker)`) instead of parking it in a slot vector,
    /// and cells are materialized one per worker at a time. Spent trace
    /// sinks handed back by the consumer are recycled, so one event
    /// arena serves all of a worker's cells.
    ///
    /// Consumers observe cells in their worker's scheduling order;
    /// deterministic output therefore needs order-insensitive folds
    /// (mergeable sketches, per-index spill shards) — what
    /// [`streamref`](crate::streamref) provides. The effective worker
    /// count is clamped like [`parallel_map`]'s; the returned consumers
    /// are in worker order.
    ///
    /// # Errors
    ///
    /// Like [`CampaignGrid::run`], every cell still runs and the
    /// grid-order-first error (hypervisor or consumer I/O) is returned.
    pub fn run_streamed<C, G>(
        &self,
        jobs: NonZeroUsize,
        new_consumer: G,
    ) -> Result<Vec<C>, StreamError>
    where
        C: CellConsumer + Send,
        G: Fn(usize) -> C + Sync,
    {
        let cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        let jobs = NonZeroUsize::new(jobs.get().min(cpus)).expect("min of non-zeroes");
        self.run_streamed_exact(jobs, new_consumer)
    }

    /// [`CampaignGrid::run_streamed`] without the available-parallelism
    /// clamp — exactly `jobs` workers, so the streaming equivalence
    /// tests exercise cross-thread shard interleaving on any machine.
    ///
    /// # Errors
    ///
    /// See [`CampaignGrid::run_streamed`].
    pub fn run_streamed_exact<C, G>(
        &self,
        jobs: NonZeroUsize,
        new_consumer: G,
    ) -> Result<Vec<C>, StreamError>
    where
        C: CellConsumer + Send,
        G: Fn(usize) -> C + Sync,
    {
        let templates = self.scenario_templates();
        let refs: Vec<&MachineTemplate> = templates.iter().collect();
        self.run_streamed_inner(jobs, &refs, None, None, new_consumer)
    }

    /// [`CampaignGrid::run_streamed`] against caller-owned per-scenario
    /// templates (one per [`CampaignGrid::scenarios`] entry, in order)
    /// and a [`CancelToken`]. This is the campaign server's entry
    /// point: warm templates are shared across jobs, and cancelling the
    /// token skips every not-yet-started cell.
    ///
    /// The worker count is clamped like [`CampaignGrid::run_streamed`].
    /// Results for the cells that do run are bit-identical to the
    /// template-less paths — templates only hoist scenario-invariant
    /// work.
    ///
    /// # Errors
    ///
    /// Like [`CampaignGrid::run_streamed`], plus
    /// [`StreamError::Cancelled`] when cancellation skipped at least
    /// one cell (unless an earlier grid-order cell failed harder).
    ///
    /// # Panics
    ///
    /// Panics if `templates.len()` differs from the scenario count.
    pub fn run_streamed_with<C, G>(
        &self,
        jobs: NonZeroUsize,
        templates: &[&MachineTemplate],
        cancel: &CancelToken,
        new_consumer: G,
    ) -> Result<Vec<C>, StreamError>
    where
        C: CellConsumer + Send,
        G: Fn(usize) -> C + Sync,
    {
        let cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        let jobs = NonZeroUsize::new(jobs.get().min(cpus)).expect("min of non-zeroes");
        self.run_streamed_inner(jobs, templates, Some(cancel), None, new_consumer)
    }

    /// [`CampaignGrid::run_streamed_with`] plus a completed-cell
    /// predicate — the checkpoint/resume entry point. Cells for which
    /// `done(index)` returns `true` are skipped without booting a host
    /// or touching a consumer; the caller merges their previously
    /// recorded results back in grid order. Because cells are
    /// independent (seed-split RNG streams, per-cell hosts), the cells
    /// that do run produce bytes identical to an uninterrupted run for
    /// any worker count.
    ///
    /// # Errors
    ///
    /// See [`CampaignGrid::run_streamed_with`].
    ///
    /// # Panics
    ///
    /// Panics if `templates.len()` differs from the scenario count.
    pub fn run_streamed_resume<C, G>(
        &self,
        jobs: NonZeroUsize,
        templates: &[&MachineTemplate],
        cancel: &CancelToken,
        done: &(dyn Fn(usize) -> bool + Sync),
        new_consumer: G,
    ) -> Result<Vec<C>, StreamError>
    where
        C: CellConsumer + Send,
        G: Fn(usize) -> C + Sync,
    {
        let cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        let jobs = NonZeroUsize::new(jobs.get().min(cpus)).expect("min of non-zeroes");
        self.run_streamed_inner(jobs, templates, Some(cancel), Some(done), new_consumer)
    }

    fn run_streamed_inner<C, G>(
        &self,
        jobs: NonZeroUsize,
        templates: &[&MachineTemplate],
        cancel: Option<&CancelToken>,
        done: Option<&(dyn Fn(usize) -> bool + Sync)>,
        new_consumer: G,
    ) -> Result<Vec<C>, StreamError>
    where
        C: CellConsumer + Send,
        G: Fn(usize) -> C + Sync,
    {
        assert_eq!(
            templates.len(),
            self.scenarios.len(),
            "one template per scenario, in scenario order"
        );

        struct WorkerState<C> {
            consumer: C,
            recycled: Option<TraceSink>,
            // Lowest-index failure this worker saw; the grid-order
            // minimum across workers is the run's error, matching the
            // in-memory path's "first grid-order error" contract.
            first_error: Option<(usize, StreamError)>,
        }

        impl<C> WorkerState<C> {
            fn record_error(&mut self, index: usize, e: StreamError) {
                let replace = match self.first_error.as_ref() {
                    Some((held, _)) => index < *held,
                    None => true,
                };
                if replace {
                    self.first_error = Some((index, e));
                }
            }
        }

        let seeds_per_scenario = self.seeds.len();
        let events_hint = AtomicUsize::new(0);
        let states = parallel_reduce_indexed_exact(
            self.len(),
            jobs,
            |worker| WorkerState {
                consumer: new_consumer(worker),
                recycled: None,
                first_error: None,
            },
            |state, index| {
                // Checked per cell, before any host is booted: an
                // in-flight cell always completes (leak-free), a
                // not-yet-started cell never starts.
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    state.record_error(index, StreamError::Cancelled);
                    return;
                }
                // Resume support: cells already completed by a prior
                // (checkpointed) run are skipped before any work.
                if done.is_some_and(|f| f(index)) {
                    return;
                }
                let cell = self.cell_at(index);
                let template = templates[index / seeds_per_scenario];
                let hint = events_hint.load(Ordering::Relaxed);
                let outcome = self
                    .run_cell_recycled(&cell, template, hint, state.recycled.take())
                    .map_err(StreamError::Hv)
                    .and_then(|result| {
                        if let Some(sink) = &result.trace {
                            events_hint.fetch_max(sink.events().len(), Ordering::Relaxed);
                        }
                        state
                            .consumer
                            .consume(index, result)
                            .map_err(StreamError::Io)
                    });
                match outcome {
                    Ok(recycled) => state.recycled = recycled,
                    // Keep running the remaining cells (the in-memory
                    // path does too) but remember only the lowest-index
                    // failure.
                    Err(e) => state.record_error(index, e),
                }
            },
        );

        let mut consumers = Vec::with_capacity(states.len());
        let mut first_error: Option<(usize, StreamError)> = None;
        for state in states {
            if let Some((index, e)) = state.first_error {
                let replace = match first_error.as_ref() {
                    Some((held, _)) => index < *held,
                    None => true,
                };
                if replace {
                    first_error = Some((index, e));
                }
            }
            consumers.push(state.consumer);
        }
        match first_error {
            Some((_, e)) => Err(e),
            None => Ok(consumers),
        }
    }
}

/// Per-worker sink for [`CampaignGrid::run_streamed`]: receives every
/// finished [`CellResult`] of its worker, in that worker's scheduling
/// order, and may hand the cell's spent [`TraceSink`] back so the
/// engine can recycle its arena for the worker's next cell.
pub trait CellConsumer {
    /// Folds cell `index`'s finished result into the consumer's state.
    ///
    /// # Errors
    ///
    /// Spill I/O failures; the run reports the grid-order-first one.
    fn consume(&mut self, index: usize, result: CellResult) -> std::io::Result<Option<TraceSink>>;
}

/// A streaming run's failure: the cell computation itself
/// ([`HvError`]), the consumer's spill I/O, or cooperative
/// cancellation.
#[derive(Debug)]
pub enum StreamError {
    /// A cell failed the way [`CampaignGrid::run`] can fail.
    Hv(HvError),
    /// A consumer failed to spill or merge its shard output.
    Io(std::io::Error),
    /// A [`CancelToken`] stopped the run before this grid reached the
    /// cell; already-consumed cells are valid, the rest never ran.
    Cancelled,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Hv(e) => write!(f, "{e}"),
            StreamError::Io(e) => write!(f, "stream spill I/O: {e}"),
            StreamError::Cancelled => write!(f, "campaign run cancelled"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<HvError> for StreamError {
    fn from(e: HvError) -> Self {
        StreamError::Hv(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid(seeds: usize) -> CampaignGrid {
        let params = DriverParams {
            bits_per_attempt: 4,
            stable_bits_only: true,
            ..DriverParams::paper()
        };
        CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2).with_seed_count(0x717e, seeds)
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_every_item() {
        let items: Vec<u64> = (0..37).collect();
        let jobs = NonZeroUsize::new(4).unwrap();
        // The exact variant forces 4 real workers even on a 1-CPU
        // machine, so cross-thread stealing is actually exercised.
        let out = parallel_map_exact(items.clone(), jobs, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let clamped = parallel_map(items.clone(), jobs, |_, x| x * 2);
        assert_eq!(clamped, out, "CPU clamp must not change results");
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed() {
        let jobs = NonZeroUsize::new(8).unwrap();
        let empty: Vec<u8> = parallel_map(Vec::<u8>::new(), jobs, |_, x| x);
        assert!(empty.is_empty());
        let two = parallel_map_exact(vec![1, 2], jobs, |_, x| x + 1);
        assert_eq!(two, vec![2, 3]);
    }

    #[test]
    fn work_stealing_survives_pathological_imbalance() {
        // Front-loaded cost: item 0 is ~3 orders of magnitude heavier
        // than the rest. A static split would strand worker 0's whole
        // initial share behind it; stealing lets the other workers
        // drain it, and the output must stay in input order either way.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_exact(items, NonZeroUsize::new(4).unwrap(), |i, x| {
            let spins = if i == 0 { 2_000_000 } else { 2_000 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn chunks_cover_every_index_without_overlap() {
        for n in [1usize, 2, 5, 16, 37, 100] {
            for workers in [1usize, 2, 4, 8] {
                let chunk = chunk_len(n, workers);
                assert!(chunk >= 1);
                // Reconstruct the dealing loop and check coverage.
                let mut seen = vec![false; n];
                let mut start = 0;
                while start < n {
                    let end = (start + chunk).min(n);
                    for (i, slot) in seen.iter_mut().enumerate().take(end).skip(start) {
                        assert!(!*slot, "index {i} dealt twice (n={n}, w={workers})");
                        *slot = true;
                    }
                    start = end;
                }
                assert!(seen.iter().all(|&s| s), "coverage gap (n={n}, w={workers})");
            }
        }
    }

    #[test]
    fn grid_cells_enumerate_row_major() {
        let grid = tiny_grid(3);
        let cells = grid.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(grid.len(), 3);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, SimRng::split_seed(0x717e, i as u64));
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let grid = tiny_grid(2);
        let serial = grid.run_serial().unwrap();
        let one = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
        let four = grid.run(NonZeroUsize::new(4).unwrap()).unwrap();
        assert_eq!(serial, one);
        assert_eq!(serial, four);
        assert_eq!(serial.len(), 2);
        for cell in &serial {
            assert!(!cell.stats.attempts.is_empty());
        }
    }

    #[test]
    fn resolve_jobs_clamps_and_defaults() {
        assert_eq!(resolve_jobs(Some(0)).get(), 1);
        assert_eq!(resolve_jobs(Some(6)).get(), 6);
        assert!(resolve_jobs(None).get() >= 1);
    }

    /// Runs `f`, catches its panic, and returns the `&str`/`String`
    /// payload — the message a user would see.
    fn panic_message<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> String {
        let payload = catch_unwind(f).expect_err("closure must panic");
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload should be a string")
    }

    #[test]
    fn parallel_map_propagates_original_panic_payload() {
        // The original payload must surface — not a slot-mutex
        // "result slot poisoned" panic from the collection phase.
        for jobs in [1usize, 4] {
            let jobs = NonZeroUsize::new(jobs).unwrap();
            let msg = panic_message(move || {
                parallel_map_exact((0..16u64).collect(), jobs, |i, x| {
                    assert!(i != 11, "cell 11 exploded");
                    x
                });
            });
            assert!(msg.contains("cell 11 exploded"), "got: {msg}");
        }
        let msg = panic_message(|| {
            parallel_map(
                (0..4u64).collect(),
                NonZeroUsize::new(2).unwrap(),
                |_, _| panic!("clamped path panic"),
            );
        });
        assert!(msg.contains("clamped path panic"), "got: {msg}");
    }

    #[test]
    fn first_grid_order_panic_wins_regardless_of_scheduling() {
        // Several items panic; the one surfacing must be the lowest
        // index — what a serial run would hit first — even though a
        // later-index worker may panic earlier in wall-clock time.
        let msg = panic_message(|| {
            parallel_map_exact(
                (0..64usize).collect(),
                NonZeroUsize::new(4).unwrap(),
                |i, _| {
                    if i >= 5 {
                        panic!("panicked at index {i}");
                    }
                },
            );
        });
        assert_eq!(msg, "panicked at index 5");
    }

    #[test]
    fn reduce_path_propagates_original_panic_payload() {
        let msg = panic_message(|| {
            parallel_reduce_indexed_exact(
                32,
                NonZeroUsize::new(4).unwrap(),
                |_| 0u64,
                |acc, i| {
                    assert!(i != 7, "reducer died on 7");
                    *acc += 1;
                },
            );
        });
        assert!(msg.contains("reducer died on 7"), "got: {msg}");
    }

    #[test]
    fn reduce_partitions_every_index_exactly_once() {
        for jobs in [1usize, 2, 4, 8] {
            let jobs = NonZeroUsize::new(jobs).unwrap();
            let accs =
                parallel_reduce_indexed_exact(37, jobs, |_| Vec::new(), |acc, i| acc.push(i));
            assert_eq!(accs.len(), jobs.get().min(37));
            let mut all: Vec<usize> = accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..37).collect::<Vec<_>>());
        }
        assert!(parallel_reduce_indexed_exact(
            0,
            NonZeroUsize::new(4).unwrap(),
            |_| 0u8,
            |_, _| {}
        )
        .is_empty());
    }

    struct Collect(Vec<(usize, CellResult)>);
    impl CellConsumer for Collect {
        fn consume(
            &mut self,
            index: usize,
            mut result: CellResult,
        ) -> std::io::Result<Option<TraceSink>> {
            let sink = result.trace.take();
            self.0.push((index, result));
            Ok(sink)
        }
    }

    #[test]
    fn shared_templates_and_idle_token_match_plain_streamed_run() {
        let grid = tiny_grid(3);
        let reference = grid.run_serial().unwrap();
        // Caller-owned templates, as the campaign server shares them
        // across jobs; an uncancelled token must be unobservable.
        let templates: Vec<MachineTemplate> = grid
            .scenarios()
            .iter()
            .map(MachineTemplate::for_scenario)
            .collect();
        let refs: Vec<&MachineTemplate> = templates.iter().collect();
        let token = CancelToken::new();
        let consumers = grid
            .run_streamed_with(NonZeroUsize::new(2).unwrap(), &refs, &token, |_| {
                Collect(Vec::new())
            })
            .unwrap();
        let mut streamed: Vec<(usize, CellResult)> =
            consumers.into_iter().flat_map(|c| c.0).collect();
        streamed.sort_by_key(|(i, _)| *i);
        assert_eq!(streamed.len(), reference.len());
        for ((i, got), want) in streamed.iter().zip(reference.iter()) {
            let mut want = want.clone();
            want.trace = None;
            assert_eq!(got, &want, "cell {i} diverged under shared templates");
        }
    }

    #[test]
    fn cancelled_token_skips_unstarted_cells() {
        let grid = tiny_grid(4);
        let templates: Vec<MachineTemplate> = grid
            .scenarios()
            .iter()
            .map(MachineTemplate::for_scenario)
            .collect();
        let refs: Vec<&MachineTemplate> = templates.iter().collect();

        // Cancelled before the run starts: nothing runs at all.
        let token = CancelToken::new();
        token.cancel();
        let Err(err) = grid.run_streamed_with(NonZeroUsize::new(2).unwrap(), &refs, &token, |_| {
            Collect(Vec::new())
        }) else {
            panic!("a pre-cancelled run must not succeed");
        };
        assert!(matches!(err, StreamError::Cancelled), "got: {err:?}");

        // Cancelled mid-run (from the consumer after the first cell, on
        // one worker so scheduling is fixed): the started cell's result
        // is delivered, later cells are skipped.
        struct CancelAfterFirst {
            token: CancelToken,
            consumed: std::sync::Arc<Mutex<Vec<usize>>>,
        }
        impl CellConsumer for CancelAfterFirst {
            fn consume(
                &mut self,
                index: usize,
                mut result: CellResult,
            ) -> std::io::Result<Option<TraceSink>> {
                self.consumed.lock().unwrap().push(index);
                self.token.cancel();
                Ok(result.trace.take())
            }
        }
        let token = CancelToken::new();
        let consumed = std::sync::Arc::new(Mutex::new(Vec::new()));
        let Err(err) = grid.run_streamed_with(NonZeroUsize::new(1).unwrap(), &refs, &token, |_| {
            CancelAfterFirst {
                token: token.clone(),
                consumed: consumed.clone(),
            }
        }) else {
            panic!("a mid-run cancellation must surface");
        };
        assert!(matches!(err, StreamError::Cancelled), "got: {err:?}");
        let consumed = consumed.lock().unwrap();
        assert_eq!(*consumed, vec![0], "exactly the in-flight cell completes");
    }

    #[test]
    fn resume_skips_done_cells_and_matches_a_full_run() {
        let grid = tiny_grid(4);
        let reference = grid.run_serial().unwrap();
        let templates: Vec<MachineTemplate> = grid
            .scenarios()
            .iter()
            .map(MachineTemplate::for_scenario)
            .collect();
        let refs: Vec<&MachineTemplate> = templates.iter().collect();
        // Cells 0 and 2 were "already completed" by the interrupted run.
        let done = |index: usize| index == 0 || index == 2;
        for jobs in [1usize, 2] {
            let token = CancelToken::new();
            let consumers = grid
                .run_streamed_resume(
                    NonZeroUsize::new(jobs).unwrap(),
                    &refs,
                    &token,
                    &done,
                    |_| Collect(Vec::new()),
                )
                .unwrap();
            let mut resumed: Vec<(usize, CellResult)> =
                consumers.into_iter().flat_map(|c| c.0).collect();
            resumed.sort_by_key(|(i, _)| *i);
            let indexes: Vec<usize> = resumed.iter().map(|(i, _)| *i).collect();
            assert_eq!(indexes, vec![1, 3], "done cells must never run");
            for (i, got) in &resumed {
                let mut want = reference[*i].clone();
                want.trace = None;
                assert_eq!(got, &want, "resumed cell {i} diverged at jobs={jobs}");
            }
        }
    }

    #[test]
    fn streamed_run_matches_in_memory_results() {
        let grid = tiny_grid(3);
        let reference = grid.run_serial().unwrap();
        for jobs in [1usize, 2, 8] {
            let consumers = grid
                .run_streamed_exact(NonZeroUsize::new(jobs).unwrap(), |_| Collect(Vec::new()))
                .unwrap();
            let mut streamed: Vec<(usize, CellResult)> =
                consumers.into_iter().flat_map(|c| c.0).collect();
            streamed.sort_by_key(|(i, _)| *i);
            assert_eq!(streamed.len(), reference.len());
            for ((i, got), want) in streamed.iter().zip(reference.iter()) {
                let mut want = want.clone();
                want.trace = None;
                assert_eq!(got, &want, "cell {i} diverged at jobs={jobs}");
            }
        }
    }
}

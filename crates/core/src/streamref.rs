//! Streaming campaign reducers: bounded-memory aggregation and
//! grid-order shard spill/merge.
//!
//! A 10⁵–10⁶-cell campaign (Table-3-style sweeps at production scale)
//! cannot hold every [`CellResult`] and trace arena in RAM. This module
//! supplies the per-worker state that
//! [`CampaignGrid::run_streamed`](crate::parallel::CampaignGrid::run_streamed)
//! folds finished cells into:
//!
//! * [`CampaignAggregate`] — success counts, flip histograms and
//!   per-stage time quantiles via [`QuantileSketch`], a deterministic
//!   mergeable sketch. Every field is a commutative sum, so merging the
//!   per-worker aggregates yields the same totals no matter how the
//!   scheduler partitioned the grid.
//! * [`ShardWriter`] — spills each cell's serialized NDJSON record to
//!   disk as the cell finishes. A worker's consecutive indices go to
//!   one shard file, so every shard is a sorted contiguous index run;
//!   [`merge_shards`] concatenates the runs in grid order, producing
//!   output byte-identical to serializing an in-memory run — for any
//!   `--jobs`, because each cell's bytes are a pure function of the
//!   cell.
//!
//! The memory story: a streaming run holds O(workers) aggregates, one
//! open spill file per [`ShardWriter`], and one recycled trace arena
//! per worker — never a whole-campaign buffer.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use hh_trace::{Counter, Stage, TraceSink};

use crate::driver::AttemptOutcome;
use crate::machine::AttackVariant;
use crate::parallel::{CellConsumer, CellResult};

/// A deterministic, mergeable quantile sketch over `u64` samples.
///
/// Samples land in 65 power-of-two buckets (bucket `b` holds values
/// whose bit length is `b`), so recording is order-insensitive and
/// [`merge`](Self::merge) is element-wise addition — two workers'
/// sketches combine into exactly the sketch a single worker would have
/// built. Quantile queries return the upper bound of the selected
/// bucket: a conservative estimate with bounded (2×) relative error,
/// which is what a campaign summary needs from stage latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: [u64; 65],
    count: u64,
    total: u128,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            total: 0,
        }
    }
}

impl QuantileSketch {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total += u128::from(value);
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total as f64 / self.count as f64
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1: the rank of the sample we want.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match b {
                    0 => 0,
                    64 => u64::MAX,
                    b => (1u64 << b) - 1,
                };
            }
        }
        u64::MAX
    }

    /// Adds another sketch's samples into this one.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total += other.total;
    }
}

/// Incremental whole-campaign aggregate: what the streaming path can
/// still report once per-cell results are spilled to disk.
///
/// Built per worker, merged across workers — every field is a
/// commutative, associative fold of per-cell contributions, so the
/// merged aggregate is independent of scheduling (and equals a serial
/// fold in grid order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignAggregate {
    /// Cells observed.
    pub cells: u64,
    /// Cells whose campaign reached a success.
    pub succeeded: u64,
    /// Attempts across all cells.
    pub attempts: u64,
    /// Attempts abandoned by a transient fault outliving its retries.
    pub aborted_attempts: u64,
    /// Catalogued exploitable bits per cell.
    pub catalog_bits: QuantileSketch,
    /// Per-attempt simulated duration (nanoseconds).
    pub attempt_nanos: QuantileSketch,
    /// Simulated time to first success (nanoseconds; successes only).
    pub success_nanos: QuantileSketch,
    /// DRAM bit flips per cell (traced runs only — untraced cells
    /// contribute no samples).
    pub flips: QuantileSketch,
    /// Per-cell simulated nanoseconds spent in each pipeline stage
    /// (traced runs only), indexed by [`Stage::index`] order.
    pub stage_nanos: [QuantileSketch; Stage::COUNT],
    /// Cells observed per attack variant, indexed by
    /// [`AttackVariant::index`] — the raw material of the per-variant
    /// comparison report on the streamed path.
    pub variant_cells: [u64; AttackVariant::COUNT],
    /// Successful cells per attack variant, same indexing.
    pub variant_succeeded: [u64; AttackVariant::COUNT],
    /// Attempts per attack variant, same indexing.
    pub variant_attempts: [u64; AttackVariant::COUNT],
}

impl CampaignAggregate {
    /// Folds one finished cell into the aggregate.
    pub fn observe(&mut self, result: &CellResult) {
        self.cells += 1;
        let v = result.variant.index();
        self.variant_cells[v] += 1;
        if result.stats.first_success().is_some() {
            self.succeeded += 1;
            self.variant_succeeded[v] += 1;
        }
        self.attempts += result.stats.attempts.len() as u64;
        self.variant_attempts[v] += result.stats.attempts.len() as u64;
        self.catalog_bits.record(result.catalog_bits as u64);
        for attempt in &result.stats.attempts {
            if matches!(attempt.outcome, AttemptOutcome::Aborted(_)) {
                self.aborted_attempts += 1;
            }
            self.attempt_nanos.record(attempt.duration.as_nanos());
        }
        if let Some(t) = result.stats.time_to_first_success() {
            self.success_nanos.record(t.as_nanos());
        }
        if let Some(sink) = &result.trace {
            let metrics = sink.metrics();
            self.flips.record(metrics.get(Counter::DramBitFlips));
            for stage in Stage::ALL {
                self.stage_nanos[stage.index()].record(metrics.stage_nanos(stage));
            }
        }
    }

    /// Adds another worker's aggregate into this one.
    pub fn merge(&mut self, other: &Self) {
        self.cells += other.cells;
        self.succeeded += other.succeeded;
        self.attempts += other.attempts;
        self.aborted_attempts += other.aborted_attempts;
        self.catalog_bits.merge(&other.catalog_bits);
        self.attempt_nanos.merge(&other.attempt_nanos);
        self.success_nanos.merge(&other.success_nanos);
        self.flips.merge(&other.flips);
        for (mine, theirs) in self.stage_nanos.iter_mut().zip(other.stage_nanos.iter()) {
            mine.merge(theirs);
        }
        for i in 0..AttackVariant::COUNT {
            self.variant_cells[i] += other.variant_cells[i];
            self.variant_succeeded[i] += other.variant_succeeded[i];
            self.variant_attempts[i] += other.variant_attempts[i];
        }
    }

    /// Merges a slice of per-worker aggregates into one.
    pub fn merged(parts: &[Self]) -> Self {
        let mut out = Self::default();
        for part in parts {
            out.merge(part);
        }
        out
    }
}

/// One spill file: a contiguous run of grid indices starting at
/// `start`, `count` cells long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// First grid index in the file.
    pub start: usize,
    /// Number of cells the file covers.
    pub count: usize,
    /// The file's path.
    pub path: PathBuf,
}

/// Spills per-cell NDJSON payloads to sorted shard files.
///
/// Workers receive ascending indices within each work-stealing chunk;
/// whenever the next index is not `previous + 1` the writer closes the
/// current shard and opens a new one named after the run's start index.
/// Every shard is therefore a sorted, contiguous, disjoint index run,
/// and [`merge_shards`] restores full grid order by concatenation.
#[derive(Debug)]
pub struct ShardWriter {
    dir: PathBuf,
    prefix: String,
    current: Option<(BufWriter<File>, usize)>,
    shards: Vec<ShardInfo>,
}

impl ShardWriter {
    /// Creates a writer spilling `prefix`-named shards into `dir`
    /// (which must exist).
    pub fn new(dir: &Path, prefix: &str) -> Self {
        Self {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            current: None,
            shards: Vec::new(),
        }
    }

    /// Appends cell `index`'s payload (zero or more complete
    /// newline-terminated lines).
    ///
    /// # Errors
    ///
    /// Propagates spill I/O failures.
    pub fn append(&mut self, index: usize, payload: &str) -> io::Result<()> {
        let continues = matches!(self.current, Some((_, next)) if next == index);
        if !continues {
            self.finish_current()?;
            let path = self
                .dir
                .join(format!("{}-{index:010}.ndjson.part", self.prefix));
            self.shards.push(ShardInfo {
                start: index,
                count: 0,
                path: path.clone(),
            });
            self.current = Some((BufWriter::new(File::create(path)?), index));
        }
        let (writer, next) = self.current.as_mut().expect("opened above");
        writer.write_all(payload.as_bytes())?;
        *next = index + 1;
        let shard = self.shards.last_mut().expect("pushed above");
        shard.count = index + 1 - shard.start;
        Ok(())
    }

    /// Flushes and closes the open shard, if any.
    fn finish_current(&mut self) -> io::Result<()> {
        if let Some((writer, _)) = self.current.take() {
            writer.into_inner().map_err(io::Error::other)?.sync_all()?;
        }
        Ok(())
    }

    /// Finishes writing and returns the shard manifest.
    ///
    /// # Errors
    ///
    /// Propagates the final flush's I/O failure.
    pub fn finish(mut self) -> io::Result<Vec<ShardInfo>> {
        self.finish_current()?;
        Ok(self.shards)
    }
}

/// Concatenates shards in grid order into `out`, verifying that they
/// tile `0..cells` exactly, and deletes each spill file once copied.
///
/// # Errors
///
/// `InvalidData` when the shards overlap or leave coverage gaps
/// (a worker died or a manifest is stale); otherwise I/O failures.
pub fn merge_shards(
    mut shards: Vec<ShardInfo>,
    cells: usize,
    out: &mut impl Write,
) -> io::Result<()> {
    shards.sort_by_key(|s| s.start);
    let mut next = 0usize;
    for shard in &shards {
        if shard.start != next {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shard coverage broken at cell {next}: next shard starts at {} ({})",
                    shard.start,
                    shard.path.display()
                ),
            ));
        }
        next += shard.count;
    }
    if next != cells {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("shards cover {next} cells, grid has {cells}"),
        ));
    }
    let mut buf = [0u8; 64 * 1024];
    for shard in &shards {
        let mut file = File::open(&shard.path)?;
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                break;
            }
            out.write_all(&buf[..n])?;
        }
        std::fs::remove_file(&shard.path)?;
    }
    out.flush()
}

/// The standard streaming consumer: folds every cell into a
/// [`CampaignAggregate`], spills the cell's NDJSON record (and,
/// when tracing, its event lines) to shards, and hands the spent trace
/// sink back for arena reuse.
///
/// `fmt_cell` and `fmt_trace` append complete newline-terminated lines
/// for one cell; they must be pure functions of the [`CellResult`] so
/// shard contents stay scheduling-independent.
pub struct CampaignStreamer<FC, FT> {
    aggregate: CampaignAggregate,
    cells: ShardWriter,
    traces: Option<ShardWriter>,
    fmt_cell: FC,
    fmt_trace: FT,
    line: String,
}

impl<FC, FT> std::fmt::Debug for CampaignStreamer<FC, FT> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignStreamer")
            .field("aggregate", &self.aggregate)
            .field("cells", &self.cells)
            .field("traces", &self.traces)
            .finish_non_exhaustive()
    }
}

impl<FC, FT> CampaignStreamer<FC, FT>
where
    FC: Fn(&CellResult, &mut String),
    FT: Fn(&CellResult, &mut String),
{
    /// Creates worker `worker`'s streamer, spilling into `dir`. Pass
    /// `with_traces = true` to spill per-event trace lines alongside
    /// the cell records.
    pub fn new(dir: &Path, worker: usize, with_traces: bool, fmt_cell: FC, fmt_trace: FT) -> Self {
        // Worker id in the prefix keeps two workers from ever opening
        // the same spill file; merge order is by start index alone, so
        // the rest of the name is free.
        Self {
            aggregate: CampaignAggregate::default(),
            cells: ShardWriter::new(dir, &format!("cells-w{worker}")),
            traces: with_traces.then(|| ShardWriter::new(dir, &format!("trace-w{worker}"))),
            fmt_cell,
            fmt_trace,
            line: String::new(),
        }
    }

    /// The worker's aggregate so far.
    pub const fn aggregate(&self) -> &CampaignAggregate {
        &self.aggregate
    }

    /// Finishes spilling; returns the aggregate plus the cell-record
    /// and trace shard manifests.
    ///
    /// # Errors
    ///
    /// Propagates the final flush's I/O failure.
    pub fn finish(self) -> io::Result<(CampaignAggregate, Vec<ShardInfo>, Vec<ShardInfo>)> {
        let cells = self.cells.finish()?;
        let traces = match self.traces {
            Some(w) => w.finish()?,
            None => Vec::new(),
        };
        Ok((self.aggregate, cells, traces))
    }
}

impl<FC, FT> CellConsumer for CampaignStreamer<FC, FT>
where
    FC: Fn(&CellResult, &mut String),
    FT: Fn(&CellResult, &mut String),
{
    fn consume(&mut self, index: usize, mut result: CellResult) -> io::Result<Option<TraceSink>> {
        self.aggregate.observe(&result);
        self.line.clear();
        (self.fmt_cell)(&result, &mut self.line);
        self.cells.append(index, &self.line)?;
        if let Some(traces) = &mut self.traces {
            self.line.clear();
            (self.fmt_trace)(&result, &mut self.line);
            traces.append(index, &self.line)?;
        }
        Ok(result.trace.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_quantiles_bound_their_samples() {
        let mut s = QuantileSketch::default();
        for v in [0u64, 1, 2, 3, 100, 1_000, 65_535, 1 << 40] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        // Every quantile is an upper bound of some recorded sample's
        // bucket: p0 covers the smallest sample, p100 the largest.
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), (1u64 << 41) - 1);
        let p50 = s.quantile(0.5);
        assert!((3..=127).contains(&p50), "median bucket bound, got {p50}");
        assert!(s.mean() > 0.0);
        assert_eq!(QuantileSketch::default().quantile(0.5), 0);
    }

    #[test]
    fn sketch_merge_is_order_insensitive() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let mut whole = QuantileSketch::default();
        for &v in &samples {
            whole.record(v);
        }
        // Any partition, folded in any order, merges to the same sketch.
        let mut left = QuantileSketch::default();
        let mut right = QuantileSketch::default();
        for (i, &v) in samples.iter().enumerate() {
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut merged = QuantileSketch::default();
        merged.merge(&right);
        merged.merge(&left);
        assert_eq!(merged, whole);
    }

    #[test]
    fn shard_writer_splits_on_noncontiguous_indices() {
        let dir = std::env::temp_dir().join(format!("hh-shards-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = ShardWriter::new(&dir, "cells");
        // Two contiguous runs: 0..3 and 7..9 (a stolen chunk).
        for i in 0..3 {
            w.append(i, &format!("cell {i}\n")).unwrap();
        }
        for i in 7..9 {
            w.append(i, &format!("cell {i}\n")).unwrap();
        }
        let shards = w.finish().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!((shards[0].start, shards[0].count), (0, 3));
        assert_eq!((shards[1].start, shards[1].count), (7, 2));

        // Fill the gap from a "second worker" and merge.
        let mut w2 = ShardWriter::new(&dir, "cells");
        for i in 3..7 {
            w2.append(i, &format!("cell {i}\n")).unwrap();
        }
        let mut all = shards;
        all.extend(w2.finish().unwrap());
        let mut out = Vec::new();
        merge_shards(all, 9, &mut out).unwrap();
        let expected: String = (0..9).map(|i| format!("cell {i}\n")).collect();
        assert_eq!(String::from_utf8(out).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_rejects_gaps_and_overlaps() {
        let gap = vec![ShardInfo {
            start: 1,
            count: 2,
            path: PathBuf::from("/nonexistent"),
        }];
        assert!(merge_shards(gap, 3, &mut Vec::new()).is_err());
        let short = vec![ShardInfo {
            start: 0,
            count: 2,
            path: PathBuf::from("/nonexistent"),
        }];
        assert!(merge_shards(short, 3, &mut Vec::new()).is_err());
        // Empty grid: zero shards merge to zero bytes.
        let mut out = Vec::new();
        merge_shards(Vec::new(), 0, &mut out).unwrap();
        assert!(out.is_empty());
    }
}

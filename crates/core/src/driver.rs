//! End-to-end attack orchestration (§5.3.2 / Table 3).
//!
//! A *campaign* repeats full attack attempts until the first success:
//! spawn the attacker VM, re-locate catalogued vulnerable bits with the
//! debug hypercall (profiling reuse, §5.3.2), run Page Steering against
//! up to 12 of them, hammer, and try to escape. Splitting hugepages is
//! irreversible, so every failed attempt tears the VM down and starts
//! over — exactly the paper's procedure.

use hh_buddy::MigrateType;
use hh_dram::FlipDirection;
use hh_hv::{Host, HvError, Vm};
use hh_sim::addr::{Gpa, Hpa, HUGE_PAGE_SIZE};
use hh_sim::clock::SimDuration;

use crate::balloon_steering::BalloonSteering;
use crate::exploit::{EscapeProof, ExploitFailure, ExploitParams, Exploiter, PteCorruption};
use crate::machine::{AttackVariant, Scenario};
use crate::profile::{FlipCatalog, ProfileParams, ProfileTables, Profiler};
use crate::steering::{with_retries, PageSteering, RetryPolicy, SteeringParams};

/// A catalogued bit re-located into the current VM's guest-physical
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelocatedBit {
    /// Guest-physical address of the vulnerable cell.
    pub gpa: Gpa,
    /// Bit within the byte.
    pub bit: u8,
    /// Flip direction.
    pub direction: FlipDirection,
    /// Aggressor pair in the current guest-physical space.
    pub aggressors: [Gpa; 2],
    /// Stability flag from profiling.
    pub stable: bool,
}

impl RelocatedBit {
    /// The hugepage to release for this bit.
    pub fn hugepage_base(&self) -> Gpa {
        self.gpa.align_down(HUGE_PAGE_SIZE)
    }
}

/// Outcome of one attack attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Full escape with proof.
    Success(EscapeProof),
    /// GbHammer variant: a control-field bit of a live leaf EPTE
    /// flipped — the permission-payload success, validated against host
    /// memory rather than through a witness read.
    PteCorrupted(PteCorruption),
    /// Xen variant: one steering experiment's reuse statistics. Counts
    /// as a success when at least one released frame was reused for a
    /// p2m table page (the Xen analogue of a landed EPT placement).
    Steered {
        /// Frames the domain released.
        released: u64,
        /// p2m table pages in the system afterwards.
        p2m_pages: u64,
        /// Released frames now holding p2m tables.
        reused: u64,
    },
    /// Exploitation failed for the stated reason.
    Failed(ExploitFailure),
    /// No catalogued bit could be re-located into this VM instance.
    NoUsableBits,
    /// The attempt was abandoned by a transient host fault that outlived
    /// the retry budget. The VM was torn down cleanly; the campaign
    /// counts the attempt as failed and moves on.
    Aborted(HvError),
}

impl AttemptOutcome {
    /// `true` for the per-variant success outcomes:
    /// [`AttemptOutcome::Success`], [`AttemptOutcome::PteCorrupted`],
    /// and [`AttemptOutcome::Steered`] with a non-zero reuse count.
    pub fn is_success(&self) -> bool {
        match self {
            AttemptOutcome::Success(_) | AttemptOutcome::PteCorrupted(_) => true,
            AttemptOutcome::Steered { reused, .. } => *reused > 0,
            _ => false,
        }
    }
}

/// Record of one attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// What happened.
    pub outcome: AttemptOutcome,
    /// Simulated time the attempt took (including the VM respawn).
    pub duration: SimDuration,
    /// Bits targeted in this attempt.
    pub bits_targeted: usize,
    /// Sub-blocks actually released.
    pub released: usize,
}

/// Aggregated campaign results — the raw material of Table 3.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Per-attempt records, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Total simulated time of the campaign.
    pub total_time: SimDuration,
}

impl CampaignStats {
    /// 1-based index of the first successful attempt.
    pub fn first_success(&self) -> Option<usize> {
        self.attempts
            .iter()
            .position(|a| a.outcome.is_success())
            .map(|i| i + 1)
    }

    /// Mean simulated attempt duration in minutes. The sum saturates at
    /// `u64::MAX` nanoseconds instead of overflowing (a campaign of
    /// near-`u64::MAX` attempt durations yields the saturated mean, not
    /// a panic or a wrapped-around nonsense value).
    pub fn avg_attempt_mins(&self) -> f64 {
        if self.attempts.is_empty() {
            return 0.0;
        }
        let total = self
            .attempts
            .iter()
            .fold(SimDuration::ZERO, |acc, a| acc.saturating_add(a.duration));
        SimDuration::from_nanos(total.as_nanos() / self.attempts.len() as u64).as_mins_f64()
    }

    /// Simulated time from campaign start to the first success,
    /// saturating at `u64::MAX` nanoseconds.
    pub fn time_to_first_success(&self) -> Option<SimDuration> {
        let idx = self.first_success()?;
        Some(
            self.attempts[..idx]
                .iter()
                .fold(SimDuration::ZERO, |acc, a| acc.saturating_add(a.duration)),
        )
    }
}

/// Attack-campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverParams {
    /// Vulnerable bits targeted per attempt (§5.3.2 uses 12: each bit
    /// costs 1 GiB of spray budget and the VM has 12 GiB to spare).
    pub bits_per_attempt: usize,
    /// Exploitation settings.
    pub exploit: ExploitParams,
    /// Steering settings.
    pub steering: SteeringParams,
    /// Prefer bits profiling marked stable (they are targeted first);
    /// when `true`, unstable bits are excluded entirely rather than used
    /// as fallback.
    pub stable_bits_only: bool,
    /// Recovery policy for transient host faults, threaded through every
    /// steering stage and the campaign's VM-respawn path. Dead code when
    /// the host's fault plan is off.
    pub retry: RetryPolicy,
}

impl DriverParams {
    /// Paper-equivalent settings.
    pub fn paper() -> Self {
        Self {
            bits_per_attempt: 12,
            exploit: ExploitParams::paper(),
            steering: SteeringParams {
                // No artificial per-batch delay during real attempts —
                // that was only for plotting Figure 3.
                batch_delay_secs: 0,
                ..SteeringParams::paper()
            },
            // Table 1's S2 row has more exploitable (90) than stable (40)
            // bits, so the paper's 12-bit attempts must draw on unstable
            // bits too; stable ones are simply tried first.
            stable_bits_only: false,
            retry: RetryPolicy::standard(),
        }
    }
}

/// The end-to-end attack driver.
#[derive(Debug, Clone)]
pub struct AttackDriver {
    params: DriverParams,
    // Constructed once here rather than per attempt: a campaign runs
    // hundreds of attempts and the stages themselves are stateless.
    steering: PageSteering,
    exploiter: Exploiter,
    variant: AttackVariant,
}

impl AttackDriver {
    /// Creates a driver on the paper's virtio-mem path.
    pub fn new(params: DriverParams) -> Self {
        let steering = PageSteering::new(params.steering.clone()).with_retry(params.retry);
        let exploiter = Exploiter::new(params.exploit.clone());
        Self {
            params,
            steering,
            exploiter,
            variant: AttackVariant::VirtioMem,
        }
    }

    /// Returns a copy driving `variant`: the profiler's exploitability
    /// window, the steering stage, the hammer path, and the success
    /// criterion all follow. Campaign cells configure this from their
    /// scenario's variant.
    pub fn with_variant(mut self, variant: AttackVariant) -> Self {
        self.variant = variant;
        self.exploiter = self.exploiter.with_variant(variant);
        self
    }

    /// The attack variant this driver runs.
    pub fn variant(&self) -> AttackVariant {
        self.variant
    }

    /// Profiles the current VM and converts the result into a reusable
    /// host-physical catalogue.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors.
    pub fn profile_and_catalog(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        profile: ProfileParams,
    ) -> Result<FlipCatalog, HvError> {
        self.profile_and_catalog_with(host, vm, profile, None)
    }

    /// [`AttackDriver::profile_and_catalog`] with optionally precomputed
    /// [`ProfileTables`], so a campaign grid recovers the bank function
    /// once per scenario instead of once per cell. The catalogue is
    /// bit-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors.
    pub fn profile_and_catalog_with(
        &self,
        host: &mut Host,
        vm: &mut Vm,
        profile: ProfileParams,
        tables: Option<&ProfileTables>,
    ) -> Result<FlipCatalog, HvError> {
        let profiler = Profiler::new(profile).with_variant(self.variant);
        let report = profiler.run_with_tables(host, vm, tables)?;
        profiler.to_catalog(vm, &report)
    }

    /// Re-locates catalogued bits into a (fresh) VM instance using the
    /// debug hypercall: a bit is usable when both its vulnerable cell's
    /// hugepage and its aggressors' hugepage are currently backed by the
    /// VM, with the cell inside the unpluggable virtio-mem region.
    pub fn relocate(&self, vm: &Vm, catalog: &FlipCatalog) -> Vec<RelocatedBit> {
        // HPA hugepage base → GPA hugepage base for every backed chunk.
        let mut hpa_to_gpa = std::collections::HashMap::new();
        for (base, len) in vm.usable_ranges() {
            for off in (0..len).step_by(HUGE_PAGE_SIZE as usize) {
                let gpa = base.add(off);
                if let Ok(hpa) = vm.hypercall_gpa_to_hpa(gpa) {
                    if hpa.is_aligned(HUGE_PAGE_SIZE) {
                        hpa_to_gpa.insert(hpa.raw(), gpa);
                    }
                }
            }
        }
        let region = vm.virtio_mem();
        let region_base = region.region_base();
        let region_size = region.region_size();
        let mut out = Vec::new();
        let mut entries: Vec<&crate::profile::CatalogEntry> = catalog.entries.iter().collect();
        // Stable bits flip most reliably: target them first.
        entries.sort_by_key(|e| !e.stable);
        for e in entries {
            if self.params.stable_bits_only && !e.stable {
                continue;
            }
            let cell_hp_hpa = e.cell_hpa.align_down(HUGE_PAGE_SIZE);
            let Some(&cell_hp_gpa) = hpa_to_gpa.get(&cell_hp_hpa.raw()) else {
                continue;
            };
            let Some(&aggr_hp_gpa) = hpa_to_gpa.get(&e.aggressor_hugepage_hpa.raw()) else {
                continue;
            };
            let gpa = cell_hp_gpa.add(e.cell_hpa.offset_from(cell_hp_hpa));
            // Must be releasable: inside the virtio-mem region and in a
            // different hugepage than the aggressors.
            if gpa < region_base || gpa.offset_from(region_base) >= region_size {
                continue;
            }
            if cell_hp_gpa == aggr_hp_gpa {
                continue;
            }
            out.push(RelocatedBit {
                gpa,
                bit: e.bit,
                direction: e.direction,
                aggressors: [
                    aggr_hp_gpa.add(e.aggressor_offsets[0]),
                    aggr_hp_gpa.add(e.aggressor_offsets[1]),
                ],
                stable: e.stable,
            });
        }
        out
    }

    /// Candidate hugepages the balloon path executes to trigger multihit
    /// splits: every virtio-mem hugepage except the ones holding a
    /// victim cell or an aggressor pair, in region order. `steer` pops
    /// from the end, so the spray walks backwards from the region top —
    /// away from the low chunks where catalogued bits cluster.
    fn balloon_pool(vm: &Vm, bits: &[RelocatedBit]) -> Vec<Gpa> {
        let region = vm.virtio_mem();
        let base = region.region_base();
        let mut reserved: Vec<Gpa> = Vec::with_capacity(bits.len() * 2);
        for bit in bits {
            reserved.push(bit.hugepage_base());
            reserved.push(bit.aggressors[0].align_down(HUGE_PAGE_SIZE));
        }
        (0..region.region_size())
            .step_by(HUGE_PAGE_SIZE as usize)
            .map(|off| base.add(off))
            .filter(|hp| !reserved.contains(hp))
            .collect()
    }

    /// Runs one full attempt against an existing VM. The VM is consumed:
    /// hugepage splits are irreversible, so it is destroyed afterwards
    /// either way.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors (including the quarantine NACK from
    /// the release step).
    pub fn run_attempt(
        &self,
        host: &mut Host,
        mut vm: Vm,
        catalog: &FlipCatalog,
        target_hpa: Hpa,
    ) -> Result<AttemptRecord, HvError> {
        let start = host.now();
        let candidates = self.relocate(&vm, catalog);
        // Greedy conflict-free selection: a bit's victim hugepage must not
        // host another bit's aggressors (releasing it would unmap them),
        // and vice versa.
        let mut bits: Vec<RelocatedBit> = Vec::new();
        let mut victim_set: Vec<Gpa> = Vec::new();
        let mut aggressor_set: Vec<Gpa> = Vec::new();
        for bit in candidates {
            let victim_hp = bit.hugepage_base();
            let aggr_hp = bit.aggressors[0].align_down(HUGE_PAGE_SIZE);
            if aggressor_set.contains(&victim_hp) || victim_set.contains(&aggr_hp) {
                continue;
            }
            victim_set.push(victim_hp);
            aggressor_set.push(aggr_hp);
            bits.push(bit);
            if bits.len() >= self.params.bits_per_attempt {
                break;
            }
        }
        if bits.is_empty() {
            let duration = host.elapsed_since(start);
            vm.destroy(host);
            return Ok(AttemptRecord {
                outcome: AttemptOutcome::NoUsableBits,
                duration,
                bits_targeted: 0,
                released: 0,
            });
        }

        // Per-variant steering + exploitation pipeline. The virtio-mem
        // and gbhammer paths share the paper's steering (exhaust, release,
        // spray); balloon replaces it with per-page PCP placements; the
        // hammer/validation differences live inside the exploiter.
        let result: Result<(AttemptOutcome, usize), HvError> = (|| match self.variant {
            AttackVariant::Balloon => {
                // §6 balloon path: no exhaustion step — the freed frame
                // rides the per-CPU pageset straight into the next EPT
                // allocation. Stamp first, while chunks are huge-mapped.
                self.exploiter.stamp_magic(host, &mut vm)?;
                let mut pool = Self::balloon_pool(&vm, &bits);
                host.tracer().stage_start(hh_trace::Stage::BalloonSteer);
                let steered = BalloonSteering::new().steer(host, &mut vm, &bits, &mut pool);
                host.tracer().stage_end(hh_trace::Stage::BalloonSteer);
                let stats = steered?;
                let outcome = match self.exploiter.run(host, &mut vm, &bits, target_hpa)? {
                    Ok(proof) => AttemptOutcome::Success(proof),
                    Err(failure) => AttemptOutcome::Failed(failure),
                };
                Ok((outcome, stats.pages_released as usize))
            }
            AttackVariant::GbHammer => {
                // Paper steering, but no magic stamping: permission
                // flips never change a translation, so detection reads
                // the flip journal and host memory instead.
                self.steering.exhaust_noise(host, &mut vm)?;
                let victims: Vec<Gpa> = bits.iter().map(|b| b.hugepage_base()).collect();
                let released = self.steering.release_hugepages(host, &mut vm, &victims)?;
                self.steering.spray_ept(
                    host,
                    &mut vm,
                    PageSteering::spray_budget(released.len()),
                )?;
                let outcome = match self.exploiter.run_gb(host, &mut vm, &bits)? {
                    Ok(corruption) => AttemptOutcome::PteCorrupted(corruption),
                    Err(failure) => AttemptOutcome::Failed(failure),
                };
                Ok((outcome, released.len()))
            }
            // VirtioMem and PtHammer: exhaust noise, stamp magic while
            // chunks are still huge-mapped, release victims, spray EPT
            // pages, then hammer and hunt (PtHammer only changes how the
            // exploiter's hammer loop drives activations).
            AttackVariant::VirtioMem | AttackVariant::PtHammer | AttackVariant::Xen => {
                self.steering.exhaust_noise(host, &mut vm)?;
                self.exploiter.stamp_magic(host, &mut vm)?;
                let victims: Vec<Gpa> = bits.iter().map(|b| b.hugepage_base()).collect();
                let released = self.steering.release_hugepages(host, &mut vm, &victims)?;
                self.steering.spray_ept(
                    host,
                    &mut vm,
                    PageSteering::spray_budget(released.len()),
                )?;
                // Bits whose hugepage is gone are the live targets.
                let outcome = match self.exploiter.run(host, &mut vm, &bits, target_hpa)? {
                    Ok(proof) => AttemptOutcome::Success(proof),
                    Err(failure) => AttemptOutcome::Failed(failure),
                };
                Ok((outcome, released.len()))
            }
        })();

        let (outcome, released) = match result {
            Ok(pair) => pair,
            Err(e) => {
                // A failed attempt must still release the VM's resources
                // (the paper's procedure reboots either way).
                vm.destroy(host);
                return Err(e);
            }
        };
        let duration = host.elapsed_since(start);
        let bits_targeted = bits.len();
        vm.destroy(host);
        Ok(AttemptRecord {
            outcome,
            duration,
            bits_targeted,
            released,
        })
    }

    /// Runs attempts (respawning the VM each time) until the first
    /// success or `max_attempts`. Plants a host-side witness page so a
    /// successful escape is independently verifiable, as in the paper's
    /// §5.3.2 experiment.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors.
    pub fn campaign(
        &self,
        scenario: &Scenario,
        host: &mut Host,
        catalog: &FlipCatalog,
        max_attempts: usize,
    ) -> Result<CampaignStats, HvError> {
        self.campaign_with_progress(scenario, host, catalog, max_attempts, |_, _| {})
    }

    /// [`Self::campaign`] with a per-attempt progress callback
    /// `(attempt_index_1_based, record)` — long experiment harnesses use
    /// it to report liveness.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors.
    pub fn campaign_with_progress(
        &self,
        scenario: &Scenario,
        host: &mut Host,
        catalog: &FlipCatalog,
        max_attempts: usize,
        mut progress: impl FnMut(usize, &AttemptRecord),
    ) -> Result<CampaignStats, HvError> {
        if self.variant == AttackVariant::Xen {
            return self.xen_campaign(scenario, host, max_attempts, &mut progress);
        }
        // The hypervisor page with a magic value (§5.3.2). Allocation
        // jitter from the fault plan can trip this too, so it retries
        // like any choke-point operation.
        let witness = with_retries(&self.params.retry, host, |h| {
            h.buddy_mut()
                .alloc_page(MigrateType::Unmovable)
                .map_err(HvError::from)
        })?;
        host.dram_mut()
            .store_mut()
            .write_u64(witness.base_hpa(), 0x4b56_4d45_5343_4150); // "KVMESCAP"

        let campaign_start = host.now();
        let mut stats = CampaignStats::default();
        for i in 0..max_attempts {
            let respawn_start = host.now();
            let free_before = host.buddy().free_pages();
            // Aborts only happen under an active fault plan, so only
            // then is the pre-attempt snapshot worth its clone cost.
            let buddy_before = host
                .fault_plan()
                .config()
                .is_active()
                .then(|| host.buddy().snapshot());
            // A transient fault that outlives its retry budget abandons
            // the attempt, not the campaign — whether it trips the VM
            // respawn (constructor rolls itself back) or the attempt
            // proper (`run_attempt` tears the VM down). Either way the
            // host must be back to its pre-attempt page balance so the
            // next respawn starts clean.
            let attempt = with_retries(&self.params.retry, host, |h| {
                h.create_vm(scenario.vm_config())
            })
            .and_then(|vm| self.run_attempt(host, vm, catalog, witness.base_hpa()));
            let mut record = match attempt {
                Ok(record) => record,
                Err(e) if e.is_transient() => {
                    assert_eq!(
                        host.buddy().free_pages(),
                        free_before,
                        "aborted attempt must not leak host pages"
                    );
                    // Page *count* coming back is not enough: the
                    // abort's interleaved split/coalesce traffic leaves
                    // the free lists in a different LIFO order, and the
                    // next attempt's physical layout — hence its hammer
                    // outcome — would depend on where the fault struck.
                    // Restore the order too, so a cell's result is a
                    // function of its own seeds only.
                    if let Some(snap) = &buddy_before {
                        host.buddy_mut().restore_free_state(snap);
                    }
                    AttemptRecord {
                        outcome: AttemptOutcome::Aborted(e),
                        duration: SimDuration::ZERO,
                        bits_targeted: 0,
                        released: 0,
                    }
                }
                Err(e) => return Err(e),
            };
            // Attempt cost includes the VM respawn (§5.3: failed attempts
            // force a restart).
            record.duration = host.elapsed_since(respawn_start);
            let success = record.outcome.is_success();
            if let AttemptOutcome::Success(proof) = &record.outcome {
                assert_eq!(
                    proof.value_read, 0x4b56_4d45_5343_4150,
                    "escape proof must read the planted witness"
                );
            }
            progress(i + 1, &record);
            stats.attempts.push(record);
            if success {
                break;
            }
        }
        stats.total_time = host.elapsed_since(campaign_start);
        Ok(stats)
    }

    /// The Xen variant's campaign body: no KVM VM, witness, or flip
    /// catalogue — each attempt creates a Xen domain of the scenario's
    /// size and runs one p2m steering experiment, measuring how many
    /// released frames the hypervisor reuses for p2m tables (the Xen
    /// analogue of a landed EPT placement). One reused frame counts as
    /// success, mirroring the other variants' first-success semantics.
    fn xen_campaign(
        &self,
        scenario: &Scenario,
        host: &mut Host,
        max_attempts: usize,
        progress: &mut impl FnMut(usize, &AttemptRecord),
    ) -> Result<CampaignStats, HvError> {
        let mem_bytes = scenario.vm_config().total_mem().bytes();
        // Release one superpage block per targeted bit; demote an order
        // of magnitude more so reuse is observable even when the stride
        // scatters releases across the domain.
        let blocks = self.params.bits_per_attempt as u64;
        let demotions = blocks * 10;
        let campaign_start = host.now();
        let mut stats = CampaignStats::default();
        for i in 0..max_attempts {
            let attempt_start = host.now();
            let attempt = with_retries(&self.params.retry, host, |h| {
                let mut dom = hh_hv::xen::XenDomain::create(h, mem_bytes)?;
                h.tracer().stage_start(hh_trace::Stage::XenSteer);
                let reuse = hh_hv::xen::steering_experiment(h, &mut dom, blocks, demotions);
                h.tracer().stage_end(hh_trace::Stage::XenSteer);
                dom.destroy(h);
                reuse
            });
            let record = match attempt {
                Ok(reuse) => AttemptRecord {
                    outcome: AttemptOutcome::Steered {
                        released: reuse.released,
                        p2m_pages: reuse.p2m_pages,
                        reused: reuse.reused,
                    },
                    duration: host.elapsed_since(attempt_start),
                    bits_targeted: blocks as usize,
                    released: reuse.released as usize,
                },
                Err(e) if e.is_transient() => AttemptRecord {
                    outcome: AttemptOutcome::Aborted(e),
                    duration: host.elapsed_since(attempt_start),
                    bits_targeted: 0,
                    released: 0,
                },
                Err(e) => return Err(e),
            };
            let success = record.outcome.is_success();
            progress(i + 1, &record);
            stats.attempts.push(record);
            if success {
                break;
            }
        }
        stats.total_time = host.elapsed_since(campaign_start);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Scenario;

    fn driver_for_tiny() -> DriverParams {
        DriverParams {
            bits_per_attempt: 4,
            stable_bits_only: true,
            ..DriverParams::paper()
        }
    }

    #[test]
    fn relocate_survives_a_respawn() {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let driver = AttackDriver::new(driver_for_tiny());
        let catalog = driver
            .profile_and_catalog(&mut host, &mut vm, sc.profile_params())
            .unwrap();
        vm.destroy(&mut host);

        if catalog.entries.is_empty() {
            return; // seed produced no exploitable stable bits — fine
        }
        let vm2 = host.create_vm(sc.vm_config()).unwrap();
        let relocated = driver.relocate(&vm2, &catalog);
        // Most chunks land back in the same frames (LIFO reuse), so most
        // catalogued bits relocate.
        for bit in &relocated {
            assert_ne!(
                bit.hugepage_base(),
                bit.aggressors[0].align_down(HUGE_PAGE_SIZE)
            );
            // Relocated coordinates are consistent with the hypercall.
            let hpa = vm2.hypercall_gpa_to_hpa(bit.gpa).unwrap();
            assert!(catalog.entries.iter().any(|e| e.cell_hpa == hpa));
        }
        vm2.destroy(&mut host);
    }

    #[test]
    fn campaign_attempts_are_recorded_and_bounded() {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let driver = AttackDriver::new(driver_for_tiny());
        let catalog = driver
            .profile_and_catalog(&mut host, &mut vm, sc.profile_params())
            .unwrap();
        vm.destroy(&mut host);

        let stats = driver.campaign(&sc, &mut host, &catalog, 3).unwrap();
        assert!(!stats.attempts.is_empty() && stats.attempts.len() <= 3);
        assert!(stats.total_time.as_nanos() > 0);
        for a in &stats.attempts {
            assert!(a.duration.as_nanos() > 0);
        }
        // Host is left balanced: all VMs destroyed.
        let _ = stats.avg_attempt_mins();
    }

    fn record(outcome: AttemptOutcome, nanos: u64) -> AttemptRecord {
        AttemptRecord {
            outcome,
            duration: SimDuration::from_nanos(nanos),
            bits_targeted: 0,
            released: 0,
        }
    }

    #[test]
    fn stats_saturate_instead_of_overflowing() {
        // Three near-u64::MAX attempts: the raw nanosecond sum would
        // overflow twice over; the folds must saturate, not wrap or
        // panic.
        let proof = crate::exploit::EscapeProof {
            controlled_gpa: hh_sim::addr::Gpa::new(0),
            ept_window_gpa: hh_sim::addr::Gpa::new(0),
            target_hpa: Hpa::new(0),
            value_read: 0,
        };
        let stats = CampaignStats {
            attempts: vec![
                record(AttemptOutcome::NoUsableBits, u64::MAX - 17),
                record(AttemptOutcome::NoUsableBits, u64::MAX / 2),
                record(AttemptOutcome::Success(proof), u64::MAX),
            ],
            total_time: SimDuration::from_nanos(u64::MAX),
        };
        assert_eq!(
            stats.time_to_first_success(),
            Some(SimDuration::from_nanos(u64::MAX))
        );
        let mins = stats.avg_attempt_mins();
        // Saturated sum / 3 attempts, in minutes — finite and positive.
        assert!(mins.is_finite() && mins > 0.0);
        assert!((mins - SimDuration::from_nanos(u64::MAX / 3).as_mins_f64()).abs() < 1.0);
    }

    #[test]
    fn stats_on_empty_campaign_are_zero() {
        let stats = CampaignStats::default();
        assert_eq!(stats.avg_attempt_mins(), 0.0);
        assert_eq!(stats.time_to_first_success(), None);
        assert_eq!(stats.first_success(), None);
    }
}

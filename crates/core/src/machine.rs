//! Evaluation-machine presets (§5 of the paper) and scaled-down variants.

use hh_dram::fault::{FaultParams, TrrConfig};
use hh_dram::DimmProfile;
use hh_hv::{FaultConfig, Host, HostConfig, QuarantinePolicy, VmConfig};
use hh_sim::clock::CostModel;
use hh_sim::ByteSize;

use crate::profile::ProfileParams;
use crate::steering::SteeringParams;

/// One row of the scenario registry: the CLI lookup name, the label
/// carried by the built [`Scenario`], and a one-line description.
///
/// The registry ([`Scenario::registry`]) is the single source of truth
/// for "what can `--scenario` / a server job spec name": the CLI
/// `scenarios` subcommand lists it, and the campaign server validates
/// submitted job specs against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioInfo {
    /// Lookup name accepted by [`Scenario::by_name`] (`"s1"`, `"tiny"`, …).
    pub name: &'static str,
    /// The label the built scenario carries (`Scenario::name`).
    pub label: &'static str,
    /// One-line human description.
    pub description: &'static str,
}

/// The attack path a campaign cell drives — the second axis of the
/// scenario matrix (machine × variant).
///
/// Scenario lookup names carry the variant as an `@` suffix
/// (`"tiny@balloon"`, `"s1@xen"`); a bare name means the paper's
/// virtio-mem path, and [`AttackVariant::VirtioMem`] renders back to the
/// bare name so single-variant output stays byte-identical to earlier
/// revisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttackVariant {
    /// The paper's §4 path: vIOMMU exhaustion, virtio-mem release,
    /// iTLB-Multihit EPT spray.
    #[default]
    VirtioMem,
    /// §6 virtio-balloon steering: per-page releases landed via PCP LIFO.
    Balloon,
    /// §6 Xen comparison: `XENMEM_decrease_reservation` into an
    /// undifferentiated domheap — reuse with no exhaustion step.
    Xen,
    /// PThammer-style implicit hammering: aggressor activations come
    /// from EPT-walker fetches instead of explicit loads.
    PtHammer,
    /// GbHammer-style targeting: flip G/permission bits in sprayed
    /// EPTEs rather than PFN bits.
    GbHammer,
}

impl AttackVariant {
    /// Every variant, in presentation order.
    pub const ALL: [AttackVariant; 5] = [
        AttackVariant::VirtioMem,
        AttackVariant::Balloon,
        AttackVariant::Xen,
        AttackVariant::PtHammer,
        AttackVariant::GbHammer,
    ];

    /// Number of variants (the length of [`AttackVariant::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Position in [`AttackVariant::ALL`] — the index for per-variant
    /// accumulator arrays.
    pub const fn index(self) -> usize {
        match self {
            AttackVariant::VirtioMem => 0,
            AttackVariant::Balloon => 1,
            AttackVariant::Xen => 2,
            AttackVariant::PtHammer => 3,
            AttackVariant::GbHammer => 4,
        }
    }

    /// Stable lookup/display name (the `@` suffix of scenario names).
    pub const fn label(self) -> &'static str {
        match self {
            AttackVariant::VirtioMem => "virtio-mem",
            AttackVariant::Balloon => "balloon",
            AttackVariant::Xen => "xen",
            AttackVariant::PtHammer => "pthammer",
            AttackVariant::GbHammer => "gbhammer",
        }
    }

    /// One-line description for the `scenarios` listing.
    pub const fn description(self) -> &'static str {
        match self {
            AttackVariant::VirtioMem => {
                "paper §4 path: vIOMMU exhaustion + virtio-mem release + EPT spray"
            }
            AttackVariant::Balloon => "§6 balloon steering: per-page release landed via PCP LIFO",
            AttackVariant::Xen => {
                "§6 Xen comparison: proactive release into one undifferentiated heap"
            }
            AttackVariant::PtHammer => {
                "implicit hammering: activations charged via EPT-walker fetches"
            }
            AttackVariant::GbHammer => "G/permission-bit PTE flips validated against host memory",
        }
    }

    /// Parses a variant label.
    ///
    /// # Errors
    ///
    /// Returns the unknown label plus the known labels.
    pub fn parse(label: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|v| v.label() == label)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::ALL.iter().map(|v| v.label()).collect();
                format!(
                    "unknown attack variant {label} (known: {})",
                    known.join(", ")
                )
            })
    }
}

/// A complete experiment scenario: host, VM, and attack parameters.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (`"S1"`, `"S2"`, `"S3"`, …).
    pub name: &'static str,
    host: HostConfig,
    vm: VmConfig,
    profile: ProfileParams,
    steering: SteeringParams,
    variant: AttackVariant,
}

impl Scenario {
    /// Machine S1: Core i3-10100, 16 GiB DDR4-2666, bare KVM, attacker
    /// HVM with 13 GiB (12 GiB profiled).
    ///
    /// The hammer-loop cost is calibrated so a full 12 GiB profile takes
    /// ~72 simulated hours, matching Table 1.
    pub fn s1() -> Self {
        let mut host = HostConfig::s1();
        host.cost = CostModel {
            hammer_activation_nanos: 600,
            ..CostModel::calibrated()
        };
        Self {
            name: "S1",
            host,
            vm: VmConfig::paper_attacker(),
            profile: ProfileParams::paper(),
            steering: SteeringParams::paper(),
            variant: AttackVariant::VirtioMem,
        }
    }

    /// Machine S2: Xeon E-2124, 16 GiB DDR4-2666, bare KVM.
    ///
    /// Calibrated to ~48 simulated hours for a full profile (Table 1).
    pub fn s2() -> Self {
        let mut host = HostConfig::s2();
        host.cost = CostModel {
            hammer_activation_nanos: 385,
            ..CostModel::calibrated()
        };
        Self {
            name: "S2",
            host,
            vm: VmConfig::paper_attacker(),
            profile: ProfileParams::paper(),
            steering: SteeringParams::paper(),
            variant: AttackVariant::VirtioMem,
        }
    }

    /// Machine S3: S1 hardware under a DevStack (OpenStack) deployment —
    /// same mechanics, more boot-time noise pages (Figure 3(b)).
    pub fn s3() -> Self {
        Self {
            name: "S3",
            host: HostConfig::s3(),
            ..Self::s1()
        }
    }

    /// A miniature scenario for tests, examples and CI: 512 MiB host,
    /// 96 MiB attacker VM, densely vulnerable DIMM.
    pub fn tiny_demo() -> Self {
        let host = HostConfig {
            // A one-slot TRR sampler: weak enough that the profiler's
            // double-sided pairs still flip bits through it, present so
            // traces of the tiny scenario show refresh activity.
            dimm: DimmProfile {
                fault: FaultParams::dense_test(),
                ..DimmProfile::s1(ByteSize::mib(512).bytes())
            }
            .with_trr(TrrConfig::undersized()),
            noise: hh_hv::NoiseProfile::quiet(),
            quarantine: QuarantinePolicy::Off,
            ..HostConfig::small_test()
        };
        // The paper's attack VM is 13 GiB of a 16 GiB host (~81 %); keep
        // the same majority share here so a respawned VM necessarily
        // overlaps the profiled frames and catalogued bits can relocate
        // (with a minority share the buddy hands every respawn a disjoint
        // region and campaigns never get past NoUsableBits).
        let vm = VmConfig {
            boot_mem: ByteSize::mib(32),
            virtio_mem: ByteSize::mib(288),
            vcpus: 1,
            iommu_groups: 1,
            thp: true,
            multihit_mitigation: true,
            ept_mode: Default::default(),
        };
        Self {
            name: "tiny",
            host,
            vm,
            profile: ProfileParams {
                hammer_rounds: 400_000,
                stability_checks: 2,
                stop_after_exploitable: None,
                host_mem: ByteSize::mib(512),
            },
            steering: SteeringParams {
                iova_mappings: 2_000,
                iova_base: 0x1_0000_0000,
                mapping_batch: 200,
                batch_delay_secs: 0,
            },
            variant: AttackVariant::VirtioMem,
        }
    }

    /// The cheapest runnable scenario — milliseconds per campaign cell,
    /// for memory-scaling CI and bench series that need thousands of
    /// cells (`memory-cap` stage, `campaign_scaling` streaming series).
    /// Everything that scales per-cell cost is cut to the bone: 256 MiB
    /// host, 36 MiB VM, light profiling, a short steering burst. Its
    /// campaigns rarely succeed — the point is exercising the engine's
    /// per-cell machinery, not the attack.
    pub fn micro_demo() -> Self {
        let host = HostConfig {
            dimm: DimmProfile {
                fault: FaultParams::dense_test(),
                ..DimmProfile::s1(ByteSize::mib(256).bytes())
            }
            .with_trr(TrrConfig::undersized()),
            ..HostConfig::small_test()
        };
        // Same majority-share reasoning as `tiny_demo`, scaled down.
        let vm = VmConfig {
            boot_mem: ByteSize::mib(4),
            virtio_mem: ByteSize::mib(32),
            vcpus: 1,
            iommu_groups: 1,
            thp: true,
            multihit_mitigation: true,
            ept_mode: Default::default(),
        };
        Self {
            name: "micro",
            host,
            vm,
            profile: ProfileParams {
                hammer_rounds: 50_000,
                stability_checks: 1,
                stop_after_exploitable: Some(4),
                host_mem: ByteSize::mib(256),
            },
            steering: SteeringParams {
                iova_mappings: 100,
                iova_base: 0x1_0000_0000,
                mapping_batch: 50,
                batch_delay_secs: 0,
            },
            variant: AttackVariant::VirtioMem,
        }
    }

    /// A mid-size scenario whose spray capacity exceeds the worst-case
    /// noise remnant (PCP plus up to 1 023 split-leftover pages), so
    /// released-page reuse is observable: 4 GiB host, ~3 GiB attacker.
    ///
    /// The `tiny_demo` scenario is too small for that: its ~44-hugepage
    /// spray cannot drown the very noise floor the paper sizes its spray
    /// against (§4.2.3), which is a faithful outcome, just not a useful
    /// one for reuse experiments.
    pub fn small_attack() -> Self {
        let host = HostConfig {
            dimm: DimmProfile {
                fault: FaultParams::dense_test(),
                ..DimmProfile::s1(ByteSize::gib(4).bytes())
            },
            noise: hh_hv::NoiseProfile {
                live_unmovable_pages: 2_000,
                free_small_unmovable_pages: 4_000,
            },
            quarantine: QuarantinePolicy::Off,
            ..HostConfig::small_test()
        };
        let vm = VmConfig {
            boot_mem: ByteSize::mib(64),
            virtio_mem: ByteSize::mib(3 * 1024),
            vcpus: 2,
            iommu_groups: 1,
            thp: true,
            multihit_mitigation: true,
            ept_mode: Default::default(),
        };
        Self {
            name: "small",
            host,
            vm,
            profile: ProfileParams {
                hammer_rounds: 400_000,
                stability_checks: 2,
                stop_after_exploitable: None,
                host_mem: ByteSize::gib(4),
            },
            steering: SteeringParams {
                iova_mappings: 8_000,
                iova_base: 0x1_0000_0000,
                mapping_batch: 500,
                batch_delay_secs: 0,
            },
            variant: AttackVariant::VirtioMem,
        }
    }

    /// The registered scenarios, in presentation order: lookup name,
    /// label, and a one-line description each.
    pub const fn registry() -> &'static [ScenarioInfo] {
        &[
            ScenarioInfo {
                name: "s1",
                label: "S1",
                description: "Core i3-10100, 16 GiB DDR4-2666, bare KVM (paper Table 1)",
            },
            ScenarioInfo {
                name: "s2",
                label: "S2",
                description: "Xeon E-2124, 16 GiB DDR4-2666, bare KVM (paper Table 1)",
            },
            ScenarioInfo {
                name: "s3",
                label: "S3",
                description: "S1 hardware under DevStack: extra boot-time noise pages",
            },
            ScenarioInfo {
                name: "small",
                label: "small",
                description: "4 GiB host whose spray drowns the noise floor; reuse experiments",
            },
            ScenarioInfo {
                name: "tiny",
                label: "tiny",
                description: "512 MiB demo machine for tests and CI; full attack pipeline",
            },
            ScenarioInfo {
                name: "micro",
                label: "micro",
                description: "cheapest runnable cell (256 MiB); memory-scaling series",
            },
        ]
    }

    /// Comma-separated registered lookup names, for error messages.
    fn known_names() -> String {
        let names: Vec<&str> = Self::registry().iter().map(|info| info.name).collect();
        names.join(", ")
    }

    /// Looks a scenario up by its CLI name (`s1`, `s2`, `s3`, `small`,
    /// `tiny`, `micro`), optionally qualified with an attack variant as
    /// `name@variant` (`tiny@balloon`, `s1@xen`). Bare names select the
    /// paper's virtio-mem path.
    ///
    /// # Errors
    ///
    /// Returns the unknown name, plus the registered names so callers
    /// surface a helpful message; unknown variant suffixes list the
    /// known variants.
    pub fn by_name(name: &str) -> Result<Self, String> {
        let (base, variant) = match name.split_once('@') {
            Some((base, suffix)) => (base, AttackVariant::parse(suffix)?),
            None => (name, AttackVariant::VirtioMem),
        };
        let scenario = match base {
            "s1" => Self::s1(),
            "s2" => Self::s2(),
            "s3" => Self::s3(),
            "small" => Self::small_attack(),
            "tiny" => Self::tiny_demo(),
            "micro" => Self::micro_demo(),
            other => {
                return Err(format!(
                    "unknown scenario {other} (registered: {})",
                    Self::known_names()
                ))
            }
        };
        Ok(scenario.with_variant(variant))
    }

    /// The canonical lookup name that round-trips through
    /// [`Scenario::by_name`]: the lowercase base name, with an
    /// `@variant` suffix for non-default variants. Job specs and
    /// checkpoints store this form.
    pub fn lookup_name(&self) -> String {
        let base = self.name.to_lowercase();
        match self.variant {
            AttackVariant::VirtioMem => base,
            v => format!("{base}@{}", v.label()),
        }
    }

    /// Returns a copy with a different seed for repeated experiments.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.host = self.host.with_seed(seed);
        self
    }

    /// Returns a copy with a replacement host configuration (ablations).
    pub fn with_host_config(mut self, host: HostConfig) -> Self {
        self.host = host;
        self
    }

    /// Returns a copy with a replacement VM configuration (scaling
    /// experiments).
    pub fn with_vm_config(mut self, vm: VmConfig) -> Self {
        self.vm = vm;
        self
    }

    /// Returns a copy with the given hostile-host fault plan. The
    /// plan's injection stream also mixes the host seed, so re-seeding
    /// the scenario afterwards (as campaign grids do per cell) still
    /// yields an independent fault schedule per cell.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.host = self.host.with_faults(faults);
        self
    }

    /// Returns a copy driving a different attack variant.
    pub fn with_variant(mut self, variant: AttackVariant) -> Self {
        self.variant = variant;
        self
    }

    /// The attack variant this scenario drives.
    pub fn variant(&self) -> AttackVariant {
        self.variant
    }

    /// Returns a copy with the virtio-mem quarantine countermeasure on.
    pub fn with_quarantine(mut self) -> Self {
        self.host = self
            .host
            .clone()
            .with_quarantine(QuarantinePolicy::QemuPatch);
        self
    }

    /// Boots the scenario's host.
    pub fn boot_host(&self) -> Host {
        Host::new(self.host.clone())
    }

    /// The host configuration.
    pub fn host_config(&self) -> &HostConfig {
        &self.host
    }

    /// The attacker VM configuration.
    pub fn vm_config(&self) -> VmConfig {
        self.vm.clone()
    }

    /// Profiling parameters.
    pub fn profile_params(&self) -> ProfileParams {
        self.profile.clone()
    }

    /// Page Steering parameters.
    pub fn steering_params(&self) -> SteeringParams {
        self.steering.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_shapes() {
        let s1 = Scenario::s1();
        assert_eq!(s1.host_config().dimm.geometry.size_bytes(), 16 << 30);
        assert_eq!(s1.vm_config().total_mem(), ByteSize::gib(13));
        assert_eq!(s1.vm_config().vcpus, 4);

        let s2 = Scenario::s2();
        assert!(s2.host_config().dimm.geometry.bank_fn().bank_count() == 32);

        let s3 = Scenario::s3();
        assert!(
            s3.host_config().noise.free_small_unmovable_pages
                > s1.host_config().noise.free_small_unmovable_pages
        );
    }

    #[test]
    fn tiny_demo_boots() {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let vm = host.create_vm(sc.vm_config()).unwrap();
        assert_eq!(vm.config().total_mem(), ByteSize::mib(320));
        vm.destroy(&mut host);
    }

    #[test]
    fn registry_names_resolve_and_labels_match() {
        for info in Scenario::registry() {
            let scenario = Scenario::by_name(info.name)
                .unwrap_or_else(|e| panic!("registry name {} must resolve: {e}", info.name));
            assert_eq!(
                scenario.name, info.label,
                "label mismatch for {}",
                info.name
            );
            assert!(!info.description.is_empty());
        }
        let err = Scenario::by_name("nope").unwrap_err();
        assert!(err.contains("unknown scenario nope"), "got: {err}");
        assert!(
            err.contains("tiny"),
            "error must list registered names: {err}"
        );
    }

    #[test]
    fn quarantine_variant() {
        let sc = Scenario::tiny_demo().with_quarantine();
        assert_eq!(sc.host_config().quarantine, QuarantinePolicy::QemuPatch);
    }

    #[test]
    fn variant_suffix_parses_and_round_trips() {
        for variant in AttackVariant::ALL {
            let name = match variant {
                AttackVariant::VirtioMem => "tiny".to_string(),
                v => format!("tiny@{}", v.label()),
            };
            let sc = Scenario::by_name(&name).unwrap();
            assert_eq!(sc.variant(), variant);
            assert_eq!(sc.lookup_name(), name, "lookup name must round-trip");
            assert_eq!(
                Scenario::by_name(&sc.lookup_name()).unwrap().variant(),
                variant
            );
        }
        // Bare names are the virtio-mem path; the explicit suffix also
        // resolves but canonicalizes back to the bare form.
        let explicit = Scenario::by_name("tiny@virtio-mem").unwrap();
        assert_eq!(explicit.variant(), AttackVariant::VirtioMem);
        assert_eq!(explicit.lookup_name(), "tiny");
    }

    #[test]
    fn bad_variant_suffixes_are_rejected() {
        let err = Scenario::by_name("tiny@warp").unwrap_err();
        assert!(err.contains("unknown attack variant warp"), "got: {err}");
        assert!(err.contains("balloon"), "error must list variants: {err}");
        // Unknown base with a valid suffix still names the base.
        let err = Scenario::by_name("mars@balloon").unwrap_err();
        assert!(err.contains("unknown scenario mars"), "got: {err}");
    }
}

//! Subcommand implementations.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hh_dram::dramdig::recover;
use hh_dram::timing::{AccessTiming, TimingProbe};
use hh_sim::addr::HUGE_PAGE_SIZE;
use hh_sim::clock::SimDuration;
use hh_sim::Gpa;
use hh_trace::{Counter, Metrics, Stage, TraceMode};
use hyperhammer::driver::{AttackDriver, AttemptOutcome, DriverParams};
use hyperhammer::machine::{AttackVariant, Scenario};
use hyperhammer::parallel::{
    resolve_jobs, CampaignGrid, CancelToken, CellConsumer, CellResult, StreamError,
};
use hyperhammer::profile::{ProfileParams, Profiler};
use hyperhammer::steering::PageSteering;
use hyperhammer::streamref::{merge_shards, CampaignAggregate, CampaignStreamer};
use hyperhammer::{JobSpec, MachineTemplate};

use crate::opts::{ClientAction, Command, FaultOpts, Options};
use crate::output::{
    self, AttackOut, AttackVariantOut, BenchDiffOut, CampaignCellOut, ProfileOut, ReconOut,
    ScenarioOut, SteerOut, TraceCountersOut, TraceEventOut, TraceStageOut, VariantSummaryOut,
};

/// Dispatches the parsed command.
///
/// # Errors
///
/// Returns a displayable error for any failure in the underlying stack.
pub fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    match &opts.command {
        Command::Recon => recon(opts),
        Command::Profile { stop_after } => profile(opts, *stop_after),
        Command::Steer { blocks, spray_gib } => steer(opts, *blocks, *spray_gib),
        Command::Attack { attempts, bits } => attack(opts, *attempts, *bits),
        Command::Campaign {
            scenarios,
            seeds,
            base_seed,
            attempts,
            bits,
            jobs,
            faults,
            checkpoint,
            checkpoint_every,
            resume,
            stop_after_cells,
        } => {
            if checkpoint.is_some() || resume.is_some() {
                campaign_checkpointed(
                    opts,
                    grid_spec(*seeds, *base_seed, *attempts, *bits, *faults, scenarios),
                    *jobs,
                    checkpoint.as_deref(),
                    *checkpoint_every,
                    resume.as_deref(),
                    *stop_after_cells,
                )
            } else {
                campaign(
                    opts, scenarios, *seeds, *base_seed, *attempts, *bits, *jobs, *faults,
                )
            }
        }
        Command::Trace {
            scenarios,
            seeds,
            base_seed,
            attempts,
            bits,
            jobs,
            faults,
        } => trace(
            opts, scenarios, *seeds, *base_seed, *attempts, *bits, *jobs, *faults,
        ),
        Command::Scenarios => {
            scenarios_cmd(opts);
            Ok(())
        }
        Command::Serve { addr, spool } => serve(addr, spool.as_deref()),
        Command::Client { addr, action } => client(opts, addr, action),
        Command::Analyse => {
            analyse(opts);
            Ok(())
        }
        Command::BenchDiff {
            baseline,
            current,
            tolerance,
        } => bench_diff(opts, baseline, current, *tolerance),
    }
}

fn bench_diff(
    opts: &Options,
    baseline: &str,
    current: &str,
    tolerance: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    use hh_bench::baseline::{diff, BenchReport, DiffStatus};

    let base = BenchReport::load(std::path::Path::new(baseline))?;
    let cur = BenchReport::load(std::path::Path::new(current))?;
    let report = diff(&base, &cur, tolerance)?;

    let status_name = |s: DiffStatus| match s {
        DiffStatus::Ok => "ok",
        DiffStatus::Regression => "regression",
        DiffStatus::Improved => "improved",
        DiffStatus::Missing => "missing",
        DiffStatus::New => "new",
    };
    let rows: Vec<BenchDiffOut> = report
        .entries
        .iter()
        .map(|e| BenchDiffOut {
            name: e.name.clone(),
            baseline_ns: e.baseline_ns,
            current_ns: e.current_ns,
            ratio: e.ratio,
            rss_ratio: e.rss_ratio,
            status: status_name(e.status),
        })
        .collect();

    if opts.json {
        for row in &rows {
            println!("{}", output::to_json_line(row));
        }
        if report.has_improvements() {
            // The hint goes to stderr so JSON consumers see only rows
            // on stdout.
            eprintln!(
                "note: improvements beyond tolerance understate the baseline — \
                 consider re-baselining (scripts/bench_diff.sh --update)"
            );
        }
    } else {
        let fmt_ns = |ns: Option<f64>| {
            ns.map_or_else(
                || "-".to_string(),
                |ns| hh_bench::harness::fmt_duration(std::time::Duration::from_nanos(ns as u64)),
            )
        };
        let name_w = rows
            .iter()
            .map(|r| r.name.len())
            .chain(std::iter::once("bench".len()))
            .max()
            .unwrap_or(5);
        println!(
            "{:<name_w$}  {:>10}  {:>10}  {:>7}  {:>7}  status",
            "bench", "baseline", "current", "ratio", "rss"
        );
        for r in &rows {
            let fmt_ratio =
                |x: Option<f64>| x.map_or_else(|| "-".to_string(), |x| format!("{x:.2}x"));
            println!(
                "{:<name_w$}  {:>10}  {:>10}  {:>7}  {:>7}  {}",
                r.name,
                fmt_ns(r.baseline_ns),
                fmt_ns(r.current_ns),
                fmt_ratio(r.ratio),
                fmt_ratio(r.rss_ratio),
                r.status
            );
        }
        println!(
            "tolerance ±{:.0}%: {} ok, {} improved, {} new, {} regression(s), {} missing",
            tolerance * 100.0,
            report.count(DiffStatus::Ok),
            report.count(DiffStatus::Improved),
            report.count(DiffStatus::New),
            report.count(DiffStatus::Regression),
            report.count(DiffStatus::Missing),
        );
        if report.has_improvements() {
            println!(
                "note: improvements beyond tolerance understate the baseline — \
                 consider re-baselining (scripts/bench_diff.sh --update)"
            );
        }
    }

    if report.has_failures() {
        return Err(format!(
            "bench regression: {} regression(s), {} missing bench(es) vs {baseline}",
            report.count(DiffStatus::Regression),
            report.count(DiffStatus::Missing)
        )
        .into());
    }
    Ok(())
}

fn recon(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let geometry = opts.scenario.host_config().dimm.geometry.clone();
    let probe = TimingProbe::new(geometry.clone(), AccessTiming::ddr4_2666());
    let map = recover(&probe)?;
    let out = ReconOut {
        scenario: opts.scenario.name.to_string(),
        bank_masks: map.bank_fn.masks().to_vec(),
        banks: map.bank_fn.bank_count(),
        equivalent: map.bank_fn.equivalent_to(geometry.bank_fn()),
        measurements: map.measurements,
        row_bits: map.definite_row_bits.clone(),
    };
    output::emit(opts.json, &out, || {
        println!("scenario {}: bank function {}", out.scenario, map.bank_fn);
        println!(
            "{} banks | equivalent to ground truth: {} | {} measurements",
            out.banks, out.equivalent, out.measurements
        );
        println!("row bits: {:?}", out.row_bits);
    });
    Ok(())
}

fn profile(opts: &Options, stop_after: Option<usize>) -> Result<(), Box<dyn std::error::Error>> {
    let mut host = opts.scenario.boot_host();
    let mut vm = host.create_vm(opts.scenario.vm_config())?;
    let params = ProfileParams {
        stop_after_exploitable: stop_after,
        ..opts.scenario.profile_params()
    };
    let report = Profiler::new(params.clone()).run(&mut host, &mut vm)?;
    let out = ProfileOut {
        scenario: opts.scenario.name.to_string(),
        sim_hours: report.duration.as_hours_f64(),
        total: report.total(),
        one_to_zero: report.one_to_zero(),
        zero_to_one: report.zero_to_one(),
        stable: report.stable(),
        exploitable: report.exploitable(params.host_mem, &vm).len(),
        plan_hits: report.plan_hits,
        plan_misses: report.plan_misses,
    };
    output::emit(opts.json, &out, || {
        println!(
            "{}: {} flips in {:.1} simulated hours ({} 1->0, {} 0->1, {} stable, {} exploitable)",
            out.scenario,
            out.total,
            out.sim_hours,
            out.one_to_zero,
            out.zero_to_one,
            out.stable,
            out.exploitable
        );
        println!(
            "plan cache: {} hits / {} compiles",
            out.plan_hits, out.plan_misses
        );
    });
    Ok(())
}

fn steer(opts: &Options, blocks: u64, spray_gib: u64) -> Result<(), Box<dyn std::error::Error>> {
    let mut host = opts.scenario.boot_host();
    let mut vm = host.create_vm(opts.scenario.vm_config())?;
    let steering = PageSteering::new(opts.scenario.steering_params());

    let noise_before = host.noise_pages();
    steering.exhaust_noise(&mut host, &mut vm)?;
    let noise_after = host.noise_pages();
    host.reset_released_log();

    let region = vm.virtio_mem();
    let total_blocks = region.region_size() / HUGE_PAGE_SIZE;
    let victims: Vec<Gpa> = (0..blocks.min(total_blocks))
        .map(|i| {
            region
                .region_base()
                .add((i * (total_blocks / blocks.max(1)).max(1) % total_blocks) * HUGE_PAGE_SIZE)
        })
        .collect();
    steering.release_hugepages(&mut host, &mut vm, &victims)?;
    steering.spray_ept(&mut host, &mut vm, spray_gib << 30)?;
    let reuse = PageSteering::reuse_stats(&host, &vm);

    let out = SteerOut {
        scenario: opts.scenario.name.to_string(),
        noise_before,
        noise_after,
        released_pages: reuse.released_pages,
        ept_pages: reuse.ept_pages,
        reused_pages: reuse.reused_pages,
        r_n: reuse.r_n(),
        r_e: reuse.r_e(),
    };
    output::emit(opts.json, &out, || {
        println!(
            "{}: noise {} -> {} | N = {} E = {} R = {} (R_N {:.1}%, R_E {:.1}%)",
            out.scenario,
            out.noise_before,
            out.noise_after,
            out.released_pages,
            out.ept_pages,
            out.reused_pages,
            100.0 * out.r_n,
            100.0 * out.r_e
        );
    });
    Ok(())
}

fn attack(opts: &Options, attempts: usize, bits: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut host = opts.scenario.boot_host();
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: bits,
        ..DriverParams::paper()
    });
    let mut vm = host.create_vm(opts.scenario.vm_config())?;
    let catalog = driver.profile_and_catalog(&mut host, &mut vm, opts.scenario.profile_params())?;
    vm.destroy(&mut host);

    let stats = driver.campaign(&opts.scenario, &mut host, &catalog, attempts)?;
    let escape_read = stats.attempts.iter().find_map(|a| match &a.outcome {
        AttemptOutcome::Success(proof) => Some(proof.value_read),
        _ => None,
    });
    let out = AttackOut {
        scenario: opts.scenario.name.to_string(),
        attempts: stats.attempts.len(),
        first_success: stats.first_success(),
        avg_attempt_mins: stats.avg_attempt_mins(),
        hours_to_success: stats.time_to_first_success().map(|d| d.as_hours_f64()),
        escape_read,
    };
    output::emit(opts.json, &out, || {
        match out.first_success {
            Some(n) => println!(
                "{}: ESCAPED on attempt {n} after {:.1} simulated hours (read {:#x})",
                out.scenario,
                out.hours_to_success.unwrap_or(0.0),
                out.escape_read.unwrap_or(0)
            ),
            None => println!(
                "{}: no escape in {} attempts (avg {:.1} simulated mins/attempt)",
                out.scenario, out.attempts, out.avg_attempt_mins
            ),
        };
    });
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn campaign(
    opts: &Options,
    scenarios: &[Scenario],
    seeds: usize,
    base_seed: u64,
    attempts: usize,
    bits: usize,
    jobs: Option<usize>,
    faults: FaultOpts,
) -> Result<(), Box<dyn std::error::Error>> {
    // --trace turns on full event recording for every cell; otherwise the
    // campaign runs untraced (the fast path the benchmarks measure).
    let mode = if opts.trace.is_some() {
        TraceMode::Full
    } else {
        TraceMode::Off
    };
    let grid = grid_spec(seeds, base_seed, attempts, bits, faults, scenarios)
        .grid_for(scenarios.to_vec())
        .with_trace(mode);
    let jobs = resolve_jobs(jobs);
    // Streaming kicks in when the user names a spill directory or the
    // grid outgrows the in-memory cap (spilling via a temp dir then).
    let streaming =
        opts.stream_out.is_some() || opts.max_cells_in_memory.is_some_and(|cap| grid.len() > cap);
    if !opts.json {
        println!(
            "campaign: {} cells ({} scenarios x {} seeds) on {} workers{}",
            grid.len(),
            scenarios.len(),
            seeds,
            jobs,
            if streaming { " (streaming)" } else { "" }
        );
    }
    if streaming {
        return campaign_streamed(opts, &grid, jobs);
    }
    let results = grid.run(jobs)?;
    if let Some(path) = &opts.trace {
        let events = write_trace_ndjson(path, &results)?;
        if !opts.json {
            println!("trace: wrote {events} events to {path}");
        }
    }
    report_peak_rss();

    let cells: Vec<CampaignCellOut> = results.iter().map(cell_out).collect();
    let variant_rows = variant_rows_from_results(&results);

    if opts.json {
        // NDJSON: one record per cell, in grid order — the reference
        // bytes the streaming path's merged cells.ndjson must equal.
        for cell in &cells {
            println!("{}", output::to_json_line(cell));
        }
        print_variant_report(&variant_rows, true);
        return Ok(());
    }

    let header = [
        "scenario", "seed", "attempts", "first ok", "avg mins", "hours",
    ];
    let rows: Vec<[String; 6]> = cells
        .iter()
        .map(|c| {
            [
                c.scenario.clone(),
                format!("{:#x}", c.seed),
                c.attempts.to_string(),
                c.first_success
                    .map_or_else(|| "-".into(), |n| n.to_string()),
                format!("{:.1}", c.avg_attempt_mins),
                c.hours_to_success
                    .map_or_else(|| "-".into(), |h| format!("{h:.1}")),
            ]
        })
        .collect();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let body: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = *w))
            .collect();
        println!("| {} |", body.join(" | "));
    };
    print_row(&header.map(String::from));
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in &rows {
        print_row(row);
    }
    print_variant_report(&variant_rows, false);
    Ok(())
}

/// The [`JobSpec`] describing a CLI campaign/trace grid. Both the CLI
/// and the campaign server assemble grids through
/// [`JobSpec::grid_for`], so their parameters (and hence output bytes)
/// cannot drift apart. The resolved scenarios are passed to `grid_for`
/// directly; the spec's name list mirrors them for reference only.
fn grid_spec(
    seeds: usize,
    base_seed: u64,
    attempts: usize,
    bits: usize,
    faults: FaultOpts,
    scenarios: &[Scenario],
) -> JobSpec {
    JobSpec {
        // lookup_name round-trips through Scenario::by_name including
        // the @variant suffix, so checkpoints and server jobs rebuild
        // the exact same grid.
        scenarios: scenarios.iter().map(Scenario::lookup_name).collect(),
        seeds,
        base_seed,
        attempts,
        bits,
        jobs: None,
        priority: 0,
        fault_rate: faults.rate,
        fault_seed: faults.seed,
        max_retries: faults.max_retries,
        backoff_ms: faults.backoff_ms,
    }
}

/// The cell's display name: bare for the default virtio-mem variant
/// (keeping single-variant output byte-identical to earlier revisions),
/// `name@variant` otherwise.
fn qualified_scenario(r: &CellResult) -> String {
    if r.variant == AttackVariant::default() {
        r.scenario.to_string()
    } else {
        format!("{}@{}", r.scenario, r.variant.label())
    }
}

/// The per-cell campaign record — one NDJSON line of `--json` output.
fn cell_out(r: &CellResult) -> CampaignCellOut {
    CampaignCellOut {
        scenario: qualified_scenario(r),
        seed: r.seed,
        attempts: r.stats.attempts.len(),
        first_success: r.stats.first_success(),
        avg_attempt_mins: r.stats.avg_attempt_mins(),
        hours_to_success: r.stats.time_to_first_success().map(|d| d.as_hours_f64()),
    }
}

/// Appends one cell's NDJSON record line — the exact bytes the
/// in-memory `--json` path prints for the cell, so shard merges (and
/// the campaign server, which injects this very function) stay
/// byte-identical to it.
pub fn campaign_cell_line(result: &CellResult, out: &mut String) {
    out.push_str(&output::to_json_line(&cell_out(result)));
    out.push('\n');
}

/// Appends one cell's trace-event lines — the exact bytes
/// [`write_trace_ndjson`] writes for the cell.
fn fmt_trace_lines(result: &CellResult, out: &mut String) {
    let Some(sink) = &result.trace else { return };
    for event in sink.events() {
        let record = TraceEventOut {
            cell: sink.cell(),
            event: *event,
        };
        out.push_str(&output::to_json_line(&record));
        out.push('\n');
    }
}

/// Per-variant success-rate rows for grids spanning several attack
/// variants, in [`AttackVariant::ALL`] order; variants absent from the
/// grid are omitted.
fn variant_summary_rows(
    cells: &[u64; AttackVariant::COUNT],
    succeeded: &[u64; AttackVariant::COUNT],
    attempts: &[u64; AttackVariant::COUNT],
) -> Vec<VariantSummaryOut> {
    AttackVariant::ALL
        .iter()
        .copied()
        .filter(|v| cells[v.index()] > 0)
        .map(|v| {
            let i = v.index();
            VariantSummaryOut {
                variant: v.label().to_string(),
                cells: cells[i],
                succeeded: succeeded[i],
                attempts: attempts[i],
                success_rate: succeeded[i] as f64 / cells[i] as f64,
            }
        })
        .collect()
}

/// Same rows built from in-memory results, counting exactly what
/// [`CampaignAggregate::observe`] folds on the streamed path — both
/// paths therefore emit identical report bytes.
fn variant_rows_from_results(results: &[CellResult]) -> Vec<VariantSummaryOut> {
    let mut cells = [0u64; AttackVariant::COUNT];
    let mut succeeded = [0u64; AttackVariant::COUNT];
    let mut attempts = [0u64; AttackVariant::COUNT];
    for r in results {
        let i = r.variant.index();
        cells[i] += 1;
        if r.stats.first_success().is_some() {
            succeeded[i] += 1;
        }
        attempts[i] += r.stats.attempts.len() as u64;
    }
    variant_summary_rows(&cells, &succeeded, &attempts)
}

/// Prints the cross-variant comparison report. Single-variant grids
/// (the common case, and everything pre-existing CI byte-compares)
/// print nothing, so their output is unchanged.
fn print_variant_report(rows: &[VariantSummaryOut], json: bool) {
    if rows.len() < 2 {
        return;
    }
    if json {
        for row in rows {
            println!("{}", output::to_json_line(row));
        }
        return;
    }
    println!();
    println!("variant comparison:");
    for row in rows {
        println!(
            "  {:>10}: {}/{} cells succeeded ({:.0}% over {} attempts)",
            row.variant,
            row.succeeded,
            row.cells,
            row.success_rate * 100.0,
            row.attempts
        );
    }
}

/// Reports the process's peak RSS on stderr (keeping stdout
/// byte-comparable across runs); silent where procfs is unavailable.
fn report_peak_rss() {
    if let Some(kib) = hh_sim::mem::peak_rss_kib() {
        eprintln!("campaign: peak RSS {kib} KiB");
    }
}

/// The bounded-memory campaign path: per-worker consumers fold every
/// finished cell into a [`CampaignAggregate`] and spill its NDJSON
/// record (and trace lines) to shards, which merge in grid order into
/// `DIR/cells.ndjson` (and the `--trace` path). Peak memory is
/// O(workers); the merged bytes equal the in-memory path's for any
/// `--jobs`.
fn campaign_streamed(
    opts: &Options,
    grid: &CampaignGrid,
    jobs: std::num::NonZeroUsize,
) -> Result<(), Box<dyn std::error::Error>> {
    let trace_on = opts.trace.is_some();
    let (dir, temp) = match &opts.stream_out {
        Some(dir) => (PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("hh-stream-{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&dir)?;
    let fmt_cell = campaign_cell_line as fn(&CellResult, &mut String);
    let fmt_trace = fmt_trace_lines as fn(&CellResult, &mut String);

    let consumers = grid.run_streamed(jobs, |worker| {
        CampaignStreamer::new(&dir, worker, trace_on, fmt_cell, fmt_trace)
    })?;

    let mut aggregate = CampaignAggregate::default();
    let mut cell_shards = Vec::new();
    let mut trace_shards = Vec::new();
    for consumer in consumers {
        let (agg, cells, traces) = consumer.finish()?;
        aggregate.merge(&agg);
        cell_shards.extend(cells);
        trace_shards.extend(traces);
    }

    let merged_path = dir.join("cells.ndjson");
    let mut out = BufWriter::new(File::create(&merged_path)?);
    merge_shards(cell_shards, grid.len(), &mut out)?;
    drop(out);
    if let Some(path) = &opts.trace {
        let mut out = BufWriter::new(File::create(path)?);
        merge_shards(trace_shards, grid.len(), &mut out)?;
    }

    let variant_rows = variant_summary_rows(
        &aggregate.variant_cells,
        &aggregate.variant_succeeded,
        &aggregate.variant_attempts,
    );
    if opts.json {
        // Replay the merged file so stdout carries the same NDJSON
        // bytes the in-memory path prints.
        let mut file = File::open(&merged_path)?;
        let stdout = std::io::stdout();
        std::io::copy(&mut file, &mut stdout.lock())?;
        print_variant_report(&variant_rows, true);
    } else {
        let mins = |nanos: f64| nanos / 60e9;
        println!(
            "streamed: {} cells, {} succeeded, {} attempts ({} aborted)",
            aggregate.cells, aggregate.succeeded, aggregate.attempts, aggregate.aborted_attempts
        );
        println!(
            "catalog bits: mean {:.1}, p50 <= {}, p95 <= {}",
            aggregate.catalog_bits.mean(),
            aggregate.catalog_bits.quantile(0.5),
            aggregate.catalog_bits.quantile(0.95)
        );
        println!(
            "attempt mins: mean {:.2}, p50 <= {:.2}, p95 <= {:.2}",
            mins(aggregate.attempt_nanos.mean()),
            mins(aggregate.attempt_nanos.quantile(0.5) as f64),
            mins(aggregate.attempt_nanos.quantile(0.95) as f64)
        );
        if aggregate.success_nanos.count() > 0 {
            println!(
                "time to success (hours): mean {:.2}, p95 <= {:.2}",
                aggregate.success_nanos.mean() / 3600e9,
                aggregate.success_nanos.quantile(0.95) as f64 / 3600e9
            );
        }
        if trace_on {
            for stage in Stage::ALL {
                let sketch = &aggregate.stage_nanos[stage.index()];
                if sketch.count() > 0 {
                    println!(
                        "stage {}: mean {:.3} ms/cell, p95 <= {:.3} ms",
                        stage.name(),
                        sketch.mean() / 1e6,
                        sketch.quantile(0.95) as f64 / 1e6
                    );
                }
            }
            if let Some(path) = &opts.trace {
                println!("trace: merged stream to {path}");
            }
        }
        print_variant_report(&variant_rows, false);
        if !temp {
            println!("results: {}", merged_path.display());
        }
    }
    report_peak_rss();
    if temp {
        std::fs::remove_dir_all(&dir)?;
    }
    Ok(())
}

/// First line of a campaign checkpoint file. The rest is the job-spec
/// JSON header followed by one `index\tcell-json` record per completed
/// cell, appended (and fsynced every `--checkpoint-every` records) as
/// cells finish — a kill at any point leaves a loadable prefix.
const CKPT_MAGIC: &str = "hyperhammer-ckpt-v1";

/// The checkpoint file plus its flush cadence, shared by every worker's
/// [`CheckpointSink`] under one lock.
struct CkFile {
    file: File,
    since_sync: usize,
    every: usize,
}

impl CkFile {
    fn append(&mut self, record: &str) -> std::io::Result<()> {
        self.file.write_all(record.as_bytes())?;
        self.since_sync += 1;
        if self.since_sync >= self.every {
            self.file.sync_data()?;
            self.since_sync = 0;
        }
        Ok(())
    }
}

/// State shared by the per-worker checkpoint consumers.
struct CkShared {
    file: Mutex<CkFile>,
    /// Cells newly completed by this run (resumed cells not included).
    completed: AtomicUsize,
    stop_after: Option<usize>,
    cancel: CancelToken,
}

/// Per-worker consumer for checkpointed runs: appends each finished
/// cell's record to the shared checkpoint file and keeps the NDJSON
/// line for the final grid-order merge.
struct CheckpointSink<'a> {
    ck: &'a CkShared,
    lines: Vec<(usize, String)>,
}

impl CellConsumer for CheckpointSink<'_> {
    fn consume(
        &mut self,
        index: usize,
        result: CellResult,
    ) -> std::io::Result<Option<hh_trace::TraceSink>> {
        let mut line = String::new();
        campaign_cell_line(&result, &mut line);
        let record = format!("{index}\t{}", line);
        self.ck
            .file
            .lock()
            .expect("checkpoint poisoned")
            .append(&record)?;
        self.lines.push((index, line));
        let newly = self.ck.completed.fetch_add(1, Ordering::SeqCst) + 1;
        if self.ck.stop_after.is_some_and(|k| newly >= k) {
            self.ck.cancel.cancel();
        }
        Ok(None)
    }
}

/// A loaded checkpoint: the job spec it was started with and, per grid
/// index, the NDJSON line of every already-completed cell.
type Checkpoint = (JobSpec, Vec<Option<String>>);

/// Loads a checkpoint file written by `campaign --checkpoint`.
fn load_checkpoint(path: &str) -> Result<Checkpoint, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let lines: Vec<&str> = text.split('\n').collect();
    if lines.first().copied() != Some(CKPT_MAGIC) {
        return Err(format!("{path} is not a {CKPT_MAGIC} checkpoint").into());
    }
    let spec_line = lines
        .get(1)
        .filter(|l| !l.is_empty())
        .ok_or_else(|| format!("{path} has no job-spec header"))?;
    let spec = hh_server::json::job_spec_from_json(spec_line)?;
    spec.validate()?;
    let cells = spec.cell_count();
    let mut done: Vec<Option<String>> = vec![None; cells];
    let records = &lines[2..];
    for (pos, raw) in records.iter().enumerate() {
        if raw.is_empty() {
            continue;
        }
        let parsed = raw.split_once('\t').and_then(|(index, json)| {
            index
                .parse::<usize>()
                .ok()
                .filter(|i| *i < cells)
                .map(|i| (i, json))
        });
        match parsed {
            Some((index, json)) => done[index] = Some(format!("{json}\n")),
            // A kill mid-append can tear the final record; everything
            // before it is intact, so drop it and re-run that cell.
            None if pos + 1 == records.len() => {
                eprintln!("checkpoint: ignoring torn final record in {path}");
            }
            None => return Err(format!("corrupt checkpoint record at {path}:{}", pos + 3).into()),
        }
    }
    Ok((spec, done))
}

/// The checkpointed campaign path: every finished cell is appended to
/// the checkpoint file as it completes, `--resume` skips cells the file
/// already holds, and the merged grid-order output is byte-identical to
/// an uninterrupted `--json` run for any `--jobs` value.
fn campaign_checkpointed(
    opts: &Options,
    cli_spec: JobSpec,
    jobs: Option<usize>,
    checkpoint: Option<&str>,
    every: usize,
    resume: Option<&str>,
    stop_after_cells: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    // On resume the grid is rebuilt from the spec recorded in the file;
    // grid flags from the current command line are ignored so the
    // resumed cells can never diverge from the checkpointed ones.
    let (path, spec, mut lines) = match resume {
        Some(path) => {
            let (spec, lines) = load_checkpoint(path)?;
            (path.to_string(), spec, lines)
        }
        None => {
            let path = checkpoint.expect("dispatch checked").to_string();
            let mut file = File::create(&path)?;
            writeln!(file, "{CKPT_MAGIC}")?;
            writeln!(file, "{}", hh_server::json::job_spec_to_json(&cli_spec))?;
            file.sync_data()?;
            let cells = cli_spec.cell_count();
            (path, cli_spec, vec![None; cells])
        }
    };
    let grid = spec.to_grid()?;
    let resumed = lines.iter().filter(|l| l.is_some()).count();
    let jobs = resolve_jobs(jobs.or(spec.jobs));
    if !opts.json {
        println!(
            "campaign: {} cells ({resumed} checkpointed) on {} workers, checkpoint {path}",
            grid.len(),
            jobs
        );
    }

    let shared = CkShared {
        file: Mutex::new(CkFile {
            file: OpenOptions::new().append(true).open(&path)?,
            since_sync: 0,
            every,
        }),
        completed: AtomicUsize::new(0),
        stop_after: stop_after_cells,
        cancel: CancelToken::new(),
    };
    let templates = grid.scenario_templates();
    let refs: Vec<&MachineTemplate> = templates.iter().collect();
    let done_mask: Vec<bool> = lines.iter().map(Option::is_some).collect();
    let outcome = grid.run_streamed_resume(
        jobs,
        &refs,
        &shared.cancel,
        &|index| done_mask[index],
        |_| CheckpointSink {
            ck: &shared,
            lines: Vec::new(),
        },
    );
    let sync = || -> std::io::Result<()> { self_sync(&shared) };
    match outcome {
        Ok(consumers) => {
            sync()?;
            for sink in consumers {
                for (index, line) in sink.lines {
                    lines[index] = Some(line);
                }
            }
            if opts.json {
                let stdout = std::io::stdout();
                let mut out = stdout.lock();
                for line in &lines {
                    out.write_all(line.as_deref().expect("all cells complete").as_bytes())?;
                }
                out.flush()?;
            } else {
                println!(
                    "campaign: complete — {} cells ({} run now, {resumed} resumed)",
                    grid.len(),
                    grid.len() - resumed
                );
            }
            report_peak_rss();
            Ok(())
        }
        // --stop-after-cells cancels on purpose: the partial run is the
        // expected outcome, announced on stderr so stdout never carries
        // an incomplete NDJSON stream.
        Err(StreamError::Cancelled) if stop_after_cells.is_some() => {
            sync()?;
            let newly = shared.completed.load(Ordering::SeqCst);
            eprintln!(
                "campaign: stopped after {newly} new cells ({}/{} checkpointed) — \
                 finish with --resume {path}",
                resumed + newly,
                grid.len()
            );
            Ok(())
        }
        Err(e) => Err(e.into()),
    }
}

/// Final fsync of the checkpoint file, regardless of flush cadence.
fn self_sync(shared: &CkShared) -> std::io::Result<()> {
    let mut ck = shared.file.lock().expect("checkpoint poisoned");
    ck.since_sync = 0;
    ck.file.sync_data()
}

/// Writes the merged NDJSON event stream for a campaign run.
///
/// Cells are visited in grid order and each cell's events are already in
/// simulated chronological order, so the output is byte-identical for
/// every `--jobs` value. Returns the number of event lines written.
fn write_trace_ndjson(
    path: &str,
    results: &[CellResult],
) -> Result<usize, Box<dyn std::error::Error>> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut lines = 0usize;
    let mut buf = String::new();
    for result in results {
        buf.clear();
        fmt_trace_lines(result, &mut buf);
        lines += buf.lines().count();
        w.write_all(buf.as_bytes())?;
    }
    w.flush()?;
    Ok(lines)
}

#[allow(clippy::too_many_arguments)]
fn trace(
    opts: &Options,
    scenarios: &[Scenario],
    seeds: usize,
    base_seed: u64,
    attempts: usize,
    bits: usize,
    jobs: Option<usize>,
    faults: FaultOpts,
) -> Result<(), Box<dyn std::error::Error>> {
    // Metrics stay cheap; the full event stream is only recorded when the
    // caller asked for an NDJSON file to put it in.
    let mode = if opts.trace.is_some() {
        TraceMode::Full
    } else {
        TraceMode::Metrics
    };
    let grid = grid_spec(seeds, base_seed, attempts, bits, faults, scenarios)
        .grid_for(scenarios.to_vec())
        .with_trace(mode);
    let jobs = resolve_jobs(jobs);
    if !opts.json {
        println!(
            "trace: {} cells ({} scenarios x {} seeds) on {} workers",
            grid.len(),
            scenarios.len(),
            seeds,
            jobs
        );
    }
    let results = grid.run(jobs)?;
    if let Some(path) = &opts.trace {
        let events = write_trace_ndjson(path, &results)?;
        if !opts.json {
            println!("trace: wrote {events} events to {path}");
        }
    }

    // Merge per-cell metrics in grid order (element-wise, so the totals
    // are identical for every --jobs value).
    let mut merged = Metrics::default();
    for result in &results {
        if let Some(sink) = &result.trace {
            merged.merge(sink.metrics());
        }
    }

    let stages: Vec<TraceStageOut> = Stage::ALL
        .iter()
        .map(|&stage| TraceStageOut {
            stage: stage.name().to_string(),
            entries: merged.stage_entries(stage),
            sim_secs: merged.stage_nanos(stage) as f64 / 1e9,
            activations: merged.stage_activations(stage),
        })
        .collect();
    let counters = TraceCountersOut {
        counters: Counter::ALL
            .iter()
            .map(|&c| (c.name(), merged.get(c)))
            .collect(),
    };

    if opts.json {
        // NDJSON: one record per stage, then the counter totals.
        for stage in &stages {
            println!("{}", output::to_json_line(stage));
        }
        println!("{}", output::to_json_line(&counters));
        return Ok(());
    }

    use hh_bench::harness::{fit_widths, header, row};
    let names = ["stage", "entries", "sim time", "activations"];
    let rows: Vec<Vec<String>> = Stage::ALL
        .iter()
        .map(|&stage| {
            vec![
                stage.name().to_string(),
                merged.stage_entries(stage).to_string(),
                SimDuration::from_nanos(merged.stage_nanos(stage)).to_string(),
                merged.stage_activations(stage).to_string(),
            ]
        })
        .collect();
    let min_widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
    let widths = fit_widths(&min_widths, &rows);
    println!("{}", header(&names, &widths));
    for cells in &rows {
        println!("{}", row(cells, &widths));
    }
    println!();
    println!("counters:");
    for (name, value) in &counters.counters {
        println!("  {name:<24} {value}");
    }
    Ok(())
}

/// Lists the registered scenario presets — the names `--scenario(s)`
/// and server job specs accept.
fn scenarios_cmd(opts: &Options) {
    let rows: Vec<ScenarioOut> = Scenario::registry()
        .iter()
        .map(|info| ScenarioOut {
            name: info.name.to_string(),
            label: info.label.to_string(),
            description: info.description.to_string(),
        })
        .collect();
    let variants: Vec<AttackVariantOut> = AttackVariant::ALL
        .iter()
        .map(|v| AttackVariantOut {
            variant: v.label().to_string(),
            description: v.description().to_string(),
        })
        .collect();
    if opts.json {
        for row in &rows {
            println!("{}", output::to_json_line(row));
        }
        for row in &variants {
            println!("{}", output::to_json_line(row));
        }
        return;
    }
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(5).max(5);
    println!("{:<name_w$}  {:<label_w$}  description", "name", "label");
    for row in &rows {
        println!(
            "{:<name_w$}  {:<label_w$}  {}",
            row.name, row.label, row.description
        );
    }
    println!();
    println!("attack variants (append to a scenario as name@variant; `all` sweeps them):");
    let var_w = variants.iter().map(|v| v.variant.len()).max().unwrap_or(7);
    for v in &variants {
        println!("{:<var_w$}  {}", v.variant, v.description);
    }
}

/// Runs the persistent campaign server until a client posts
/// `/shutdown`. The per-cell formatter handed to the server is the very
/// function the `campaign --json` path uses, so server streams are
/// byte-identical to serial CLI runs by construction.
fn serve(addr: &str, spool: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    let server = hh_server::CampaignServer::start_with_spool(
        addr,
        campaign_cell_line,
        spool.map(PathBuf::from),
    )?;
    // Print the resolved address (port 0 binds are ephemeral) so
    // wrappers can scrape it; flush before blocking in join.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush()?;
    server.join();
    Ok(())
}

/// One campaign-server request from the CLI.
fn client(
    opts: &Options,
    addr: &str,
    action: &ClientAction,
) -> Result<(), Box<dyn std::error::Error>> {
    let api = hh_server::client::Client::new(addr);
    match action {
        ClientAction::Submit { spec } => {
            let id = api.submit(&hh_server::json::job_spec_to_json(spec))?;
            if opts.json {
                println!("{{\"id\": {id}}}");
            } else {
                println!("submitted job {id} ({} cells)", spec.cell_count());
            }
        }
        ClientAction::Status { id } => println!("{}", api.status(*id)?),
        ClientAction::Stream { id } => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            api.stream(*id, &mut out)?;
            out.flush()?;
        }
        ClientAction::Cancel { id } => println!("{}", api.cancel(*id)?),
        ClientAction::Shutdown => {
            api.shutdown()?;
            if !opts.json {
                println!("server shutting down");
            }
        }
    }
    Ok(())
}

fn analyse(opts: &Options) {
    let _ = opts;
    // Reuse the bench crate's presentation? The CLI stays dependency-lean
    // and prints the core numbers directly.
    use hh_sim::ByteSize;
    use hyperhammer::analysis::*;
    println!("success bound p = VM/(512*host):");
    for vm in [2u64, 4, 8, 13, 16] {
        println!(
            "  VM {vm:>2} GiB on 16 GiB host: 1 in {:.0}",
            expected_attempts(ByteSize::gib(vm), ByteSize::gib(16))
        );
    }
    println!(
        "end-to-end: S1 {:.0} days, S2 {:.0} days (paper: 192 / 137)",
        expected_end_to_end_days(72.0, 96, 12, 512.0),
        expected_end_to_end_days(48.0, 90, 12, 512.0),
    );
}

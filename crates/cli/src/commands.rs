//! Subcommand implementations.

use hh_dram::dramdig::recover;
use hh_dram::timing::{AccessTiming, TimingProbe};
use hh_sim::addr::HUGE_PAGE_SIZE;
use hh_sim::Gpa;
use hyperhammer::driver::{AttackDriver, AttemptOutcome, DriverParams};
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::{resolve_jobs, CampaignGrid};
use hyperhammer::profile::{ProfileParams, Profiler};
use hyperhammer::steering::PageSteering;

use crate::opts::{Command, Options};
use crate::output::{self, AttackOut, CampaignCellOut, ProfileOut, ReconOut, SteerOut};

/// Dispatches the parsed command.
///
/// # Errors
///
/// Returns a displayable error for any failure in the underlying stack.
pub fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    match &opts.command {
        Command::Recon => recon(opts),
        Command::Profile { stop_after } => profile(opts, *stop_after),
        Command::Steer { blocks, spray_gib } => steer(opts, *blocks, *spray_gib),
        Command::Attack { attempts, bits } => attack(opts, *attempts, *bits),
        Command::Campaign {
            scenarios,
            seeds,
            base_seed,
            attempts,
            bits,
            jobs,
        } => campaign(opts, scenarios, *seeds, *base_seed, *attempts, *bits, *jobs),
        Command::Analyse => {
            analyse(opts);
            Ok(())
        }
    }
}

fn recon(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let geometry = opts.scenario.host_config().dimm.geometry.clone();
    let probe = TimingProbe::new(geometry.clone(), AccessTiming::ddr4_2666());
    let map = recover(&probe)?;
    let out = ReconOut {
        scenario: opts.scenario.name.to_string(),
        bank_masks: map.bank_fn.masks().to_vec(),
        banks: map.bank_fn.bank_count(),
        equivalent: map.bank_fn.equivalent_to(geometry.bank_fn()),
        measurements: map.measurements,
        row_bits: map.definite_row_bits.clone(),
    };
    output::emit(opts.json, &out, || {
        println!("scenario {}: bank function {}", out.scenario, map.bank_fn);
        println!(
            "{} banks | equivalent to ground truth: {} | {} measurements",
            out.banks, out.equivalent, out.measurements
        );
        println!("row bits: {:?}", out.row_bits);
    });
    Ok(())
}

fn profile(opts: &Options, stop_after: Option<usize>) -> Result<(), Box<dyn std::error::Error>> {
    let mut host = opts.scenario.boot_host();
    let mut vm = host.create_vm(opts.scenario.vm_config())?;
    let params = ProfileParams {
        stop_after_exploitable: stop_after,
        ..opts.scenario.profile_params()
    };
    let report = Profiler::new(params.clone()).run(&mut host, &mut vm)?;
    let out = ProfileOut {
        scenario: opts.scenario.name.to_string(),
        sim_hours: report.duration.as_hours_f64(),
        total: report.total(),
        one_to_zero: report.one_to_zero(),
        zero_to_one: report.zero_to_one(),
        stable: report.stable(),
        exploitable: report.exploitable(params.host_mem, &vm).len(),
    };
    output::emit(opts.json, &out, || {
        println!(
            "{}: {} flips in {:.1} simulated hours ({} 1->0, {} 0->1, {} stable, {} exploitable)",
            out.scenario,
            out.total,
            out.sim_hours,
            out.one_to_zero,
            out.zero_to_one,
            out.stable,
            out.exploitable
        );
    });
    Ok(())
}

fn steer(opts: &Options, blocks: u64, spray_gib: u64) -> Result<(), Box<dyn std::error::Error>> {
    let mut host = opts.scenario.boot_host();
    let mut vm = host.create_vm(opts.scenario.vm_config())?;
    let steering = PageSteering::new(opts.scenario.steering_params());

    let noise_before = host.noise_pages();
    steering.exhaust_noise(&mut host, &mut vm)?;
    let noise_after = host.noise_pages();
    host.reset_released_log();

    let region = vm.virtio_mem();
    let total_blocks = region.region_size() / HUGE_PAGE_SIZE;
    let victims: Vec<Gpa> = (0..blocks.min(total_blocks))
        .map(|i| {
            region
                .region_base()
                .add((i * (total_blocks / blocks.max(1)).max(1) % total_blocks) * HUGE_PAGE_SIZE)
        })
        .collect();
    steering.release_hugepages(&mut host, &mut vm, &victims)?;
    steering.spray_ept(&mut host, &mut vm, spray_gib << 30)?;
    let reuse = PageSteering::reuse_stats(&host, &vm);

    let out = SteerOut {
        scenario: opts.scenario.name.to_string(),
        noise_before,
        noise_after,
        released_pages: reuse.released_pages,
        ept_pages: reuse.ept_pages,
        reused_pages: reuse.reused_pages,
        r_n: reuse.r_n(),
        r_e: reuse.r_e(),
    };
    output::emit(opts.json, &out, || {
        println!(
            "{}: noise {} -> {} | N = {} E = {} R = {} (R_N {:.1}%, R_E {:.1}%)",
            out.scenario,
            out.noise_before,
            out.noise_after,
            out.released_pages,
            out.ept_pages,
            out.reused_pages,
            100.0 * out.r_n,
            100.0 * out.r_e
        );
    });
    Ok(())
}

fn attack(opts: &Options, attempts: usize, bits: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut host = opts.scenario.boot_host();
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: bits,
        ..DriverParams::paper()
    });
    let mut vm = host.create_vm(opts.scenario.vm_config())?;
    let catalog = driver.profile_and_catalog(&mut host, &mut vm, opts.scenario.profile_params())?;
    vm.destroy(&mut host);

    let stats = driver.campaign(&opts.scenario, &mut host, &catalog, attempts)?;
    let escape_read = stats.attempts.iter().find_map(|a| match &a.outcome {
        AttemptOutcome::Success(proof) => Some(proof.value_read),
        _ => None,
    });
    let out = AttackOut {
        scenario: opts.scenario.name.to_string(),
        attempts: stats.attempts.len(),
        first_success: stats.first_success(),
        avg_attempt_mins: stats.avg_attempt_mins(),
        hours_to_success: stats.time_to_first_success().map(|d| d.as_hours_f64()),
        escape_read,
    };
    output::emit(opts.json, &out, || {
        match out.first_success {
            Some(n) => println!(
                "{}: ESCAPED on attempt {n} after {:.1} simulated hours (read {:#x})",
                out.scenario,
                out.hours_to_success.unwrap_or(0.0),
                out.escape_read.unwrap_or(0)
            ),
            None => println!(
                "{}: no escape in {} attempts (avg {:.1} simulated mins/attempt)",
                out.scenario, out.attempts, out.avg_attempt_mins
            ),
        };
    });
    Ok(())
}

fn campaign(
    opts: &Options,
    scenarios: &[Scenario],
    seeds: usize,
    base_seed: u64,
    attempts: usize,
    bits: usize,
    jobs: Option<usize>,
) -> Result<(), Box<dyn std::error::Error>> {
    let params = DriverParams {
        bits_per_attempt: bits,
        ..DriverParams::paper()
    };
    let grid =
        CampaignGrid::new(scenarios.to_vec(), params, attempts).with_seed_count(base_seed, seeds);
    let jobs = resolve_jobs(jobs);
    if !opts.json {
        println!(
            "campaign: {} cells ({} scenarios x {} seeds) on {} workers",
            grid.len(),
            scenarios.len(),
            seeds,
            jobs
        );
    }
    let results = grid.run(jobs)?;

    let cells: Vec<CampaignCellOut> = results
        .iter()
        .map(|r| CampaignCellOut {
            scenario: r.scenario.to_string(),
            seed: r.seed,
            attempts: r.stats.attempts.len(),
            first_success: r.stats.first_success(),
            avg_attempt_mins: r.stats.avg_attempt_mins(),
            hours_to_success: r.stats.time_to_first_success().map(|d| d.as_hours_f64()),
        })
        .collect();

    if opts.json {
        // NDJSON: one record per cell, in grid order.
        for cell in &cells {
            println!("{}", output::to_json(cell));
        }
        return Ok(());
    }

    let header = [
        "scenario", "seed", "attempts", "first ok", "avg mins", "hours",
    ];
    let rows: Vec<[String; 6]> = cells
        .iter()
        .map(|c| {
            [
                c.scenario.clone(),
                format!("{:#x}", c.seed),
                c.attempts.to_string(),
                c.first_success
                    .map_or_else(|| "-".into(), |n| n.to_string()),
                format!("{:.1}", c.avg_attempt_mins),
                c.hours_to_success
                    .map_or_else(|| "-".into(), |h| format!("{h:.1}")),
            ]
        })
        .collect();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let body: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = *w))
            .collect();
        println!("| {} |", body.join(" | "));
    };
    print_row(&header.map(String::from));
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in &rows {
        print_row(row);
    }
    Ok(())
}

fn analyse(opts: &Options) {
    let _ = opts;
    // Reuse the bench crate's presentation? The CLI stays dependency-lean
    // and prints the core numbers directly.
    use hh_sim::ByteSize;
    use hyperhammer::analysis::*;
    println!("success bound p = VM/(512*host):");
    for vm in [2u64, 4, 8, 13, 16] {
        println!(
            "  VM {vm:>2} GiB on 16 GiB host: 1 in {:.0}",
            expected_attempts(ByteSize::gib(vm), ByteSize::gib(16))
        );
    }
    println!(
        "end-to-end: S1 {:.0} days, S2 {:.0} days (paper: 192 / 137)",
        expected_end_to_end_days(72.0, 96, 12, 512.0),
        expected_end_to_end_days(48.0, 90, 12, 512.0),
    );
}

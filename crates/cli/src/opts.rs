//! Hand-rolled argument parsing (the workspace deliberately keeps its
//! dependency set minimal; a CLI-args crate is not worth a tree of
//! transitive dependencies for five flags).

use hyperhammer::machine::Scenario;

/// Usage text.
pub const USAGE: &str = "\
usage: hyperhammer-sim <command> [options]

commands:
  recon       recover the DRAM address map from the timing side channel
  profile     run memory profiling          (--stop-after N)
  steer       run Page Steering             (--blocks B, --spray-gib S)
  attack      run end-to-end attack attempts (--attempts N, --bits B)
  analyse     print the §5.3 analytical model

options:
  --scenario s1|s2|s3|small|tiny   machine preset        [default: small]
  --seed N                         experiment seed override
  --json                           machine-readable output
  --quarantine                     enable the §6 virtio-mem countermeasure";

/// A parsed command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Selected subcommand.
    pub command: Command,
    /// Scenario preset.
    pub scenario: Scenario,
    /// Emit JSON instead of human-readable text.
    pub json: bool,
}

/// Subcommands with their parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// DRAM address-map recovery.
    Recon,
    /// Memory profiling.
    Profile {
        /// Early-stop after this many exploitable bits.
        stop_after: Option<usize>,
    },
    /// Page Steering.
    Steer {
        /// Sub-blocks to release.
        blocks: u64,
        /// Spray size in GiB.
        spray_gib: u64,
    },
    /// End-to-end attack.
    Attack {
        /// Maximum attempts.
        attempts: usize,
        /// Vulnerable bits targeted per attempt.
        bits: usize,
    },
    /// Analytical model.
    Analyse,
}

impl Options {
    /// Parses the argument vector.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter().peekable();
        let command_name = it.next().ok_or("missing command")?.clone();

        let mut scenario_name = "small".to_string();
        let mut seed: Option<u64> = None;
        let mut json = false;
        let mut quarantine = false;
        let mut stop_after: Option<usize> = None;
        let mut blocks: u64 = 8;
        let mut spray_gib: u64 = 2;
        let mut attempts: usize = 50;
        let mut bits: usize = 12;

        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--scenario" => scenario_name = value("--scenario")?,
                "--seed" => {
                    seed = Some(
                        value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?,
                    )
                }
                "--json" => json = true,
                "--quarantine" => quarantine = true,
                "--stop-after" => {
                    stop_after = Some(
                        value("--stop-after")?
                            .parse()
                            .map_err(|e| format!("bad --stop-after: {e}"))?,
                    )
                }
                "--blocks" => {
                    blocks = value("--blocks")?
                        .parse()
                        .map_err(|e| format!("bad --blocks: {e}"))?
                }
                "--spray-gib" => {
                    spray_gib = value("--spray-gib")?
                        .parse()
                        .map_err(|e| format!("bad --spray-gib: {e}"))?
                }
                "--attempts" => {
                    attempts = value("--attempts")?
                        .parse()
                        .map_err(|e| format!("bad --attempts: {e}"))?
                }
                "--bits" => {
                    bits = value("--bits")?
                        .parse()
                        .map_err(|e| format!("bad --bits: {e}"))?
                }
                other => return Err(format!("unknown option {other}")),
            }
        }

        let mut scenario = match scenario_name.as_str() {
            "s1" => Scenario::s1(),
            "s2" => Scenario::s2(),
            "s3" => Scenario::s3(),
            "small" => Scenario::small_attack(),
            "tiny" => Scenario::tiny_demo(),
            other => return Err(format!("unknown scenario {other}")),
        };
        if let Some(seed) = seed {
            scenario = scenario.with_seed(seed);
        }
        if quarantine {
            scenario = scenario.with_quarantine();
        }

        let command = match command_name.as_str() {
            "recon" => Command::Recon,
            "profile" => Command::Profile { stop_after },
            "steer" => Command::Steer { blocks, spray_gib },
            "attack" => Command::Attack { attempts, bits },
            "analyse" | "analyze" => Command::Analyse,
            other => return Err(format!("unknown command {other}")),
        };
        Ok(Self {
            command,
            scenario,
            json,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Options, String> {
        Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_commands_and_defaults() {
        let o = parse(&["profile"]).unwrap();
        assert_eq!(o.command, Command::Profile { stop_after: None });
        assert_eq!(o.scenario.name, "small");
        assert!(!o.json);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "attack", "--scenario", "tiny", "--seed", "99", "--json", "--attempts", "7",
            "--bits", "3",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Attack { attempts: 7, bits: 3 });
        assert_eq!(o.scenario.name, "tiny");
        assert!(o.json);
    }

    #[test]
    fn steer_params() {
        let o = parse(&["steer", "--blocks", "12", "--spray-gib", "3"]).unwrap();
        assert_eq!(o.command, Command::Steer { blocks: 12, spray_gib: 3 });
    }

    #[test]
    fn quarantine_flag() {
        let o = parse(&["steer", "--quarantine"]).unwrap();
        assert_eq!(
            o.scenario.host_config().quarantine,
            hh_hv::QuarantinePolicy::QemuPatch
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["profile", "--scenario"]).is_err());
        assert!(parse(&["profile", "--scenario", "mars"]).is_err());
        assert!(parse(&["profile", "--wat"]).is_err());
        assert!(parse(&["profile", "--seed", "abc"]).is_err());
    }
}

//! Hand-rolled argument parsing (the workspace deliberately keeps its
//! dependency set minimal; a CLI-args crate is not worth a tree of
//! transitive dependencies for five flags).

use hh_hv::FaultConfig;
use hh_sim::clock::SimDuration;
use hyperhammer::machine::{AttackVariant, Scenario};
use hyperhammer::steering::RetryPolicy;
use hyperhammer::JobSpec;

/// Usage text.
pub const USAGE: &str = "\
usage: hyperhammer-sim <command> [options]

commands:
  recon       recover the DRAM address map from the timing side channel
  profile     run memory profiling          (--stop-after N)
  steer       run Page Steering             (--blocks B, --spray-gib S)
  attack      run end-to-end attack attempts (--attempts N, --bits B)
  campaign    sweep campaigns over a (scenario x seed) grid
              (--scenarios a,b,..., --seeds N, --base-seed S,
               --attempts N, --bits B, --jobs N); checkpointable with
              --checkpoint PATH / --resume PATH. Scenario names take an
              attack-variant suffix (tiny@balloon, s1@xen, ...); `all`
              expands to every scenario x variant and `name@all` to one
              scenario x every variant; grids spanning several variants
              print a per-variant comparison report
  trace       run a campaign grid with tracing on and print a per-stage
              time/activation breakdown (same grid flags as campaign)
  scenarios   list the registered scenario presets (lookup name, label,
              description) and the attack variants their names may take
              as an @suffix; these are the names job specs may use
  serve       run the persistent campaign server: HTTP/1.1 job API with
              a priority queue and warm per-scenario machine templates
              (--addr HOST:PORT; port 0 picks an ephemeral port and the
              chosen address is printed on stdout); with --spool DIR the
              queue survives restarts: specs and completed cell lines
              are persisted there and unfinished jobs resume on startup
              under their original ids, skipping already-completed cells
  client      talk to a campaign server at --addr:
                client submit [campaign grid flags] [--priority N]
                client status --id N      client stream --id N
                client cancel --id N      client shutdown
              `stream` prints the job's NDJSON cells in grid order —
              byte-identical to `campaign --json` with the same flags
  analyse     print the §5.3 analytical model
  bench-diff  compare a bench JSON report against a committed baseline
              (--baseline PATH --current PATH [--tolerance F]); exits
              non-zero on a regression beyond tolerance or a missing
              bench (see scripts/bench_diff.sh)

options:
  --scenario s1|s2|s3|small|tiny   machine preset        [default: small]
  --seed N                         experiment seed override
  --jobs N                         campaign worker threads
                                   [default: available parallelism]
  --trace PATH                     (campaign/trace) record every cell and
                                   write one merged NDJSON event stream;
                                   each line carries its cell index and
                                   cells appear in grid order, so output
                                   is byte-identical for every --jobs
  --stream-out DIR                 (campaign) bounded-memory streaming:
                                   spill per-worker NDJSON shards into
                                   DIR as cells finish and merge them
                                   into DIR/cells.ndjson at the end —
                                   byte-identical to the in-memory
                                   --json output, with peak RSS O(jobs)
                                   instead of O(cells)
  --max-cells-in-memory N          (campaign) auto-switch to streaming
                                   (spilling via a temporary directory)
                                   when the grid has more than N cells
                                   [default: unlimited]
  --json                           machine-readable output
  --quarantine                     enable the §6 virtio-mem countermeasure
  --faults R                       (campaign/trace) hostile-host fault
                                   injection: each choke-point operation
                                   (vIOMMU map/unmap, virtio-mem unplug,
                                   EPT split, page alloc) fails
                                   transiently with probability R
                                   [default: 0 = off]
  --fault-seed N                   fault-stream seed, mixed with each
                                   cell's host seed        [default: 0]
  --max-retries N                  retries per faulted operation before
                                   the attempt aborts      [default: 4]
  --backoff MS                     simulated backoff per retry, in
                                   milliseconds            [default: 10]
  --checkpoint PATH                (campaign) append every finished
                                   cell's record to a checkpoint file so
                                   an interrupted run can be resumed;
                                   incompatible with --trace/--stream-out
  --checkpoint-every N             (campaign) flush the checkpoint file
                                   every N completed cells  [default: 1]
  --resume PATH                    (campaign) resume the run recorded in
                                   a checkpoint file: the grid comes
                                   from the checkpoint (grid flags are
                                   ignored), completed cells are skipped
                                   and new cells keep appending to PATH;
                                   the merged output is byte-identical
                                   to an uninterrupted run for any --jobs
  --stop-after-cells K             (campaign) cancel the run after K
                                   newly completed cells — deterministic
                                   interruption for checkpoint tests
  --spool DIR                      (serve) persist the job queue to DIR
                                   and resume unfinished jobs on restart
  --addr HOST:PORT                 (serve/client) campaign-server address
                                   [default: 127.0.0.1:7799]
  --id N                           (client) job id returned by submit
  --priority N                     (client submit) queue priority 0-255;
                                   higher runs first        [default: 0]

campaign determinism: cell seeds are split from --base-seed by position,
so results (and --trace streams) are identical for every --jobs value.";

/// A parsed command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Selected subcommand.
    pub command: Command,
    /// Scenario preset.
    pub scenario: Scenario,
    /// Emit JSON instead of human-readable text.
    pub json: bool,
    /// Write an NDJSON trace-event stream to this path (campaign/trace).
    pub trace: Option<String>,
    /// Stream campaign output through NDJSON shards in this directory
    /// (campaign), merging into `cells.ndjson` at the end.
    pub stream_out: Option<String>,
    /// Auto-switch the campaign to streaming when the grid exceeds this
    /// many cells (campaign).
    pub max_cells_in_memory: Option<usize>,
}

/// Fault-injection and recovery knobs shared by `campaign` and `trace`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultOpts {
    /// Uniform injection rate per choke-point operation (0 disables).
    pub rate: f64,
    /// Fault-stream seed (`--fault-seed`).
    pub seed: u64,
    /// Retries per faulted operation (`--max-retries`).
    pub max_retries: u32,
    /// Simulated backoff per retry in milliseconds (`--backoff`).
    pub backoff_ms: u64,
}

impl Default for FaultOpts {
    fn default() -> Self {
        Self {
            rate: 0.0,
            seed: 0,
            max_retries: 4,
            backoff_ms: 10,
        }
    }
}

impl FaultOpts {
    /// The host-side fault plan these options describe.
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig::uniform(self.rate).with_seed(self.seed)
    }

    /// The driver-side recovery policy these options describe.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.max_retries,
            backoff: SimDuration::from_millis(self.backoff_ms),
            degrade: true,
        }
    }
}

/// Subcommands with their parameters.
///
/// `PartialEq` is hand-written because [`Scenario`] is a config bundle
/// without (and not worth) structural equality; grid scenarios compare
/// by preset name.
#[derive(Debug, Clone)]
pub enum Command {
    /// DRAM address-map recovery.
    Recon,
    /// Memory profiling.
    Profile {
        /// Early-stop after this many exploitable bits.
        stop_after: Option<usize>,
    },
    /// Page Steering.
    Steer {
        /// Sub-blocks to release.
        blocks: u64,
        /// Spray size in GiB.
        spray_gib: u64,
    },
    /// End-to-end attack.
    Attack {
        /// Maximum attempts.
        attempts: usize,
        /// Vulnerable bits targeted per attempt.
        bits: usize,
    },
    /// Parallel campaign sweep over a (scenario × seed) grid.
    Campaign {
        /// Scenario presets forming the grid rows.
        scenarios: Vec<Scenario>,
        /// Number of experiment seeds per scenario.
        seeds: usize,
        /// Base seed the per-cell seeds are split from.
        base_seed: u64,
        /// Maximum attempts per cell.
        attempts: usize,
        /// Vulnerable bits targeted per attempt.
        bits: usize,
        /// Worker threads (`None`: available parallelism).
        jobs: Option<usize>,
        /// Fault-injection and recovery knobs.
        faults: FaultOpts,
        /// Append finished-cell records to this checkpoint file.
        checkpoint: Option<String>,
        /// Flush the checkpoint file every this many completed cells.
        checkpoint_every: usize,
        /// Resume the run recorded in this checkpoint file.
        resume: Option<String>,
        /// Cancel the run after this many newly completed cells.
        stop_after_cells: Option<usize>,
    },
    /// Campaign grid with tracing on; prints the per-stage breakdown.
    Trace {
        /// Scenario presets forming the grid rows.
        scenarios: Vec<Scenario>,
        /// Number of experiment seeds per scenario.
        seeds: usize,
        /// Base seed the per-cell seeds are split from.
        base_seed: u64,
        /// Maximum attempts per cell.
        attempts: usize,
        /// Vulnerable bits targeted per attempt.
        bits: usize,
        /// Worker threads (`None`: available parallelism).
        jobs: Option<usize>,
        /// Fault-injection and recovery knobs.
        faults: FaultOpts,
    },
    /// List the registered scenario presets.
    Scenarios,
    /// Run the persistent campaign server.
    Serve {
        /// Listen address (`host:port`; port 0 for ephemeral).
        addr: String,
        /// Spool directory the job queue persists to (`--spool`).
        spool: Option<String>,
    },
    /// Talk to a campaign server.
    Client {
        /// Server address (`host:port`).
        addr: String,
        /// What to ask the server.
        action: ClientAction,
    },
    /// Analytical model.
    Analyse,
    /// Baseline comparison of bench JSON reports.
    BenchDiff {
        /// Committed baseline report path.
        baseline: String,
        /// Freshly produced report path.
        current: String,
        /// Relative tolerance (e.g. 0.15 = ±15%).
        tolerance: f64,
    },
}

/// One campaign-server request (`client <action>`).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Submit a job spec built from the campaign grid flags.
    Submit {
        /// The job to submit.
        spec: JobSpec,
    },
    /// Fetch a job's status JSON.
    Status {
        /// Job id.
        id: u64,
    },
    /// Stream a job's NDJSON cells to stdout.
    Stream {
        /// Job id.
        id: u64,
    },
    /// Cancel a job.
    Cancel {
        /// Job id.
        id: u64,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

impl PartialEq for Command {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Recon, Self::Recon)
            | (Self::Analyse, Self::Analyse)
            | (Self::Scenarios, Self::Scenarios) => true,
            (
                Self::Serve {
                    addr: a,
                    spool: asp,
                },
                Self::Serve {
                    addr: b,
                    spool: bsp,
                },
            ) => a == b && asp == bsp,
            (
                Self::Client {
                    addr: aa,
                    action: ac,
                },
                Self::Client {
                    addr: ba,
                    action: bc,
                },
            ) => aa == ba && ac == bc,
            (
                Self::BenchDiff {
                    baseline: ab,
                    current: ac,
                    tolerance: at,
                },
                Self::BenchDiff {
                    baseline: bb,
                    current: bc,
                    tolerance: bt,
                },
            ) => ab == bb && ac == bc && at == bt,
            (Self::Profile { stop_after: a }, Self::Profile { stop_after: b }) => a == b,
            (
                Self::Steer {
                    blocks: ab,
                    spray_gib: asg,
                },
                Self::Steer {
                    blocks: bb,
                    spray_gib: bsg,
                },
            ) => ab == bb && asg == bsg,
            (
                Self::Attack {
                    attempts: aa,
                    bits: ab,
                },
                Self::Attack {
                    attempts: ba,
                    bits: bb,
                },
            ) => aa == ba && ab == bb,
            (
                Self::Campaign {
                    scenarios: asc,
                    seeds: ase,
                    base_seed: abs,
                    attempts: aat,
                    bits: abi,
                    jobs: aj,
                    faults: af,
                    checkpoint: ack,
                    checkpoint_every: ace,
                    resume: ar,
                    stop_after_cells: asa,
                },
                Self::Campaign {
                    scenarios: bsc,
                    seeds: bse,
                    base_seed: bbs,
                    attempts: bat,
                    bits: bbi,
                    jobs: bj,
                    faults: bf,
                    checkpoint: bck,
                    checkpoint_every: bce,
                    resume: br,
                    stop_after_cells: bsa,
                },
            ) => {
                asc.len() == bsc.len()
                    && asc
                        .iter()
                        .zip(bsc)
                        .all(|(a, b)| a.name == b.name && a.variant() == b.variant())
                    && ase == bse
                    && abs == bbs
                    && aat == bat
                    && abi == bbi
                    && aj == bj
                    && af == bf
                    && ack == bck
                    && ace == bce
                    && ar == br
                    && asa == bsa
            }
            (
                Self::Trace {
                    scenarios: asc,
                    seeds: ase,
                    base_seed: abs,
                    attempts: aat,
                    bits: abi,
                    jobs: aj,
                    faults: af,
                },
                Self::Trace {
                    scenarios: bsc,
                    seeds: bse,
                    base_seed: bbs,
                    attempts: bat,
                    bits: bbi,
                    jobs: bj,
                    faults: bf,
                },
            ) => {
                asc.len() == bsc.len()
                    && asc
                        .iter()
                        .zip(bsc)
                        .all(|(a, b)| a.name == b.name && a.variant() == b.variant())
                    && ase == bse
                    && abs == bbs
                    && aat == bat
                    && abi == bbi
                    && aj == bj
                    && af == bf
            }
            _ => false,
        }
    }
}

fn scenario_by_name(name: &str) -> Result<Scenario, String> {
    Scenario::by_name(name)
}

/// Expands and validates a `--scenarios` list.
///
/// Entries are trimmed, empty entries (doubled/trailing commas) are
/// rejected, and duplicates are dropped keeping first-occurrence order.
/// Two expansion keywords cross into the attack-variant dimension:
/// `all` is every registered scenario × every variant, and `name@all`
/// is one scenario × every variant. Scenario-name validation stays with
/// [`Scenario::by_name`] at grid construction, except `name@all`'s base
/// which must be checked here to expand it.
fn expand_scenario_names(raw: &str) -> Result<Vec<String>, String> {
    fn push_unique(out: &mut Vec<String>, name: String) {
        if !out.contains(&name) {
            out.push(name);
        }
    }
    fn qualified(base: &str, variant: AttackVariant) -> String {
        if variant == AttackVariant::default() {
            base.to_string()
        } else {
            format!("{base}@{}", variant.label())
        }
    }
    let mut out = Vec::new();
    for entry in raw.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err("--scenarios has an empty entry (doubled or trailing comma?)".to_string());
        }
        if entry == "all" {
            for info in Scenario::registry() {
                for variant in AttackVariant::ALL {
                    push_unique(&mut out, qualified(info.name, variant));
                }
            }
        } else if let Some(base) = entry.strip_suffix("@all") {
            // Validate the base now, so `mars@all` fails with the
            // scenario error rather than expanding into five bad names.
            scenario_by_name(base)?;
            for variant in AttackVariant::ALL {
                push_unique(&mut out, qualified(base, variant));
            }
        } else {
            push_unique(&mut out, entry.to_string());
        }
    }
    Ok(out)
}

impl Options {
    /// Parses the argument vector.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter().peekable();
        let command_name = it.next().ok_or("missing command")?.clone();
        // `client` takes its action as a second command word, before
        // any flags.
        let client_action_name = if command_name == "client" {
            Some(
                it.next()
                    .ok_or("client needs an action: submit|status|stream|cancel|shutdown")?
                    .clone(),
            )
        } else {
            None
        };

        let mut scenario_name = "small".to_string();
        let mut seed: Option<u64> = None;
        let mut json = false;
        let mut quarantine = false;
        let mut stop_after: Option<usize> = None;
        let mut blocks: u64 = 8;
        let mut spray_gib: u64 = 2;
        let mut attempts: usize = 50;
        let mut bits: usize = 12;
        let mut scenarios: Option<Vec<String>> = None;
        let mut grid_seeds: usize = 1;
        let mut base_seed: u64 = 0;
        let mut jobs: Option<usize> = None;
        let mut fault_opts = FaultOpts::default();
        let mut trace: Option<String> = None;
        let mut stream_out: Option<String> = None;
        let mut max_cells_in_memory: Option<usize> = None;
        let mut checkpoint: Option<String> = None;
        let mut checkpoint_every: usize = 1;
        let mut resume: Option<String> = None;
        let mut stop_after_cells: Option<usize> = None;
        let mut spool: Option<String> = None;
        let mut addr = "127.0.0.1:7799".to_string();
        let mut id: Option<u64> = None;
        let mut priority: u8 = 0;
        let mut baseline: Option<String> = None;
        let mut current: Option<String> = None;
        let mut tolerance: f64 = hh_bench::baseline::DEFAULT_TOLERANCE;

        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--scenario" => scenario_name = value("--scenario")?,
                "--seed" => {
                    seed = Some(
                        value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?,
                    )
                }
                "--json" => json = true,
                "--quarantine" => quarantine = true,
                "--stop-after" => {
                    stop_after = Some(
                        value("--stop-after")?
                            .parse()
                            .map_err(|e| format!("bad --stop-after: {e}"))?,
                    )
                }
                "--blocks" => {
                    blocks = value("--blocks")?
                        .parse()
                        .map_err(|e| format!("bad --blocks: {e}"))?
                }
                "--spray-gib" => {
                    spray_gib = value("--spray-gib")?
                        .parse()
                        .map_err(|e| format!("bad --spray-gib: {e}"))?
                }
                "--attempts" => {
                    attempts = value("--attempts")?
                        .parse()
                        .map_err(|e| format!("bad --attempts: {e}"))?
                }
                "--bits" => {
                    bits = value("--bits")?
                        .parse()
                        .map_err(|e| format!("bad --bits: {e}"))?
                }
                "--scenarios" => scenarios = Some(expand_scenario_names(&value("--scenarios")?)?),
                "--seeds" => {
                    grid_seeds = value("--seeds")?
                        .parse()
                        .map_err(|e| format!("bad --seeds: {e}"))?;
                    if grid_seeds == 0 {
                        return Err("--seeds must be at least 1".to_string());
                    }
                }
                "--base-seed" => {
                    base_seed = value("--base-seed")?
                        .parse()
                        .map_err(|e| format!("bad --base-seed: {e}"))?
                }
                "--jobs" => {
                    jobs = Some(
                        value("--jobs")?
                            .parse()
                            .map_err(|e| format!("bad --jobs: {e}"))?,
                    )
                }
                "--faults" => {
                    fault_opts.rate = value("--faults")?
                        .parse()
                        .map_err(|e| format!("bad --faults: {e}"))?;
                    if !(fault_opts.rate.is_finite() && (0.0..=1.0).contains(&fault_opts.rate)) {
                        return Err("--faults must be a rate in 0..=1".to_string());
                    }
                }
                "--fault-seed" => {
                    fault_opts.seed = value("--fault-seed")?
                        .parse()
                        .map_err(|e| format!("bad --fault-seed: {e}"))?
                }
                "--max-retries" => {
                    fault_opts.max_retries = value("--max-retries")?
                        .parse()
                        .map_err(|e| format!("bad --max-retries: {e}"))?
                }
                "--backoff" => {
                    fault_opts.backoff_ms = value("--backoff")?
                        .parse()
                        .map_err(|e| format!("bad --backoff: {e}"))?
                }
                "--trace" => trace = Some(value("--trace")?),
                "--stream-out" => stream_out = Some(value("--stream-out")?),
                "--max-cells-in-memory" => {
                    max_cells_in_memory = Some(
                        value("--max-cells-in-memory")?
                            .parse()
                            .map_err(|e| format!("bad --max-cells-in-memory: {e}"))?,
                    )
                }
                "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
                "--checkpoint-every" => {
                    checkpoint_every = value("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                    if checkpoint_every == 0 {
                        return Err("--checkpoint-every must be at least 1".to_string());
                    }
                }
                "--resume" => resume = Some(value("--resume")?),
                "--stop-after-cells" => {
                    let parsed: usize = value("--stop-after-cells")?
                        .parse()
                        .map_err(|e| format!("bad --stop-after-cells: {e}"))?;
                    if parsed == 0 {
                        return Err("--stop-after-cells must be at least 1".to_string());
                    }
                    stop_after_cells = Some(parsed);
                }
                "--spool" => spool = Some(value("--spool")?),
                "--addr" => addr = value("--addr")?,
                "--id" => {
                    id = Some(
                        value("--id")?
                            .parse()
                            .map_err(|e| format!("bad --id: {e}"))?,
                    )
                }
                "--priority" => {
                    priority = value("--priority")?
                        .parse()
                        .map_err(|e| format!("bad --priority: {e}"))?
                }
                "--baseline" => baseline = Some(value("--baseline")?),
                "--current" => current = Some(value("--current")?),
                "--tolerance" => {
                    tolerance = value("--tolerance")?
                        .parse()
                        .map_err(|e| format!("bad --tolerance: {e}"))?;
                    if !(tolerance.is_finite() && tolerance >= 0.0) {
                        return Err("--tolerance must be a non-negative number".to_string());
                    }
                }
                other => return Err(format!("unknown option {other}")),
            }
        }

        let mut scenario = scenario_by_name(&scenario_name)?;
        if let Some(seed) = seed {
            scenario = scenario.with_seed(seed);
        }
        if quarantine {
            scenario = scenario.with_quarantine();
        }

        let command = match command_name.as_str() {
            "recon" => Command::Recon,
            "profile" => Command::Profile { stop_after },
            "steer" => Command::Steer { blocks, spray_gib },
            "attack" => Command::Attack { attempts, bits },
            "campaign" | "trace" => {
                // The grid defaults to the single --scenario selection;
                // --scenarios widens it. Quarantine applies to every row.
                let mut grid_scenarios = match &scenarios {
                    Some(names) => names
                        .iter()
                        .map(|n| scenario_by_name(n))
                        .collect::<Result<Vec<_>, _>>()?,
                    None => vec![scenario_by_name(&scenario_name)?],
                };
                if quarantine {
                    grid_scenarios = grid_scenarios
                        .into_iter()
                        .map(Scenario::with_quarantine)
                        .collect();
                }
                let base_seed = seed.unwrap_or(base_seed);
                if command_name == "campaign" {
                    if checkpoint.is_some() && resume.is_some() {
                        return Err("--checkpoint and --resume are mutually exclusive \
                             (--resume keeps appending to its own file)"
                            .to_string());
                    }
                    let checkpointing = checkpoint.is_some() || resume.is_some();
                    // The checkpoint header is a job spec, which (like
                    // the job API) cannot carry the quarantine knob — a
                    // resumed grid would silently drop it.
                    if checkpointing && quarantine {
                        return Err("--quarantine is not recorded in checkpoints".to_string());
                    }
                    if checkpointing && (trace.is_some() || stream_out.is_some()) {
                        return Err(
                            "checkpointing does not combine with --trace or --stream-out"
                                .to_string(),
                        );
                    }
                    if stop_after_cells.is_some() && !checkpointing {
                        return Err("--stop-after-cells needs --checkpoint or --resume \
                             (a deliberately partial run must be resumable)"
                            .to_string());
                    }
                    Command::Campaign {
                        scenarios: grid_scenarios,
                        seeds: grid_seeds,
                        base_seed,
                        attempts,
                        bits,
                        jobs,
                        faults: fault_opts,
                        checkpoint,
                        checkpoint_every,
                        resume,
                        stop_after_cells,
                    }
                } else {
                    Command::Trace {
                        scenarios: grid_scenarios,
                        seeds: grid_seeds,
                        base_seed,
                        attempts,
                        bits,
                        jobs,
                        faults: fault_opts,
                    }
                }
            }
            "scenarios" => Command::Scenarios,
            "serve" => Command::Serve { addr, spool },
            "client" => {
                let need_id = || id.ok_or("this client action needs --id N");
                let action = match client_action_name.as_deref() {
                    Some("submit") => {
                        if quarantine {
                            return Err(
                                "--quarantine is not supported over the job API".to_string()
                            );
                        }
                        let spec = JobSpec {
                            scenarios: scenarios
                                .clone()
                                .unwrap_or_else(|| vec![scenario_name.clone()]),
                            seeds: grid_seeds,
                            base_seed: seed.unwrap_or(base_seed),
                            attempts,
                            bits,
                            jobs,
                            priority,
                            fault_rate: fault_opts.rate,
                            fault_seed: fault_opts.seed,
                            max_retries: fault_opts.max_retries,
                            backoff_ms: fault_opts.backoff_ms,
                        };
                        // Fail on unknown scenario names here, with the
                        // registered list, instead of at the server.
                        spec.validate()?;
                        ClientAction::Submit { spec }
                    }
                    Some("status") => ClientAction::Status { id: need_id()? },
                    Some("stream") => ClientAction::Stream { id: need_id()? },
                    Some("cancel") => ClientAction::Cancel { id: need_id()? },
                    Some("shutdown") => ClientAction::Shutdown,
                    other => {
                        return Err(format!(
                        "unknown client action {} (expected submit|status|stream|cancel|shutdown)",
                        other.unwrap_or("<none>")
                    ))
                    }
                };
                Command::Client { addr, action }
            }
            "analyse" | "analyze" => Command::Analyse,
            "bench-diff" => Command::BenchDiff {
                baseline: baseline.ok_or("bench-diff needs --baseline PATH")?,
                current: current.ok_or("bench-diff needs --current PATH")?,
                tolerance,
            },
            other => return Err(format!("unknown command {other}")),
        };
        Ok(Self {
            command,
            scenario,
            json,
            trace,
            stream_out,
            max_cells_in_memory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Options, String> {
        Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_commands_and_defaults() {
        let o = parse(&["profile"]).unwrap();
        assert_eq!(o.command, Command::Profile { stop_after: None });
        assert_eq!(o.scenario.name, "small");
        assert!(!o.json);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "attack",
            "--scenario",
            "tiny",
            "--seed",
            "99",
            "--json",
            "--attempts",
            "7",
            "--bits",
            "3",
        ])
        .unwrap();
        assert_eq!(
            o.command,
            Command::Attack {
                attempts: 7,
                bits: 3
            }
        );
        assert_eq!(o.scenario.name, "tiny");
        assert!(o.json);
    }

    #[test]
    fn steer_params() {
        let o = parse(&["steer", "--blocks", "12", "--spray-gib", "3"]).unwrap();
        assert_eq!(
            o.command,
            Command::Steer {
                blocks: 12,
                spray_gib: 3
            }
        );
    }

    #[test]
    fn quarantine_flag() {
        let o = parse(&["steer", "--quarantine"]).unwrap();
        assert_eq!(
            o.scenario.host_config().quarantine,
            hh_hv::QuarantinePolicy::QemuPatch
        );
    }

    #[test]
    fn campaign_defaults_and_grid_flags() {
        let o = parse(&["campaign"]).unwrap();
        match &o.command {
            Command::Campaign {
                scenarios,
                seeds,
                base_seed,
                attempts,
                bits,
                jobs,
                faults,
                checkpoint,
                checkpoint_every,
                resume,
                stop_after_cells,
            } => {
                assert_eq!(scenarios.len(), 1);
                assert_eq!(scenarios[0].name, "small");
                assert_eq!(*seeds, 1);
                assert_eq!(*base_seed, 0);
                assert_eq!(*attempts, 50);
                assert_eq!(*bits, 12);
                assert_eq!(*jobs, None);
                assert_eq!(*faults, FaultOpts::default());
                assert!(!faults.fault_config().is_active());
                assert_eq!(*checkpoint, None);
                assert_eq!(*checkpoint_every, 1);
                assert_eq!(*resume, None);
                assert_eq!(*stop_after_cells, None);
            }
            other => panic!("expected campaign, got {other:?}"),
        }

        let o = parse(&[
            "campaign",
            "--scenarios",
            "tiny,s1",
            "--seeds",
            "3",
            "--base-seed",
            "42",
            "--attempts",
            "5",
            "--bits",
            "4",
            "--jobs",
            "2",
        ])
        .unwrap();
        match &o.command {
            Command::Campaign {
                scenarios,
                seeds,
                base_seed,
                jobs,
                ..
            } => {
                assert_eq!(
                    scenarios.iter().map(|s| s.name).collect::<Vec<_>>(),
                    ["tiny", "S1"]
                );
                assert_eq!(*seeds, 3);
                assert_eq!(*base_seed, 42);
                assert_eq!(*jobs, Some(2));
            }
            other => panic!("expected campaign, got {other:?}"),
        }
    }

    #[test]
    fn trace_flag_and_trace_command() {
        // `campaign --trace` records the grid and names the NDJSON file.
        let o = parse(&[
            "campaign",
            "--scenarios",
            "tiny",
            "--trace",
            "events.ndjson",
        ])
        .unwrap();
        assert_eq!(o.trace.as_deref(), Some("events.ndjson"));
        assert!(matches!(o.command, Command::Campaign { .. }));
        // Plain commands default to no tracing.
        let o = parse(&["campaign"]).unwrap();
        assert_eq!(o.trace, None);
        // `trace` reuses the campaign grid flags.
        let o = parse(&[
            "trace",
            "--scenario",
            "tiny",
            "--seeds",
            "2",
            "--base-seed",
            "7",
            "--attempts",
            "3",
            "--bits",
            "4",
            "--jobs",
            "2",
        ])
        .unwrap();
        match &o.command {
            Command::Trace {
                scenarios,
                seeds,
                base_seed,
                attempts,
                bits,
                jobs,
                ..
            } => {
                assert_eq!(scenarios[0].name, "tiny");
                assert_eq!((*seeds, *base_seed), (2, 7));
                assert_eq!((*attempts, *bits, *jobs), (3, 4, Some(2)));
            }
            other => panic!("expected trace, got {other:?}"),
        }
        // --trace needs a path.
        assert!(parse(&["campaign", "--trace"]).is_err());
    }

    #[test]
    fn streaming_flags() {
        let o = parse(&[
            "campaign",
            "--scenarios",
            "micro",
            "--stream-out",
            "/tmp/shards",
            "--max-cells-in-memory",
            "256",
        ])
        .unwrap();
        assert_eq!(o.stream_out.as_deref(), Some("/tmp/shards"));
        assert_eq!(o.max_cells_in_memory, Some(256));
        // Defaults: in-memory, no cap.
        let o = parse(&["campaign"]).unwrap();
        assert_eq!(o.stream_out, None);
        assert_eq!(o.max_cells_in_memory, None);
        // Both flags need values; the cap must be a number.
        assert!(parse(&["campaign", "--stream-out"]).is_err());
        assert!(parse(&["campaign", "--max-cells-in-memory"]).is_err());
        assert!(parse(&["campaign", "--max-cells-in-memory", "many"]).is_err());
    }

    #[test]
    fn fault_flags() {
        let o = parse(&[
            "campaign",
            "--faults",
            "0.05",
            "--fault-seed",
            "11",
            "--max-retries",
            "2",
            "--backoff",
            "25",
        ])
        .unwrap();
        match &o.command {
            Command::Campaign { faults, .. } => {
                assert_eq!(
                    *faults,
                    FaultOpts {
                        rate: 0.05,
                        seed: 11,
                        max_retries: 2,
                        backoff_ms: 25,
                    }
                );
                let config = faults.fault_config();
                assert!(config.is_active());
                assert_eq!(config.seed, 11);
                let retry = faults.retry_policy();
                assert_eq!(retry.max_retries, 2);
                assert_eq!(retry.backoff, SimDuration::from_millis(25));
                assert!(retry.degrade);
            }
            other => panic!("expected campaign, got {other:?}"),
        }
        // The rate must be a probability.
        assert!(parse(&["campaign", "--faults", "1.5"]).is_err());
        assert!(parse(&["campaign", "--faults", "-0.1"]).is_err());
        assert!(parse(&["campaign", "--faults", "NaN"]).is_err());
        assert!(parse(&["campaign", "--faults"]).is_err());
    }

    #[test]
    fn checkpoint_flags() {
        let o = parse(&[
            "campaign",
            "--scenarios",
            "tiny",
            "--checkpoint",
            "ck.bin",
            "--checkpoint-every",
            "3",
            "--stop-after-cells",
            "2",
        ])
        .unwrap();
        match &o.command {
            Command::Campaign {
                checkpoint,
                checkpoint_every,
                resume,
                stop_after_cells,
                ..
            } => {
                assert_eq!(checkpoint.as_deref(), Some("ck.bin"));
                assert_eq!(*checkpoint_every, 3);
                assert_eq!(*resume, None);
                assert_eq!(*stop_after_cells, Some(2));
            }
            other => panic!("expected campaign, got {other:?}"),
        }
        // Resume carries its own grid; only the path travels.
        let o = parse(&["campaign", "--resume", "ck.bin", "--jobs", "2"]).unwrap();
        match &o.command {
            Command::Campaign {
                resume,
                checkpoint,
                jobs,
                ..
            } => {
                assert_eq!(resume.as_deref(), Some("ck.bin"));
                assert_eq!(*checkpoint, None);
                assert_eq!(*jobs, Some(2));
            }
            other => panic!("expected campaign, got {other:?}"),
        }
        // Mutually exclusive / dependent flags.
        assert!(parse(&["campaign", "--checkpoint", "a", "--resume", "b"]).is_err());
        assert!(parse(&["campaign", "--checkpoint", "a", "--quarantine"]).is_err());
        assert!(parse(&["campaign", "--checkpoint", "a", "--trace", "t.ndjson"]).is_err());
        assert!(parse(&["campaign", "--checkpoint", "a", "--stream-out", "/tmp/x"]).is_err());
        assert!(parse(&["campaign", "--stop-after-cells", "2"]).is_err());
        assert!(parse(&["campaign", "--checkpoint", "a", "--stop-after-cells", "0"]).is_err());
        assert!(parse(&["campaign", "--checkpoint", "a", "--checkpoint-every", "0"]).is_err());
        assert!(parse(&["campaign", "--checkpoint"]).is_err());
        assert!(parse(&["campaign", "--resume"]).is_err());
    }

    #[test]
    fn campaign_quarantine_applies_to_grid() {
        let o = parse(&["campaign", "--scenarios", "tiny", "--quarantine"]).unwrap();
        match &o.command {
            Command::Campaign { scenarios, .. } => assert_eq!(
                scenarios[0].host_config().quarantine,
                hh_hv::QuarantinePolicy::QemuPatch
            ),
            other => panic!("expected campaign, got {other:?}"),
        }
    }

    #[test]
    fn bench_diff_flags() {
        let o = parse(&[
            "bench-diff",
            "--baseline",
            "BENCH_dram.json",
            "--current",
            "/tmp/new.json",
            "--tolerance",
            "0.5",
        ])
        .unwrap();
        assert_eq!(
            o.command,
            Command::BenchDiff {
                baseline: "BENCH_dram.json".to_string(),
                current: "/tmp/new.json".to_string(),
                tolerance: 0.5,
            }
        );
        // Tolerance defaults to the library constant.
        let o = parse(&["bench-diff", "--baseline", "a", "--current", "b"]).unwrap();
        match o.command {
            Command::BenchDiff { tolerance, .. } => {
                assert_eq!(tolerance, hh_bench::baseline::DEFAULT_TOLERANCE)
            }
            other => panic!("expected bench-diff, got {other:?}"),
        }
        // Both paths are mandatory; tolerance must be a sane number.
        assert!(parse(&["bench-diff", "--current", "b"]).is_err());
        assert!(parse(&["bench-diff", "--baseline", "a"]).is_err());
        assert!(parse(&[
            "bench-diff",
            "--baseline",
            "a",
            "--current",
            "b",
            "--tolerance",
            "-1"
        ])
        .is_err());
        assert!(parse(&[
            "bench-diff",
            "--baseline",
            "a",
            "--current",
            "b",
            "--tolerance",
            "x"
        ])
        .is_err());
    }

    #[test]
    fn scenarios_serve_and_client_commands() {
        assert_eq!(parse(&["scenarios"]).unwrap().command, Command::Scenarios);
        assert_eq!(
            parse(&["serve", "--addr", "127.0.0.1:0"]).unwrap().command,
            Command::Serve {
                addr: "127.0.0.1:0".to_string(),
                spool: None,
            }
        );
        assert_eq!(
            parse(&["serve", "--spool", "/tmp/spool"]).unwrap().command,
            Command::Serve {
                addr: "127.0.0.1:7799".to_string(),
                spool: Some("/tmp/spool".to_string()),
            }
        );

        let o = parse(&[
            "client",
            "submit",
            "--scenarios",
            "tiny,micro",
            "--seeds",
            "2",
            "--base-seed",
            "9",
            "--attempts",
            "3",
            "--bits",
            "4",
            "--priority",
            "7",
        ])
        .unwrap();
        match &o.command {
            Command::Client {
                addr,
                action: ClientAction::Submit { spec },
            } => {
                assert_eq!(addr, "127.0.0.1:7799", "default address");
                assert_eq!(
                    spec.scenarios,
                    vec!["tiny".to_string(), "micro".to_string()]
                );
                assert_eq!(
                    (spec.seeds, spec.base_seed, spec.attempts, spec.bits),
                    (2, 9, 3, 4)
                );
                assert_eq!(spec.priority, 7);
            }
            other => panic!("expected client submit, got {other:?}"),
        }

        let o = parse(&["client", "status", "--id", "5", "--addr", "localhost:9"]).unwrap();
        assert_eq!(
            o.command,
            Command::Client {
                addr: "localhost:9".to_string(),
                action: ClientAction::Status { id: 5 },
            }
        );
        assert_eq!(
            parse(&["client", "stream", "--id", "2"]).unwrap().command,
            Command::Client {
                addr: "127.0.0.1:7799".to_string(),
                action: ClientAction::Stream { id: 2 },
            }
        );
        assert_eq!(
            parse(&["client", "cancel", "--id", "2"]).unwrap().command,
            Command::Client {
                addr: "127.0.0.1:7799".to_string(),
                action: ClientAction::Cancel { id: 2 },
            }
        );
        assert!(matches!(
            parse(&["client", "shutdown"]).unwrap().command,
            Command::Client {
                action: ClientAction::Shutdown,
                ..
            }
        ));
    }

    #[test]
    fn client_rejects_bad_requests() {
        // Action word required; id-taking actions need --id.
        assert!(parse(&["client"]).is_err());
        assert!(parse(&["client", "teleport"]).is_err());
        assert!(parse(&["client", "status"]).is_err());
        assert!(parse(&["client", "stream"]).is_err());
        // Unknown scenarios fail at parse time, naming the registry.
        let err = parse(&["client", "submit", "--scenarios", "warp9"]).unwrap_err();
        assert!(err.contains("unknown scenario warp9"), "got: {err}");
        assert!(err.contains("tiny"), "error lists registered names: {err}");
        // Quarantine is a local-grid knob, not a job-spec field.
        assert!(parse(&["client", "submit", "--quarantine"]).is_err());
        // Priority must fit a u8.
        assert!(parse(&["client", "submit", "--priority", "300"]).is_err());
    }

    #[test]
    fn scenario_lists_are_trimmed_and_deduped() {
        // Whitespace around entries is insignificant.
        let o = parse(&["campaign", "--scenarios", " tiny , s1 "]).unwrap();
        match &o.command {
            Command::Campaign { scenarios, .. } => assert_eq!(
                scenarios.iter().map(|s| s.name).collect::<Vec<_>>(),
                ["tiny", "S1"]
            ),
            other => panic!("expected campaign, got {other:?}"),
        }
        // Duplicates collapse, keeping first-occurrence order.
        let o = parse(&["campaign", "--scenarios", "s1,tiny,s1,tiny"]).unwrap();
        match &o.command {
            Command::Campaign { scenarios, .. } => assert_eq!(
                scenarios.iter().map(|s| s.name).collect::<Vec<_>>(),
                ["S1", "tiny"]
            ),
            other => panic!("expected campaign, got {other:?}"),
        }
        // Empty entries are an error, not silently-dropped cells.
        for bad in ["tiny,", ",tiny", "tiny,,s1", " , "] {
            let err = parse(&["campaign", "--scenarios", bad]).unwrap_err();
            assert!(err.contains("empty entry"), "for {bad:?} got: {err}");
        }
    }

    #[test]
    fn scenario_lists_expand_variants() {
        // `name@all` crosses one scenario with every attack variant.
        let o = parse(&["campaign", "--scenarios", "tiny@all"]).unwrap();
        match &o.command {
            Command::Campaign { scenarios, .. } => {
                assert_eq!(scenarios.len(), AttackVariant::COUNT);
                assert!(scenarios.iter().all(|s| s.name == "tiny"));
                let variants: Vec<AttackVariant> = scenarios.iter().map(|s| s.variant()).collect();
                assert_eq!(variants, AttackVariant::ALL);
            }
            other => panic!("expected campaign, got {other:?}"),
        }
        // `all` is the full registry × variant matrix, deduped.
        let o = parse(&["campaign", "--scenarios", "all,tiny,s1@xen"]).unwrap();
        match &o.command {
            Command::Campaign { scenarios, .. } => {
                assert_eq!(
                    scenarios.len(),
                    Scenario::registry().len() * AttackVariant::COUNT
                );
            }
            other => panic!("expected campaign, got {other:?}"),
        }
        // Explicit variant suffixes parse; bad ones fail loudly.
        let o = parse(&["campaign", "--scenarios", "tiny@balloon,tiny"]).unwrap();
        match &o.command {
            Command::Campaign { scenarios, .. } => {
                assert_eq!(scenarios.len(), 2, "variants are distinct grid rows");
                assert_eq!(scenarios[0].variant(), AttackVariant::Balloon);
                assert_eq!(scenarios[1].variant(), AttackVariant::VirtioMem);
            }
            other => panic!("expected campaign, got {other:?}"),
        }
        let err = parse(&["campaign", "--scenarios", "tiny@warp"]).unwrap_err();
        assert!(err.contains("unknown attack variant"), "got: {err}");
        let err = parse(&["campaign", "--scenarios", "mars@all"]).unwrap_err();
        assert!(err.contains("unknown scenario"), "got: {err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&["campaign", "--scenarios", "tiny,mars"]).is_err());
        assert!(parse(&["campaign", "--seeds", "0"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["profile", "--scenario"]).is_err());
        assert!(parse(&["profile", "--scenario", "mars"]).is_err());
        assert!(parse(&["profile", "--wat"]).is_err());
        assert!(parse(&["profile", "--seed", "abc"]).is_err());
    }
}

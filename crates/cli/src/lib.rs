//! Library surface of the `hyperhammer-sim` CLI, exposed so the command
//! implementations are unit- and integration-testable.

#![forbid(unsafe_code)]

pub mod commands;
pub mod opts;
pub mod output;

//! `hyperhammer-sim` — command-line driver for the reproduction.
//!
//! ```text
//! hyperhammer-sim <command> [--scenario s1|s2|s3|small|tiny] [--seed N]
//!                 [--json] [command options]
//!
//! commands:
//!   recon               recover the DRAM address map from timing
//!   profile             run memory profiling (--stop-after N)
//!   steer               run Page Steering (--blocks B --spray-gib S)
//!   attack              run attack attempts (--attempts N --bits B)
//!   campaign            sweep a (scenario x seed) grid (--trace PATH
//!                       records a merged NDJSON event stream)
//!   trace               campaign grid with tracing on; prints the
//!                       per-stage time/activation breakdown
//!   scenarios           list the registered scenario presets
//!   serve               run the persistent campaign server
//!                       (--addr HOST:PORT)
//!   client              submit/status/stream/cancel jobs on a running
//!                       campaign server (client <action> --addr A)
//!   analyse             print the §5.3 analytical model
//!   bench-diff          compare bench JSON reports (--baseline PATH
//!                       --current PATH [--tolerance F]); non-zero
//!                       exit on regression
//! ```

use std::process::ExitCode;

use hyperhammer_cli::{commands, opts};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match opts::Options::parse(&args) {
        Ok(opts) => match commands::run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}\n");
            eprintln!("{}", opts::USAGE);
            ExitCode::from(2)
        }
    }
}

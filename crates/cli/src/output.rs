//! Result records for `--json` output.
//!
//! The workspace builds offline with no external crates, so JSON is
//! emitted through the tiny [`Json`] trait instead of a serialization
//! framework. Records are flat (strings, numbers, bools, simple arrays),
//! which keeps the hand-rolled encoder honest.

use std::fmt::Write as _;

/// A type that can render itself as a JSON object.
pub trait Json {
    /// Appends the fields of the record as `"key": value` pairs.
    fn fields(&self, obj: &mut JsonObject);
}

/// Accumulates the fields of one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    entries: Vec<(String, String)>,
}

impl JsonObject {
    /// Adds a string field (escaped).
    pub fn string(&mut self, key: &str, value: &str) {
        self.push(key, escape(value));
    }

    /// Adds an integer-like field.
    pub fn number(&mut self, key: &str, value: impl std::fmt::Display) {
        self.push(key, value.to_string());
    }

    /// Adds a float field (JSON has no NaN/Inf; they render as null).
    pub fn float(&mut self, key: &str, value: f64) {
        if value.is_finite() {
            self.push(key, format!("{value}"));
        } else {
            self.push(key, "null".to_string());
        }
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.push(key, value.to_string());
    }

    /// Adds an optional numeric field; `None` renders as `null`.
    pub fn opt_number(&mut self, key: &str, value: Option<impl std::fmt::Display>) {
        match value {
            Some(v) => self.push(key, v.to_string()),
            None => self.push(key, "null".to_string()),
        }
    }

    /// Adds an optional float field; `None` renders as `null`.
    pub fn opt_float(&mut self, key: &str, value: Option<f64>) {
        match value {
            Some(v) => self.float(key, v),
            None => self.push(key, "null".to_string()),
        }
    }

    /// Adds an array of numbers.
    pub fn number_array(
        &mut self,
        key: &str,
        values: impl IntoIterator<Item = impl std::fmt::Display>,
    ) {
        let inner: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
        self.push(key, format!("[{}]", inner.join(", ")));
    }

    fn push(&mut self, key: &str, rendered: String) {
        self.entries.push((key.to_string(), rendered));
    }

    fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(out, "  {}: {value}{comma}", escape(key));
        }
        out.push('}');
        out
    }

    fn render_line(&self) -> String {
        let body: Vec<String> = self
            .entries
            .iter()
            .map(|(key, value)| format!("{}: {value}", escape(key)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a record as a pretty-printed JSON object.
pub fn to_json(record: &impl Json) -> String {
    let mut obj = JsonObject::default();
    record.fields(&mut obj);
    obj.render()
}

/// Renders a record as a single-line JSON object — the NDJSON form used
/// by `--trace` event streams, where one event is one line.
pub fn to_json_line(record: &impl Json) -> String {
    let mut obj = JsonObject::default();
    record.fields(&mut obj);
    obj.render_line()
}

/// `recon` result.
#[derive(Debug)]
pub struct ReconOut {
    /// Scenario name.
    pub scenario: String,
    /// Recovered XOR masks, one per bank bit.
    pub bank_masks: Vec<u64>,
    /// Bank count.
    pub banks: u32,
    /// Whether the recovered function matches the installed one.
    pub equivalent: bool,
    /// Timing measurements consumed.
    pub measurements: u64,
    /// Proven row bits.
    pub row_bits: Vec<u32>,
}

impl Json for ReconOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("scenario", &self.scenario);
        obj.number_array("bank_masks", self.bank_masks.iter());
        obj.number("banks", self.banks);
        obj.bool("equivalent", self.equivalent);
        obj.number("measurements", self.measurements);
        obj.number_array("row_bits", self.row_bits.iter());
    }
}

/// `profile` result.
#[derive(Debug)]
pub struct ProfileOut {
    /// Scenario name.
    pub scenario: String,
    /// Simulated profiling hours.
    pub sim_hours: f64,
    /// Total flips found.
    pub total: usize,
    /// 1→0 flips.
    pub one_to_zero: usize,
    /// 0→1 flips.
    pub zero_to_one: usize,
    /// Stable flips.
    pub stable: usize,
    /// Exploitable flips.
    pub exploitable: usize,
    /// Hammer-plan cache hits during the campaign.
    pub plan_hits: u64,
    /// Hammer-plan compiles during the campaign.
    pub plan_misses: u64,
}

impl Json for ProfileOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("scenario", &self.scenario);
        obj.float("sim_hours", self.sim_hours);
        obj.number("total", self.total);
        obj.number("one_to_zero", self.one_to_zero);
        obj.number("zero_to_one", self.zero_to_one);
        obj.number("stable", self.stable);
        obj.number("exploitable", self.exploitable);
        obj.number("plan_hits", self.plan_hits);
        obj.number("plan_misses", self.plan_misses);
    }
}

/// `steer` result.
#[derive(Debug)]
pub struct SteerOut {
    /// Scenario name.
    pub scenario: String,
    /// Noise pages before/after exhaustion.
    pub noise_before: u64,
    /// Noise pages after exhaustion.
    pub noise_after: u64,
    /// Released pages (N).
    pub released_pages: u64,
    /// EPT pages (E).
    pub ept_pages: u64,
    /// Reused pages (R).
    pub reused_pages: u64,
    /// R/N.
    pub r_n: f64,
    /// R/E.
    pub r_e: f64,
}

impl Json for SteerOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("scenario", &self.scenario);
        obj.number("noise_before", self.noise_before);
        obj.number("noise_after", self.noise_after);
        obj.number("released_pages", self.released_pages);
        obj.number("ept_pages", self.ept_pages);
        obj.number("reused_pages", self.reused_pages);
        obj.float("r_n", self.r_n);
        obj.float("r_e", self.r_e);
    }
}

/// `attack` result.
#[derive(Debug)]
pub struct AttackOut {
    /// Scenario name.
    pub scenario: String,
    /// Attempts executed.
    pub attempts: usize,
    /// 1-based index of the first success, if any.
    pub first_success: Option<usize>,
    /// Mean simulated minutes per attempt.
    pub avg_attempt_mins: f64,
    /// Simulated hours to first success.
    pub hours_to_success: Option<f64>,
    /// Value read from host memory by the escape, if successful.
    pub escape_read: Option<u64>,
}

impl Json for AttackOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("scenario", &self.scenario);
        obj.number("attempts", self.attempts);
        obj.opt_number("first_success", self.first_success);
        obj.float("avg_attempt_mins", self.avg_attempt_mins);
        obj.opt_float("hours_to_success", self.hours_to_success);
        obj.opt_number("escape_read", self.escape_read);
    }
}

/// `campaign` result: one line per (scenario, seed) grid cell.
#[derive(Debug)]
pub struct CampaignCellOut {
    /// Scenario name.
    pub scenario: String,
    /// Experiment seed for this cell.
    pub seed: u64,
    /// Attempts executed.
    pub attempts: usize,
    /// 1-based index of the first success, if any.
    pub first_success: Option<usize>,
    /// Mean simulated minutes per attempt.
    pub avg_attempt_mins: f64,
    /// Simulated hours to first success.
    pub hours_to_success: Option<f64>,
}

impl Json for CampaignCellOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("scenario", &self.scenario);
        obj.number("seed", self.seed);
        obj.number("attempts", self.attempts);
        obj.opt_number("first_success", self.first_success);
        obj.float("avg_attempt_mins", self.avg_attempt_mins);
        obj.opt_float("hours_to_success", self.hours_to_success);
    }
}

/// One row of the per-variant comparison a multi-variant campaign grid
/// emits after its cell records (`--json` NDJSON form). Holds only
/// quantities both the in-memory and streamed paths can compute, so the
/// two paths stay byte-identical.
#[derive(Debug)]
pub struct VariantSummaryOut {
    /// Attack-variant label (`virtio-mem`, `balloon`, …).
    pub variant: String,
    /// Grid cells that ran this variant.
    pub cells: u64,
    /// Cells whose campaign reached a success.
    pub succeeded: u64,
    /// Attempts across the variant's cells.
    pub attempts: u64,
    /// succeeded / cells.
    pub success_rate: f64,
}

impl Json for VariantSummaryOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("variant", &self.variant);
        obj.number("cells", self.cells);
        obj.number("succeeded", self.succeeded);
        obj.number("attempts", self.attempts);
        obj.float("success_rate", self.success_rate);
    }
}

/// One attack-variant row of the `scenarios` listing (`--json` NDJSON
/// form): the `@` suffix every scenario name accepts.
#[derive(Debug)]
pub struct AttackVariantOut {
    /// Variant label (the `@` suffix).
    pub variant: String,
    /// One-line description.
    pub description: String,
}

impl Json for AttackVariantOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("variant", &self.variant);
        obj.string("description", &self.description);
    }
}

/// One `scenarios` listing row (`--json` NDJSON form).
#[derive(Debug)]
pub struct ScenarioOut {
    /// Lookup name accepted by `--scenario(s)` and job specs.
    pub name: String,
    /// Label the built scenario carries.
    pub label: String,
    /// One-line description.
    pub description: String,
}

impl Json for ScenarioOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("name", &self.name);
        obj.string("label", &self.label);
        obj.string("description", &self.description);
    }
}

/// One `--trace` NDJSON line: a time-stamped event plus the campaign
/// cell it came from. Field order is fixed (`cell`, `t_ns`, `event`,
/// payload…) so merged streams are byte-stable.
#[derive(Debug)]
pub struct TraceEventOut {
    /// Campaign-grid cell index (0 outside grids).
    pub cell: usize,
    /// The time-stamped observation.
    pub event: hh_trace::TimedEvent,
}

impl Json for TraceEventOut {
    fn fields(&self, obj: &mut JsonObject) {
        use hh_trace::Event;
        obj.number("cell", self.cell);
        obj.number("t_ns", self.event.nanos);
        obj.string("event", self.event.event.kind());
        match self.event.event {
            Event::Hammer {
                activations,
                trr_refreshes,
                flips,
            } => {
                obj.number("activations", activations);
                obj.number("trr_refreshes", trr_refreshes);
                obj.number("flips", flips);
            }
            Event::BitFlip {
                hpa,
                bit,
                one_to_zero,
            } => {
                obj.number("hpa", hpa);
                obj.number("bit", bit);
                obj.bool("one_to_zero", one_to_zero);
            }
            Event::BuddyAlloc { order }
            | Event::BuddyFree { order }
            | Event::BuddySplit { order }
            | Event::BuddyMerge { order }
            | Event::BuddyExhausted { order } => obj.number("order", order),
            Event::EptSplit { gpa } | Event::VirtioMemUnplug { gpa } => obj.number("gpa", gpa),
            Event::EptSpray { hugepages, splits } => {
                obj.number("hugepages", hugepages);
                obj.number("splits", splits);
            }
            Event::ViommuMap { iova } => obj.number("iova", iova),
            Event::VmReboot => {}
            Event::FaultInjected { stage, cause } => {
                obj.string("stage", stage);
                obj.string("cause", cause);
            }
            Event::Retry { stage, attempt } => {
                obj.string("stage", stage);
                obj.number("attempt", attempt);
            }
            Event::SprayDegraded { budget } => obj.number("budget", budget),
            Event::StageStart { stage } => obj.string("stage", stage.name()),
            Event::StageEnd { stage, nanos } => {
                obj.string("stage", stage.name());
                obj.number("nanos", nanos);
            }
        }
    }
}

/// One row of the `trace` summary (`--json` NDJSON form).
#[derive(Debug)]
pub struct TraceStageOut {
    /// Stage name.
    pub stage: String,
    /// Times the stage was entered.
    pub entries: u64,
    /// Simulated seconds spent in the stage.
    pub sim_secs: f64,
    /// DRAM activations issued while the stage was current.
    pub activations: u64,
}

impl Json for TraceStageOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("stage", &self.stage);
        obj.number("entries", self.entries);
        obj.float("sim_secs", self.sim_secs);
        obj.number("activations", self.activations);
    }
}

/// The `trace` summary's aggregate counters (`--json` form): one field
/// per [`hh_trace::Counter`], in declaration order.
#[derive(Debug)]
pub struct TraceCountersOut {
    /// `(counter name, merged total)` pairs.
    pub counters: Vec<(&'static str, u64)>,
}

impl Json for TraceCountersOut {
    fn fields(&self, obj: &mut JsonObject) {
        for (name, value) in &self.counters {
            obj.number(name, value);
        }
    }
}

/// One row of a `bench-diff` comparison (`--json` NDJSON form).
#[derive(Debug)]
pub struct BenchDiffOut {
    /// Bench name (`group/bench`).
    pub name: String,
    /// Baseline ns/iter, if the bench exists in the baseline.
    pub baseline_ns: Option<f64>,
    /// Current ns/iter, if the bench ran.
    pub current_ns: Option<f64>,
    /// current / baseline.
    pub ratio: Option<f64>,
    /// current / baseline peak RSS, when both runs measured it.
    pub rss_ratio: Option<f64>,
    /// Verdict: `ok`, `regression`, `improved`, `missing` or `new`.
    pub status: &'static str,
}

impl Json for BenchDiffOut {
    fn fields(&self, obj: &mut JsonObject) {
        obj.string("name", &self.name);
        obj.opt_float("baseline_ns", self.baseline_ns);
        obj.opt_float("current_ns", self.current_ns);
        obj.opt_float("ratio", self.ratio);
        obj.opt_float("rss_ratio", self.rss_ratio);
        obj.string("status", self.status);
    }
}

/// Prints a record as JSON or via the supplied human formatter.
pub fn emit<T: Json>(json: bool, record: &T, human: impl FnOnce()) {
    if json {
        println!("{}", to_json(record));
    } else {
        human();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_renders_options() {
        let out = AttackOut {
            scenario: "ti\"ny\n".to_string(),
            attempts: 3,
            first_success: None,
            avg_attempt_mins: 1.5,
            hours_to_success: None,
            escape_read: Some(7),
        };
        let s = to_json(&out);
        assert!(s.contains(r#""scenario": "ti\"ny\n","#), "{s}");
        assert!(s.contains(r#""first_success": null,"#), "{s}");
        assert!(s.contains(r#""escape_read": 7"#), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn trace_events_render_as_single_lines() {
        use hh_trace::{Event, Stage, TimedEvent};
        let line = to_json_line(&TraceEventOut {
            cell: 2,
            event: TimedEvent {
                nanos: 1_500,
                event: Event::BitFlip {
                    hpa: 0x1000,
                    bit: 3,
                    one_to_zero: true,
                },
            },
        });
        assert_eq!(
            line,
            r#"{"cell": 2, "t_ns": 1500, "event": "bit_flip", "hpa": 4096, "bit": 3, "one_to_zero": true}"#
        );
        assert!(!line.contains('\n'));
        let stage = to_json_line(&TraceEventOut {
            cell: 0,
            event: TimedEvent {
                nanos: 0,
                event: Event::StageStart {
                    stage: Stage::Profile,
                },
            },
        });
        assert!(
            stage.ends_with(r#""event": "stage_start", "stage": "profile"}"#),
            "{stage}"
        );
    }

    #[test]
    fn arrays_render_comma_separated() {
        let out = ReconOut {
            scenario: "s1".into(),
            bank_masks: vec![1, 2, 3],
            banks: 8,
            equivalent: true,
            measurements: 42,
            row_bits: vec![],
        };
        let s = to_json(&out);
        assert!(s.contains("\"bank_masks\": [1, 2, 3],"), "{s}");
        assert!(s.contains("\"row_bits\": []"), "{s}");
        assert!(s.contains("\"equivalent\": true,"), "{s}");
    }
}

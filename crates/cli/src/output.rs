//! Serializable result records for `--json` output.

use serde::Serialize;

/// `recon` result.
#[derive(Debug, Serialize)]
pub struct ReconOut {
    /// Scenario name.
    pub scenario: String,
    /// Recovered XOR masks, one per bank bit.
    pub bank_masks: Vec<u64>,
    /// Bank count.
    pub banks: u32,
    /// Whether the recovered function matches the installed one.
    pub equivalent: bool,
    /// Timing measurements consumed.
    pub measurements: u64,
    /// Proven row bits.
    pub row_bits: Vec<u32>,
}

/// `profile` result.
#[derive(Debug, Serialize)]
pub struct ProfileOut {
    /// Scenario name.
    pub scenario: String,
    /// Simulated profiling hours.
    pub sim_hours: f64,
    /// Total flips found.
    pub total: usize,
    /// 1→0 flips.
    pub one_to_zero: usize,
    /// 0→1 flips.
    pub zero_to_one: usize,
    /// Stable flips.
    pub stable: usize,
    /// Exploitable flips.
    pub exploitable: usize,
}

/// `steer` result.
#[derive(Debug, Serialize)]
pub struct SteerOut {
    /// Scenario name.
    pub scenario: String,
    /// Noise pages before/after exhaustion.
    pub noise_before: u64,
    /// Noise pages after exhaustion.
    pub noise_after: u64,
    /// Released pages (N).
    pub released_pages: u64,
    /// EPT pages (E).
    pub ept_pages: u64,
    /// Reused pages (R).
    pub reused_pages: u64,
    /// R/N.
    pub r_n: f64,
    /// R/E.
    pub r_e: f64,
}

/// `attack` result.
#[derive(Debug, Serialize)]
pub struct AttackOut {
    /// Scenario name.
    pub scenario: String,
    /// Attempts executed.
    pub attempts: usize,
    /// 1-based index of the first success, if any.
    pub first_success: Option<usize>,
    /// Mean simulated minutes per attempt.
    pub avg_attempt_mins: f64,
    /// Simulated hours to first success.
    pub hours_to_success: Option<f64>,
    /// Value read from host memory by the escape, if successful.
    pub escape_read: Option<u64>,
}

/// Prints a record as JSON or via the supplied human formatter.
pub fn emit<T: Serialize>(json: bool, record: &T, human: impl FnOnce()) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(record).expect("records serialize")
        );
    } else {
        human();
    }
}

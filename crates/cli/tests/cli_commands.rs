//! Integration tests driving the CLI command implementations directly.

use hyperhammer_cli::commands;
use hyperhammer_cli::opts::Options;

fn run(words: &[&str]) -> Result<(), String> {
    let opts = Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        .map_err(|e| e.to_string())?;
    commands::run(&opts).map_err(|e| e.to_string())
}

#[test]
fn recon_runs_on_every_preset() {
    for scenario in ["s1", "s2", "s3", "small", "tiny"] {
        run(&["recon", "--scenario", scenario]).unwrap_or_else(|e| {
            panic!("recon failed on {scenario}: {e}");
        });
    }
}

#[test]
fn profile_with_early_stop() {
    run(&["profile", "--scenario", "tiny", "--stop-after", "1"]).unwrap();
    run(&["profile", "--scenario", "tiny", "--json"]).unwrap();
}

#[test]
fn steer_json_and_text() {
    run(&[
        "steer",
        "--scenario",
        "tiny",
        "--blocks",
        "3",
        "--spray-gib",
        "1",
    ])
    .unwrap();
    run(&[
        "steer",
        "--scenario",
        "tiny",
        "--blocks",
        "2",
        "--spray-gib",
        "1",
        "--json",
    ])
    .unwrap();
}

#[test]
fn steer_under_quarantine_fails_gracefully() {
    let err = run(&["steer", "--scenario", "tiny", "--quarantine"]).unwrap_err();
    assert!(err.contains("quarantine"), "got: {err}");
}

#[test]
fn attack_bounded_attempts() {
    run(&[
        "attack",
        "--scenario",
        "tiny",
        "--attempts",
        "2",
        "--bits",
        "2",
    ])
    .unwrap();
}

#[test]
fn analyse_prints() {
    run(&["analyse"]).unwrap();
}

#[test]
fn seed_changes_results_deterministically() {
    // Two runs with the same seed must both succeed (determinism is
    // asserted in depth by tests/determinism.rs; here we check the CLI
    // threads the seed through).
    run(&[
        "profile",
        "--scenario",
        "tiny",
        "--seed",
        "7",
        "--stop-after",
        "1",
    ])
    .unwrap();
    run(&[
        "profile",
        "--scenario",
        "tiny",
        "--seed",
        "7",
        "--stop-after",
        "1",
    ])
    .unwrap();
}

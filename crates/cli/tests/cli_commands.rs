//! Integration tests driving the CLI command implementations directly.

use hyperhammer_cli::commands;
use hyperhammer_cli::opts::Options;

fn run(words: &[&str]) -> Result<(), String> {
    let opts = Options::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        .map_err(|e| e.to_string())?;
    commands::run(&opts).map_err(|e| e.to_string())
}

#[test]
fn recon_runs_on_every_preset() {
    for scenario in ["s1", "s2", "s3", "small", "tiny"] {
        run(&["recon", "--scenario", scenario]).unwrap_or_else(|e| {
            panic!("recon failed on {scenario}: {e}");
        });
    }
}

#[test]
fn profile_with_early_stop() {
    run(&["profile", "--scenario", "tiny", "--stop-after", "1"]).unwrap();
    run(&["profile", "--scenario", "tiny", "--json"]).unwrap();
}

#[test]
fn steer_json_and_text() {
    run(&[
        "steer",
        "--scenario",
        "tiny",
        "--blocks",
        "3",
        "--spray-gib",
        "1",
    ])
    .unwrap();
    run(&[
        "steer",
        "--scenario",
        "tiny",
        "--blocks",
        "2",
        "--spray-gib",
        "1",
        "--json",
    ])
    .unwrap();
}

#[test]
fn steer_under_quarantine_fails_gracefully() {
    let err = run(&["steer", "--scenario", "tiny", "--quarantine"]).unwrap_err();
    assert!(err.contains("quarantine"), "got: {err}");
}

#[test]
fn attack_bounded_attempts() {
    run(&[
        "attack",
        "--scenario",
        "tiny",
        "--attempts",
        "2",
        "--bits",
        "2",
    ])
    .unwrap();
}

#[test]
fn analyse_prints() {
    run(&["analyse"]).unwrap();
}

/// Reads a checkpoint file into (cell index → NDJSON record) pairs,
/// skipping the magic and job-spec header.
fn checkpoint_records(path: &std::path::Path) -> Vec<(usize, String)> {
    let text = std::fs::read_to_string(path).expect("checkpoint readable");
    let mut records: Vec<(usize, String)> = text
        .lines()
        .skip(2)
        .filter(|l| !l.is_empty())
        .map(|l| {
            let (index, json) = l.split_once('\t').expect("index\\tjson record");
            (index.parse().expect("numeric index"), json.to_string())
        })
        .collect();
    records.sort();
    records
}

/// Variant cells survive checkpoint/resume: an interrupted multi-variant
/// sweep resumed to completion holds exactly the records of an
/// uninterrupted run — including the `@variant` scenario names the grid
/// is rebuilt from on resume.
#[test]
fn variant_campaign_survives_checkpoint_resume() {
    let dir = std::env::temp_dir().join(format!("hh-cli-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let full = dir.join("full.ckpt");
    let split = dir.join("split.ckpt");
    let grid_args = |rest: &[&str]| {
        let mut words = vec![
            "campaign",
            "--scenarios",
            "micro@all",
            "--seeds",
            "1",
            "--attempts",
            "2",
            "--bits",
            "2",
            "--jobs",
            "2",
        ];
        words.extend_from_slice(rest);
        words.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };

    let full_path = full.to_str().expect("utf-8 temp path");
    let split_path = split.to_str().expect("utf-8 temp path");
    run(&grid_args(&["--checkpoint", full_path])
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>())
    .expect("uninterrupted checkpointed run");
    run(
        &grid_args(&["--checkpoint", split_path, "--stop-after-cells", "2"])
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    )
    .expect("interrupted run stops cleanly");
    assert!(
        checkpoint_records(&split).len() < checkpoint_records(&full).len(),
        "the interrupted run must have left cells unfinished"
    );
    run(&["campaign", "--resume", split_path]).expect("resume finishes the sweep");

    let reference = checkpoint_records(&full);
    assert_eq!(
        reference.len(),
        5,
        "micro@all is one cell per attack variant"
    );
    assert_eq!(
        checkpoint_records(&split),
        reference,
        "resumed records must equal the uninterrupted run's"
    );
    for qualified in [
        "micro@balloon",
        "micro@xen",
        "micro@pthammer",
        "micro@gbhammer",
    ] {
        assert!(
            reference
                .iter()
                .any(|(_, json)| json.contains(&format!("\"scenario\": \"{qualified}\""))),
            "checkpoint must carry the {qualified} cell"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_changes_results_deterministically() {
    // Two runs with the same seed must both succeed (determinism is
    // asserted in depth by tests/determinism.rs; here we check the CLI
    // threads the seed through).
    run(&[
        "profile",
        "--scenario",
        "tiny",
        "--seed",
        "7",
        "--stop-after",
        "1",
    ])
    .unwrap();
    run(&[
        "profile",
        "--scenario",
        "tiny",
        "--seed",
        "7",
        "--stop-after",
        "1",
    ])
    .unwrap();
}

//! A KVM-like hypervisor model for the HyperHammer reproduction.
//!
//! This crate implements every hypervisor mechanism the paper's attack
//! exploits, faithfully enough that the attack *works through the same
//! causal chain* as on real hardware:
//!
//! * [`ept`] — 4-level extended page tables with the Intel EPTE bit
//!   layout. **EPT pages are stored inside the simulated DRAM**, so a
//!   Rowhammer flip in an EPT page genuinely redirects subsequent guest
//!   translations.
//! * [`host`] — the host machine: DRAM + buddy allocator + simulated
//!   clock + boot-time allocation noise.
//! * [`vm`] — guest VMs: THP-backed memory pinned `MIGRATE_UNMOVABLE`
//!   (VFIO), guest physical address space, the iTLB-Multihit
//!   countermeasure (NX hugepages split into 512 × 4 KiB on execution,
//!   allocating a fresh EPT page — §4.2.3), and the debug hypercall the
//!   paper uses in §5.3.2.
//! * [`virtio_mem`] — the virtio-mem device: 2 MiB sub-blocks, resize
//!   requests, the *unenforced* guest-initiated unplug path the attack
//!   abuses, and the paper's proposed QEMU quarantine countermeasure
//!   (§6).
//! * [`viommu`] — the virtual IOMMU: IOVA mappings whose IOPT pages are
//!   order-0 `MIGRATE_UNMOVABLE` allocations, with the 65 535
//!   mappings-per-group limit (§4.2.1).
//! * [`balloon`] — virtio-balloon, the §6 variant that releases memory
//!   per 4 KiB page.
//! * [`guest_mm`] — the guest kernel's memory manager: an `mmap`-style
//!   allocator with guest THP, composing the 21-bit address leak through
//!   both translation layers.
//! * [`xen`] — a minimal Xen-style hypervisor (proactive
//!   `XENMEM_decrease_reservation`, undifferentiated domheap) backing the
//!   §6 claim that Page Steering is even easier there.
//!
//! # Example
//!
//! ```
//! use hh_hv::{Host, HostConfig, VmConfig};
//! use hh_sim::Gpa;
//!
//! let mut host = Host::new(HostConfig::small_test());
//! let mut vm = host.create_vm(VmConfig::small_test())?;
//!
//! // Guest memory is usable through the EPT.
//! vm.write_gpa(&mut host, Gpa::new(0x1000), &[1, 2, 3])?;
//! assert_eq!(vm.read_gpa(&host, Gpa::new(0x1000), 3)?, vec![1, 2, 3]);
//!
//! // Executing on an NX hugepage triggers the iTLB-Multihit split,
//! // allocating a new EPT page.
//! let ept_pages_before = vm.ept_table_pages(&host).len();
//! vm.exec_gpa(&mut host, Gpa::new(0x1000))?;
//! assert_eq!(vm.ept_table_pages(&host).len(), ept_pages_before + 1);
//! # Ok::<(), hh_hv::HvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod balloon;
pub mod ept;
mod error;
pub mod fault;
pub mod guest_mm;
pub mod host;
pub mod viommu;
pub mod virtio_mem;
pub mod vm;
pub mod xen;

pub use error::{FaultStage, HvError};
pub use fault::{FaultConfig, FaultPlan};
pub use guest_mm::{GuestMm, GuestThp};
pub use host::{Host, HostConfig, HostTemplate, NoiseProfile};
pub use viommu::IommuGroup;
pub use virtio_mem::QuarantinePolicy;
pub use vm::{Vm, VmConfig};

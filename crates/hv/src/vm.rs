//! The guest VM: address space, THP backing, the iTLB-Multihit
//! countermeasure, and attacker-observable memory operations.
//!
//! # Observational-equivalence scans
//!
//! A real attacker detects Rowhammer corruption by linearly reading
//! gigabytes of its own memory. Simulating those reads byte-by-byte would
//! dominate runtime without changing any observable, so the scan methods
//! ([`Vm::scan_for_flips`], [`Vm::scan_magic`]) are implemented against
//! the DRAM flip journal while being **charged the full linear-scan
//! cost** on the simulated clock. The equivalence argument: guest-visible
//! bytes change only through (a) the guest's own writes, (b) DRAM bit
//! flips (all journaled), or (c) translations redirected by (a)+(b)
//! landing inside EPT pages — and the candidate sets derived from the
//! journal and the EPT-write log cover exactly (b) and (c). A linear scan
//! would find the same set of changed pages, five orders of magnitude
//! more slowly.

use std::collections::{BTreeMap, HashMap};

use hh_buddy::MigrateType;
use hh_dram::FlipDirection;
use hh_sim::addr::{Gpa, Hpa, Pfn, HUGE_PAGE_SIZE, PAGE_SIZE};
use hh_sim::ByteSize;

use crate::balloon::VirtioBalloon;
use crate::ept::{Ept, EptMode, MappingLevel, Translation};
use crate::host::Host;
use crate::viommu::IommuGroup;
use crate::virtio_mem::{VirtioMemDevice, SUB_BLOCK_SIZE};
use crate::HvError;

/// VM construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmConfig {
    /// Boot (always-plugged) memory.
    pub boot_mem: ByteSize,
    /// virtio-mem region size (hot-(un)pluggable in 2 MiB sub-blocks).
    pub virtio_mem: ByteSize,
    /// vCPU count (cost-model flavour only; the simulation is
    /// single-threaded).
    pub vcpus: u32,
    /// Assigned PCI devices, one IOMMU group each (§3 assumes ≥ 1).
    pub iommu_groups: usize,
    /// Host backs guest memory with transparent hugepages.
    pub thp: bool,
    /// The iTLB-Multihit countermeasure: hugepages mapped NX, split to
    /// 4 KiB on first execution (§4.2.3).
    pub multihit_mitigation: bool,
    /// EPT paging mode (§2.2; the paper focuses on 4-level).
    pub ept_mode: EptMode,
}

impl VmConfig {
    /// A tiny VM for unit tests: 4 MiB boot + 32 MiB virtio-mem.
    pub fn small_test() -> Self {
        Self {
            boot_mem: ByteSize::mib(4),
            virtio_mem: ByteSize::mib(32),
            vcpus: 1,
            iommu_groups: 1,
            thp: true,
            multihit_mitigation: true,
            ept_mode: EptMode::FourLevel,
        }
    }

    /// The paper's attacker HVM (§5): 4 vCPUs, 13 GiB total memory
    /// (1 GiB boot + 12 GiB virtio-mem), one NIC.
    pub fn paper_attacker() -> Self {
        Self {
            boot_mem: ByteSize::gib(1),
            virtio_mem: ByteSize::gib(12),
            vcpus: 4,
            iommu_groups: 1,
            thp: true,
            multihit_mitigation: true,
            ept_mode: EptMode::FourLevel,
        }
    }

    /// Total configured memory.
    pub fn total_mem(&self) -> ByteSize {
        self.boot_mem + self.virtio_mem
    }
}

/// Backing of one 2 MiB guest-physical chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Backing {
    /// One order-9 block (THP).
    Huge(Pfn),
    /// 512 independent frames (THP failure or post-balloon split);
    /// `None` marks pages surrendered to the balloon.
    Pages(Vec<Option<Pfn>>),
}

/// A flip observed by scanning guest memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestFlip {
    /// Byte address of the corrupted cell in guest-physical space.
    pub gpa: Gpa,
    /// Bit index within the byte.
    pub bit: u8,
    /// Observed flip direction.
    pub direction: FlipDirection,
}

impl GuestFlip {
    /// Bit position within the containing aligned 64-bit word — what
    /// decides exploitability against an EPTE PFN field (§4.1).
    pub fn bit_in_word(&self) -> u32 {
        (self.gpa.raw() % 8) as u32 * 8 + u32::from(self.bit)
    }
}

/// A guest virtual machine.
#[derive(Debug)]
pub struct Vm {
    id: u32,
    config: VmConfig,
    ept: Ept,
    /// 2 MiB GPA chunk index → backing.
    backing: BTreeMap<u64, Backing>,
    /// Reverse map: HPA 2 MiB chunk index → GPA chunk index, for
    /// huge-backed chunks (flip attribution).
    rev_huge: HashMap<u64, u64>,
    /// Reverse map for individually backed pages: HPA frame → GPA frame.
    rev_pages: HashMap<u64, u64>,
    /// Leaf PT pages created for this VM → base GPA of the 2 MiB window
    /// they map.
    pt_windows: HashMap<u64, Gpa>,
    /// PT pages whose contents the *guest* may have modified through a
    /// corrupted mapping (candidates for mapping-change scans).
    dirty_pt_pages: Vec<u64>,
    virtio_mem: VirtioMemDevice,
    iommu_groups: Vec<IommuGroup>,
    balloon: VirtioBalloon,
    journal_start: usize,
}

impl Host {
    /// Creates and fully provisions a VM.
    ///
    /// Because the VM has an assigned (VFIO) device, the hypervisor
    /// pre-allocates and pins the *entire* address space at creation
    /// (§2.6, §4.2.3): every 2 MiB chunk gets an order-9 THP block,
    /// re-typed `MIGRATE_UNMOVABLE`, and a 2 MiB EPT mapping that is
    /// **non-executable** when the iTLB-Multihit countermeasure is on.
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfHostMemory`] if the host cannot back the VM.
    pub fn create_vm(&mut self, config: VmConfig) -> Result<Vm, HvError> {
        self.charge_vm_reboot();
        let ept = Ept::new_with_mode(self, config.ept_mode)?;
        let mut vm = Vm {
            id: self.next_vm_id(),
            ept,
            backing: BTreeMap::new(),
            rev_huge: HashMap::new(),
            rev_pages: HashMap::new(),
            pt_windows: HashMap::new(),
            dirty_pt_pages: Vec::new(),
            virtio_mem: VirtioMemDevice::new(
                Gpa::new(config.boot_mem.bytes()),
                config.virtio_mem.bytes(),
            ),
            iommu_groups: (0..config.iommu_groups)
                .map(|_| IommuGroup::new())
                .collect(),
            balloon: VirtioBalloon::new(),
            config,
            journal_start: 0,
        };
        let total = vm.config.total_mem().bytes();
        let mut gpa = 0u64;
        while gpa < total {
            if let Err(e) = vm.provision_chunk(self, Gpa::new(gpa)) {
                // Roll the partial VM back so the host stays balanced.
                vm.destroy(self);
                return Err(e);
            }
            gpa += HUGE_PAGE_SIZE;
        }
        vm.journal_start = self.dram().flip_journal().len();
        Ok(vm)
    }
}

impl Vm {
    /// VM identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The construction parameters.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// The virtio-mem device state.
    pub fn virtio_mem(&self) -> &VirtioMemDevice {
        &self.virtio_mem
    }

    /// Assigned IOMMU groups.
    pub fn iommu_group_count(&self) -> usize {
        self.iommu_groups.len()
    }

    /// Backs and maps one 2 MiB chunk.
    fn provision_chunk(&mut self, host: &mut Host, base: Gpa) -> Result<(), HvError> {
        debug_assert!(base.is_aligned(HUGE_PAGE_SIZE));
        let chunk = base.raw() / HUGE_PAGE_SIZE;
        let executable = !self.config.multihit_mitigation;
        if self.config.thp {
            if let Ok(block) = host.buddy_mut().alloc(9, MigrateType::Movable) {
                // VFIO pins the guest's pages (§2.6).
                host.buddy_mut()
                    .set_migrate_type(block, 9, MigrateType::Unmovable);
                if let Err(e) = self.ept.map_huge(host, base, block.base_hpa(), executable) {
                    // The block is not in `backing` yet, so the caller's
                    // `destroy` rollback cannot reach it: free it here.
                    host.buddy_mut().free(block, 9);
                    return Err(e);
                }
                self.backing.insert(chunk, Backing::Huge(block));
                self.rev_huge.insert(block.index() / 512, chunk);
                return Ok(());
            }
        }
        // THP failure (or THP disabled): 512 individual frames. On
        // mid-loop failure the partial frames must be rolled back, or a
        // failed VM creation would strand them.
        let mut frames = Vec::with_capacity(512);
        let mut fallible = || -> Result<(), HvError> {
            for i in 0..512u64 {
                let frame = host.buddy_mut().alloc_page(MigrateType::Movable)?;
                host.buddy_mut()
                    .set_migrate_type(frame, 0, MigrateType::Unmovable);
                self.ept
                    .map_4k(host, base.add(i * PAGE_SIZE), frame.base_hpa(), true)?;
                self.rev_pages.insert(frame.index(), base.pfn().index() + i);
                frames.push(Some(frame));
            }
            Ok(())
        };
        if let Err(e) = fallible() {
            for frame in frames.into_iter().flatten() {
                self.rev_pages.remove(&frame.index());
                // The EPT mapping (if created) is torn down with the EPT
                // hierarchy by the caller's rollback.
                host.buddy_mut().free_page(frame);
            }
            return Err(e);
        }
        if let Some(pt) = self.ept_pt_page(host, base) {
            self.pt_windows.insert(pt.index(), base);
        }
        self.backing.insert(chunk, Backing::Pages(frames));
        Ok(())
    }

    fn ept_pt_page(&self, host: &Host, gpa: Gpa) -> Option<Pfn> {
        // Walk to the PD entry; a non-large present entry names the PT.
        let t = self.ept.translate(host, gpa).ok()?;
        match t.level {
            MappingLevel::Page4K => Some(t.entry_hpa.pfn()),
            MappingLevel::Huge2M => None,
        }
    }

    /// The *intended* host frame of a guest page, from the hypervisor's
    /// own bookkeeping (unaffected by corruption).
    fn expected_hpa(&self, gpa: Gpa) -> Option<Hpa> {
        let chunk = gpa.raw() / HUGE_PAGE_SIZE;
        match self.backing.get(&chunk)? {
            Backing::Huge(block) => Some(block.base_hpa().add(gpa.huge_page_offset())),
            Backing::Pages(frames) => {
                let idx = (gpa.huge_page_offset() / PAGE_SIZE) as usize;
                frames[idx].map(|f| f.base_hpa().add(gpa.page_offset()))
            }
        }
    }

    /// Translates through the live EPT (honest walk over DRAM contents).
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if the walk fails.
    pub fn translate_gpa(&self, host: &Host, gpa: Gpa) -> Result<Translation, HvError> {
        self.ept.translate(host, gpa)
    }

    /// The paper's §5.3.2 debug hypercall: GPA → HPA from hypervisor
    /// bookkeeping, used to re-locate profiled vulnerable frames after a
    /// VM respawn without re-profiling.
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfGuestRange`] for unbacked addresses.
    pub fn hypercall_gpa_to_hpa(&self, gpa: Gpa) -> Result<Hpa, HvError> {
        self.expected_hpa(gpa).ok_or(HvError::OutOfGuestRange(gpa))
    }

    /// Reads guest memory through the EPT.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if any page in the range is unmapped or the
    /// (possibly corrupted) translation leaves physical memory.
    pub fn read_gpa(&self, host: &Host, gpa: Gpa, len: usize) -> Result<Vec<u8>, HvError> {
        let mut out = Vec::with_capacity(len);
        let len = len as u64;
        let mut off = 0u64;
        // One EPT walk per touched page: translations are contiguous
        // within a page (base frame + offset), so a single walk covers
        // the rest of the page.
        while off < len {
            let a = gpa.add(off);
            let t = self.ept.translate(host, a)?;
            let span = (PAGE_SIZE - a.page_offset()).min(len - off);
            let geometry = host.dram().geometry();
            if !geometry.contains(t.hpa) {
                return Err(HvError::Unmapped(a));
            }
            if !geometry.contains(t.hpa.add(span - 1)) {
                // The translation leaves the device mid-span: report the
                // first off-device byte, as a per-byte walk would.
                let valid = (0..span)
                    .find(|&i| !geometry.contains(t.hpa.add(i)))
                    .unwrap_or(span);
                return Err(HvError::Unmapped(a.add(valid)));
            }
            out.extend_from_slice(&host.dram().store().read_bytes(t.hpa, span as usize));
            off += span;
        }
        Ok(out)
    }

    /// Reads an aligned `u64` through the EPT.
    ///
    /// # Errors
    ///
    /// Same as [`Self::read_gpa`].
    pub fn read_u64_gpa(&self, host: &Host, gpa: Gpa) -> Result<u64, HvError> {
        let t = self.ept.translate(host, gpa)?;
        if !host.dram().geometry().contains(t.hpa.add(7)) {
            return Err(HvError::Unmapped(gpa));
        }
        Ok(host.dram().store().read_u64(t.hpa))
    }

    /// Writes guest memory through the EPT. Writes landing inside one of
    /// this VM's EPT pages (via a corrupted mapping) are recorded so
    /// subsequent [`Self::scan_magic`] calls account for the secondary
    /// mapping changes.
    ///
    /// # Errors
    ///
    /// Same as [`Self::read_gpa`].
    pub fn write_gpa(&mut self, host: &mut Host, gpa: Gpa, bytes: &[u8]) -> Result<(), HvError> {
        let len = bytes.len() as u64;
        let mut off = 0u64;
        // One EPT walk and one dirty-page check per touched page (the
        // whole span shares a frame), not per byte.
        while off < len {
            let a = gpa.add(off);
            let t = self.ept.translate(host, a)?;
            let span = (PAGE_SIZE - a.page_offset()).min(len - off);
            let geometry = host.dram().geometry();
            if !geometry.contains(t.hpa) {
                return Err(HvError::Unmapped(a));
            }
            let valid = if geometry.contains(t.hpa.add(span - 1)) {
                span
            } else {
                (0..span)
                    .find(|&i| !geometry.contains(t.hpa.add(i)))
                    .unwrap_or(span)
            };
            let frame = t.hpa.pfn().index();
            if self.pt_windows.contains_key(&frame) && !self.dirty_pt_pages.contains(&frame) {
                self.dirty_pt_pages.push(frame);
            }
            let chunk = &bytes[off as usize..(off + valid) as usize];
            host.dram_mut().store_mut().write_bytes(t.hpa, chunk);
            if valid < span {
                // Partial span off-device: the valid prefix is written
                // (matching the per-byte walk), then the fault surfaces.
                return Err(HvError::Unmapped(a.add(valid)));
            }
            off += span;
        }
        Ok(())
    }

    /// Writes an aligned `u64` through the EPT (EPTE-sized stores for the
    /// exploitation step).
    ///
    /// # Errors
    ///
    /// Same as [`Self::read_gpa`].
    pub fn write_u64_gpa(&mut self, host: &mut Host, gpa: Gpa, value: u64) -> Result<(), HvError> {
        self.write_gpa(host, gpa, &value.to_le_bytes())
    }

    /// Fills `[gpa, gpa+len)` with `value`, charging bulk write cost.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] on translation failure.
    ///
    /// # Panics
    ///
    /// Panics if the range is not page-aligned.
    pub fn fill_gpa(
        &mut self,
        host: &mut Host,
        gpa: Gpa,
        len: u64,
        value: u8,
    ) -> Result<(), HvError> {
        assert!(gpa.is_aligned(PAGE_SIZE) && len.is_multiple_of(PAGE_SIZE));
        for off in (0..len).step_by(PAGE_SIZE as usize) {
            let t = self.ept.translate(host, gpa.add(off))?;
            host.dram_mut().store_mut().fill(t.hpa, PAGE_SIZE, value);
        }
        host.charge_write(len);
        Ok(())
    }

    /// Overwrites one guest page with `fill` and stamps `magic` into its
    /// first eight bytes — the §4.3 magic-value marking, at the cost of
    /// one page write.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] on translation failure.
    ///
    /// # Panics
    ///
    /// Panics if `gpa` is not page-aligned.
    pub fn stamp_page(
        &mut self,
        host: &mut Host,
        gpa: Gpa,
        fill: u8,
        magic: u64,
    ) -> Result<(), HvError> {
        assert!(gpa.is_aligned(PAGE_SIZE));
        let t = self.ept.translate(host, gpa)?;
        let store = host.dram_mut().store_mut();
        store.fill(t.hpa, PAGE_SIZE, fill);
        store.write_u64(t.hpa, magic);
        host.charge_write(PAGE_SIZE);
        Ok(())
    }

    /// Executes code at `gpa`. Under the iTLB-Multihit countermeasure,
    /// execution on an NX 2 MiB mapping faults into the hypervisor, which
    /// splits the mapping into 512 executable 4 KiB entries in a freshly
    /// allocated EPT page (§4.2.3) — the lever Page Steering pulls.
    ///
    /// Returns `true` if this execution triggered a split (observable to
    /// the guest through the page-fault latency).
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] for unmapped addresses;
    /// [`HvError::ExecFault`] for non-executable 4 KiB mappings;
    /// allocation errors propagate from the split.
    pub fn exec_gpa(&mut self, host: &mut Host, gpa: Gpa) -> Result<bool, HvError> {
        let t = self.ept.translate(host, gpa)?;
        match t.level {
            MappingLevel::Huge2M if !t.entry.is_executable() => {
                let pt = self.ept.split_huge(host, gpa)?;
                self.pt_windows
                    .insert(pt.index(), Gpa::new(gpa.align_down(HUGE_PAGE_SIZE).raw()));
                Ok(true)
            }
            MappingLevel::Huge2M => Ok(false),
            MappingLevel::Page4K if t.entry.is_executable() => Ok(false),
            MappingLevel::Page4K => Err(HvError::ExecFault(gpa)),
        }
    }

    /// Stamps every 4 KiB page in `[base, base+len)` with `fill` bytes
    /// plus a per-page magic `u64` in its first eight bytes, charging one
    /// bulk write. Hugepage-mapped chunks are stamped with a single EPT
    /// walk per 2 MiB; already-split chunks fall back to per-page walks.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] on translation failure.
    ///
    /// # Panics
    ///
    /// Panics if the range is not 4 KiB-aligned.
    pub fn stamp_region(
        &mut self,
        host: &mut Host,
        base: Gpa,
        len: u64,
        fill: u8,
        magic_of: &dyn Fn(Gpa) -> u64,
    ) -> Result<(), HvError> {
        assert!(base.is_aligned(PAGE_SIZE) && len.is_multiple_of(PAGE_SIZE));
        let mut off = 0u64;
        while off < len {
            let gpa = base.add(off);
            let t = self.ept.translate(host, gpa)?;
            let chunk_left = HUGE_PAGE_SIZE - gpa.huge_page_offset();
            let span = chunk_left.min(len - off);
            match t.level {
                MappingLevel::Huge2M => {
                    // One walk covers the rest of this chunk.
                    let store = host.dram_mut().store_mut();
                    for p in (0..span).step_by(PAGE_SIZE as usize) {
                        store.reset_page_with_magic(t.hpa.add(p), fill, magic_of(gpa.add(p)));
                    }
                    off += span;
                }
                MappingLevel::Page4K => {
                    host.dram_mut()
                        .store_mut()
                        .reset_page_with_magic(t.hpa, fill, magic_of(gpa));
                    off += PAGE_SIZE;
                }
            }
        }
        host.charge_write(len);
        Ok(())
    }

    /// Explicit-load rounds per walker-driven activation in
    /// [`Vm::walk_hammer_gpa`]: the flush-TLB + flush-cache + touch
    /// cycle that forces each EPT-walker fetch costs about four times
    /// an explicit aggressor load.
    pub const WALK_FETCH_DIVISOR: u64 = 4;

    /// Hammers DRAM using aggressor addresses expressed as GPAs; the
    /// pattern is whatever those addresses' *current* translations are.
    /// Returns the number of activations issued. Flips are only
    /// observable through the scan methods, as for a real attacker.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if an aggressor is unmapped.
    pub fn hammer_gpa(
        &self,
        host: &mut Host,
        aggressors: &[Gpa],
        rounds: u64,
    ) -> Result<u64, HvError> {
        let mut hpas = Vec::with_capacity(aggressors.len());
        for &gpa in aggressors {
            let t = self.ept.translate(host, gpa)?;
            if !host.dram().geometry().contains(t.hpa) {
                return Err(HvError::Unmapped(gpa));
            }
            hpas.push(t.hpa);
        }
        let pattern = hh_dram::HammerPattern::new(hpas);
        let result = host.dram_mut().hammer(&pattern, rounds);
        host.charge_hammer(result.activations);
        Ok(result.activations)
    }

    /// PThammer-style implicit hammering: instead of loading the
    /// aggressor cells directly, the guest forces the EPT walker to
    /// fetch the aggressor addresses' page-table cachelines (TLB- and
    /// cache-flushing between accesses). Each guest access yields one
    /// walker fetch per flush cycle, and the flush overhead means only
    /// one activation lands per [`Vm::WALK_FETCH_DIVISOR`] explicit-load
    /// rounds — fewer activations per refresh window, hence a lower
    /// flip yield than [`Vm::hammer_gpa`] for the same round budget.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if an aggressor is unmapped.
    pub fn walk_hammer_gpa(
        &self,
        host: &mut Host,
        aggressors: &[Gpa],
        rounds: u64,
    ) -> Result<u64, HvError> {
        let mut hpas = Vec::with_capacity(aggressors.len());
        for &gpa in aggressors {
            let t = self.ept.translate(host, gpa)?;
            if !host.dram().geometry().contains(t.hpa) {
                return Err(HvError::Unmapped(gpa));
            }
            hpas.push(t.hpa);
        }
        let pattern = hh_dram::HammerPattern::new(hpas);
        let walk_rounds = rounds / Self::WALK_FETCH_DIVISOR;
        let result = host.dram_mut().hammer(&pattern, walk_rounds);
        // The guest still burns the full round budget's wall time: the
        // flush-and-walk cycle is what eats the missing activations.
        host.charge_hammer(result.activations * Self::WALK_FETCH_DIVISOR);
        Ok(result.activations)
    }

    /// Scans `[base, base+len)` of guest memory for bit flips relative to
    /// a previously written fill pattern, returning flips that occurred
    /// since journal position `since` (take it from
    /// [`Self::journal_cursor`] before hammering).
    ///
    /// Charged as a full linear scan; implemented via the flip journal
    /// (see the module docs for the equivalence argument).
    pub fn scan_for_flips(
        &self,
        host: &mut Host,
        since: usize,
        base: Gpa,
        len: u64,
    ) -> Vec<GuestFlip> {
        host.charge_scan(len);
        host.dram().flip_journal()[since..]
            .iter()
            .filter_map(|f| {
                let gpa = self.gpa_of_hpa(Hpa::new(f.hpa.raw()))?;
                if gpa < base || gpa.offset_from(base) >= len {
                    return None;
                }
                Some(GuestFlip {
                    gpa,
                    bit: f.bit,
                    direction: f.direction,
                })
            })
            .collect()
    }

    /// Current flip-journal cursor (pair with [`Self::scan_for_flips`]).
    pub fn journal_cursor(&self, host: &Host) -> usize {
        host.dram().flip_journal().len()
    }

    /// Journal cursor at VM creation.
    pub fn creation_cursor(&self) -> usize {
        self.journal_start
    }

    /// Attributes a host frame back to the guest page currently backed by
    /// it, if any.
    fn gpa_of_hpa(&self, hpa: Hpa) -> Option<Gpa> {
        let hpa_chunk = hpa.raw() / HUGE_PAGE_SIZE;
        if let Some(&gpa_chunk) = self.rev_huge.get(&hpa_chunk) {
            return Some(Gpa::new(
                gpa_chunk * HUGE_PAGE_SIZE + hpa.huge_page_offset(),
            ));
        }
        let frame = hpa.pfn().index();
        self.rev_pages
            .get(&frame)
            .map(|&gframe| Gpa::new(gframe * PAGE_SIZE + hpa.page_offset()))
    }

    /// Scans a guest-physical region for pages whose contents no longer
    /// match their magic stamp — the §4.3 "identifying mapping change"
    /// step. `magic_of` must be the same function used when stamping.
    ///
    /// Returns the base GPAs of changed pages. Unmapped/unreadable pages
    /// (translation redirected off-device) are reported as changed.
    ///
    /// Charged as a full linear scan of the region; implemented from the
    /// journal plus the EPT-write log (see module docs).
    pub fn scan_magic(
        &self,
        host: &mut Host,
        base: Gpa,
        len: u64,
        magic_of: &dyn Fn(Gpa) -> u64,
    ) -> Vec<Gpa> {
        host.charge_scan(len);
        let mut candidates: Vec<Gpa> = Vec::new();

        // (b) flips: in data pages (magic bytes themselves) and in EPT
        // pages (redirected translations).
        for f in &host.dram().flip_journal()[self.journal_start..] {
            if let Some(gpa) = self.gpa_of_hpa(f.hpa) {
                candidates.push(Gpa::new(gpa.align_down(PAGE_SIZE).raw()));
            }
            let frame = f.hpa.pfn().index();
            if let Some(&window) = self.pt_windows.get(&frame) {
                let entry_index = f.hpa.page_offset() / 8;
                candidates.push(window.add(entry_index * PAGE_SIZE));
            }
        }
        // (c) guest writes that landed inside EPT pages: every entry of
        // those pages may have been rewritten.
        for &frame in &self.dirty_pt_pages {
            if let Some(&window) = self.pt_windows.get(&frame) {
                for i in 0..512u64 {
                    candidates.push(window.add(i * PAGE_SIZE));
                }
            }
        }

        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .filter(|&gpa| gpa >= base && gpa.offset_from(base) < len)
            .filter(|&gpa| match self.read_u64_gpa(host, gpa) {
                Ok(value) => value != magic_of(gpa),
                Err(_) => true, // unreadable ⇒ mapping definitely changed
            })
            .collect()
    }

    // ----- virtio-mem -----------------------------------------------

    /// The modified driver's voluntary unplug (§4.2.2,
    /// `virtio_mem_sbm_unplug_sb_online`): releases the 2 MiB sub-block
    /// at `gpa` to the host even though the host never asked. The host
    /// unmaps the EPT range and `madvise`s the backing away, which lands
    /// it on the buddy free lists as an order-9 `MIGRATE_UNMOVABLE`
    /// block. The driver modification that suppresses the automatic
    /// re-plug is modelled by simply not plugging back.
    ///
    /// # Errors
    ///
    /// Protocol errors from [`VirtioMemDevice::unplug`] (including
    /// [`HvError::QuarantineNack`] under the §6 countermeasure),
    /// [`HvError::NotHugeBacked`] if THP did not back this sub-block with
    /// a single order-9 block, or [`HvError::Transient`] when the host's
    /// fault plan drops the request (retryable; no state changed).
    pub fn virtio_mem_unplug(&mut self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        // Validate backing before touching protocol state.
        let chunk = gpa.raw() / HUGE_PAGE_SIZE;
        match self.backing.get(&chunk) {
            Some(Backing::Huge(_)) => {}
            Some(Backing::Pages(_)) => return Err(HvError::NotHugeBacked(gpa)),
            None => return Err(HvError::NotPlugged(gpa)),
        }
        self.virtio_mem.unplug_on(host, gpa)?;
        let Some(Backing::Huge(block)) = self.backing.remove(&chunk) else {
            unreachable!("validated above");
        };
        self.ept.unmap(host, gpa)?;
        self.rev_huge.remove(&(block.index() / 512));
        host.buddy_mut().free(block, 9);
        host.log_released(block, 512);
        host.charge_virtio_mem_unplug();
        host.tracer().virtio_mem_unplug(gpa.raw());
        Ok(())
    }

    /// Plugs the sub-block at `gpa` back in (fresh backing, fresh NX
    /// mapping).
    ///
    /// # Errors
    ///
    /// Protocol errors from [`VirtioMemDevice::plug`]; allocation errors.
    pub fn virtio_mem_plug(&mut self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        let policy = host.quarantine();
        self.virtio_mem.plug(gpa, policy)?;
        self.provision_chunk(host, gpa)?;
        host.charge_virtio_mem_unplug();
        Ok(())
    }

    /// Host-side resize request: sets the virtio-mem target size the
    /// cooperative driver converges to via
    /// [`Self::virtio_mem_sync_to_target`].
    ///
    /// # Panics
    ///
    /// Panics if the size is not sub-block aligned or exceeds the region.
    pub fn virtio_mem_set_requested(&mut self, bytes: u64) {
        self.virtio_mem.set_requested_size(bytes);
    }

    /// The *unmodified* driver's behaviour: converge the plugged size to
    /// the host-requested target (plugging holes or unplugging tail
    /// sub-blocks). Returns the number of sub-blocks changed.
    ///
    /// # Errors
    ///
    /// Allocation errors while plugging.
    pub fn virtio_mem_sync_to_target(&mut self, host: &mut Host) -> Result<u64, HvError> {
        let mut changed = 0;
        while self.virtio_mem.plugged_size() < self.virtio_mem.requested_size() {
            let Some(hole) = self.virtio_mem.first_unplugged() else {
                break;
            };
            self.virtio_mem_plug(host, hole)?;
            changed += 1;
        }
        while self.virtio_mem.plugged_size() > self.virtio_mem.requested_size() {
            let Some(victim) = self.virtio_mem.plugged_sub_blocks().last() else {
                break;
            };
            self.virtio_mem_unplug(host, victim)?;
            changed += 1;
        }
        Ok(changed)
    }

    // ----- virtio-balloon -------------------------------------------

    /// Inflates the balloon by one 4 KiB page: the guest surrenders
    /// `gpa`; if its chunk is THP-backed the hugepage (and its EPT
    /// mapping) is split first, then the single frame is freed order-0.
    ///
    /// # Errors
    ///
    /// [`HvError::AlreadyInflated`], [`HvError::NotPlugged`] for unbacked
    /// chunks; allocation errors from the split.
    ///
    /// # Panics
    ///
    /// Panics if `gpa` is not page-aligned.
    pub fn balloon_inflate(&mut self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        assert!(gpa.is_aligned(PAGE_SIZE));
        let chunk = gpa.raw() / HUGE_PAGE_SIZE;
        if !self.backing.contains_key(&chunk) {
            return Err(HvError::NotPlugged(gpa));
        }
        self.balloon.inflate(gpa)?;
        // THP split if needed.
        if let Some(Backing::Huge(block)) = self.backing.get(&chunk) {
            let block = *block;
            let window = Gpa::new(gpa.align_down(HUGE_PAGE_SIZE).raw());
            let pt = self.ept.split_huge(host, window)?;
            self.pt_windows.insert(pt.index(), window);
            host.buddy_mut().split_allocated(block, 9);
            self.rev_huge.remove(&(block.index() / 512));
            let frames: Vec<Option<Pfn>> = (0..512u64).map(|i| Some(block.add(i))).collect();
            for (i, f) in frames.iter().enumerate() {
                let f = f.expect("all present after split");
                self.rev_pages
                    .insert(f.index(), window.pfn().index() + i as u64);
            }
            self.backing.insert(chunk, Backing::Pages(frames));
        }
        let Some(Backing::Pages(frames)) = self.backing.get_mut(&chunk) else {
            unreachable!("split above");
        };
        let idx = (gpa.huge_page_offset() / PAGE_SIZE) as usize;
        let frame = frames[idx].take().ok_or(HvError::NotPlugged(gpa))?;
        self.ept.unmap(host, gpa)?;
        self.rev_pages.remove(&frame.index());
        host.buddy_mut().free_page(frame);
        host.log_released(frame, 1);
        host.charge_virtio_mem_unplug();
        host.tracer().virtio_mem_unplug(gpa.raw());
        Ok(())
    }

    /// Deflates one page: fresh frame, fresh 4 KiB mapping.
    ///
    /// # Errors
    ///
    /// [`HvError::NotInflated`]; allocation errors.
    ///
    /// # Panics
    ///
    /// Panics if `gpa` is not page-aligned.
    pub fn balloon_deflate(&mut self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        self.balloon.deflate(gpa)?;
        let chunk = gpa.raw() / HUGE_PAGE_SIZE;
        let frame = host.buddy_mut().alloc_page(MigrateType::Movable)?;
        host.buddy_mut()
            .set_migrate_type(frame, 0, MigrateType::Unmovable);
        self.ept.map_4k(host, gpa, frame.base_hpa(), true)?;
        let Some(Backing::Pages(frames)) = self.backing.get_mut(&chunk) else {
            return Err(HvError::NotPlugged(gpa));
        };
        frames[(gpa.huge_page_offset() / PAGE_SIZE) as usize] = Some(frame);
        self.rev_pages.insert(frame.index(), gpa.pfn().index());
        Ok(())
    }

    /// The balloon device state.
    pub fn balloon(&self) -> &VirtioBalloon {
        &self.balloon
    }

    // ----- vIOMMU ---------------------------------------------------

    /// Creates a DMA mapping `iova → gpa` in the given IOMMU group.
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfGuestRange`] for unbacked GPAs; group errors from
    /// [`IommuGroup::map`].
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn iommu_map(
        &mut self,
        host: &mut Host,
        group: usize,
        iova: hh_sim::Iova,
        gpa: Gpa,
    ) -> Result<(), HvError> {
        let hpa = self
            .expected_hpa(gpa)
            .ok_or(HvError::OutOfGuestRange(gpa))?;
        self.iommu_groups[group].map(host, iova, hpa)
    }

    /// Removes a DMA mapping.
    ///
    /// # Errors
    ///
    /// Group errors from [`IommuGroup::unmap`].
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn iommu_unmap(
        &mut self,
        host: &mut Host,
        group: usize,
        iova: hh_sim::Iova,
    ) -> Result<(), HvError> {
        self.iommu_groups[group].unmap(host, iova)
    }

    /// Live mapping count in one group.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn iommu_mapping_count(&self, group: usize) -> usize {
        self.iommu_groups[group].mapping_count()
    }

    // ----- introspection & teardown ---------------------------------

    /// All EPT table pages (frame, level) — the paper's second Table 2
    /// debug hook ("dump EPT pages in the system").
    pub fn ept_table_pages(&self, host: &Host) -> Vec<(Pfn, u8)> {
        self.ept.table_pages(host)
    }

    /// Leaf (level-1) EPT pages only.
    pub fn ept_leaf_pages(&self, host: &Host) -> Vec<Pfn> {
        self.ept.leaf_table_pages(host)
    }

    /// Host-physical address of the leaf EPTE covering `gpa`.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] on walk failure.
    pub fn leaf_epte_hpa(&self, host: &Host, gpa: Gpa) -> Result<Hpa, HvError> {
        self.ept.leaf_entry_hpa(host, gpa)
    }

    /// Base GPAs of currently plugged virtio-mem sub-blocks.
    pub fn plugged_sub_blocks(&self) -> Vec<Gpa> {
        self.virtio_mem.plugged_sub_blocks().collect()
    }

    /// Guest-physical ranges currently usable: boot memory plus plugged
    /// sub-blocks, as (base, len) pairs.
    pub fn usable_ranges(&self) -> Vec<(Gpa, u64)> {
        let mut out = vec![(Gpa::new(0), self.config.boot_mem.bytes())];
        out.extend(
            self.virtio_mem
                .plugged_sub_blocks()
                .map(|b| (b, SUB_BLOCK_SIZE)),
        );
        out
    }

    /// Tears the VM down, returning every host resource.
    pub fn destroy(mut self, host: &mut Host) {
        for (_, backing) in std::mem::take(&mut self.backing) {
            match backing {
                Backing::Huge(block) => host.buddy_mut().free(block, 9),
                Backing::Pages(frames) => {
                    for frame in frames.into_iter().flatten() {
                        host.buddy_mut().free_page(frame);
                    }
                }
            }
        }
        for mut group in std::mem::take(&mut self.iommu_groups) {
            group.destroy(host);
        }
        self.ept.destroy(host);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;
    use crate::virtio_mem::QuarantinePolicy;

    fn setup() -> (Host, Vm) {
        let mut host = Host::new(HostConfig::small_test());
        let vm = host.create_vm(VmConfig::small_test()).unwrap();
        (host, vm)
    }

    #[test]
    fn vm_memory_is_thp_backed_and_nx() {
        let (host, vm) = setup();
        let t = vm.translate_gpa(&host, Gpa::new(0)).unwrap();
        assert_eq!(t.level, MappingLevel::Huge2M);
        assert!(!t.entry.is_executable(), "multihit mitigation maps NX");
        assert!(t.hpa.is_aligned(HUGE_PAGE_SIZE));
    }

    #[test]
    fn guest_memory_read_write() {
        let (mut host, mut vm) = setup();
        vm.write_gpa(&mut host, Gpa::new(0x12345), &[9, 8, 7])
            .unwrap();
        assert_eq!(
            vm.read_gpa(&host, Gpa::new(0x12345), 3).unwrap(),
            vec![9, 8, 7]
        );
        vm.write_u64_gpa(&mut host, Gpa::new(0x2000), 0xfeed)
            .unwrap();
        assert_eq!(vm.read_u64_gpa(&host, Gpa::new(0x2000)).unwrap(), 0xfeed);
    }

    #[test]
    fn exec_splits_hugepage_once() {
        let (mut host, mut vm) = setup();
        let leaves_before = vm.ept_leaf_pages(&host).len();
        vm.exec_gpa(&mut host, Gpa::new(0x1000)).unwrap();
        assert_eq!(vm.ept_leaf_pages(&host).len(), leaves_before + 1);
        // Second exec in the same chunk: already split, no new page.
        vm.exec_gpa(&mut host, Gpa::new(0x5000)).unwrap();
        assert_eq!(vm.ept_leaf_pages(&host).len(), leaves_before + 1);
        // Contents survive the split.
        let t = vm.translate_gpa(&host, Gpa::new(0x1000)).unwrap();
        assert_eq!(t.level, MappingLevel::Page4K);
        assert!(t.entry.is_executable());
    }

    #[test]
    fn hypervisor_operations_report_to_an_attached_tracer() {
        use hh_trace::{Counter, TraceMode, Tracer};
        let mut host = Host::new(HostConfig::small_test());
        let tracer = Tracer::new(TraceMode::Full);
        host.attach_tracer(tracer.clone());
        let mut vm = host.create_vm(VmConfig::small_test()).unwrap();
        vm.exec_gpa(&mut host, Gpa::new(0x1000)).unwrap();
        let victim = vm.virtio_mem().sub_block_base(3);
        vm.virtio_mem_unplug(&mut host, victim).unwrap();
        tracer.inspect(|sink| {
            let m = sink.metrics();
            assert_eq!(m.get(Counter::VmReboots), 1);
            assert_eq!(m.get(Counter::EptSplits), 1);
            assert_eq!(m.get(Counter::VirtioMemUnplugs), 1);
            assert!(m.get(Counter::BuddyAllocs) > 0, "EPT tables hit buddy");
            // Events are stamped with nondecreasing simulated time, and
            // the sink clock tracks the host clock.
            let events = sink.events();
            assert!(events.windows(2).all(|w| w[0].nanos <= w[1].nanos));
            assert_eq!(sink.now(), host.now().as_nanos());
            assert!(events.iter().any(
                |e| matches!(e.event, hh_trace::Event::VirtioMemUnplug { gpa }
                    if gpa == victim.raw())
            ));
        });
    }

    #[test]
    fn voluntary_unplug_releases_order9_unmovable() {
        let (mut host, mut vm) = setup();
        let victim = vm.virtio_mem().sub_block_base(3);
        let hpa = vm.hypercall_gpa_to_hpa(victim).unwrap();
        let info_before = host.pagetypeinfo().unmovable.counts[9];
        vm.virtio_mem_unplug(&mut host, victim).unwrap();
        // Released block is on the unmovable order-9 list (or merged up).
        let info_after = host.pagetypeinfo();
        assert!(
            info_after.unmovable.counts[9] > info_before || info_after.unmovable.counts[10] > 0,
            "released block should be a free unmovable order-9+ block"
        );
        assert_eq!(host.released_log().len(), 512);
        assert_eq!(host.released_log()[0], hpa.pfn());
        // The GPA range is gone.
        assert!(vm.translate_gpa(&host, victim).is_err());
        assert!(vm.read_gpa(&host, victim, 1).is_err());
    }

    #[test]
    fn quarantine_blocks_voluntary_unplug() {
        let mut host =
            Host::new(HostConfig::small_test().with_quarantine(QuarantinePolicy::QemuPatch));
        let mut vm = host.create_vm(VmConfig::small_test()).unwrap();
        let victim = vm.virtio_mem().sub_block_base(3);
        let err = vm.virtio_mem_unplug(&mut host, victim).unwrap_err();
        assert!(matches!(err, HvError::QuarantineNack { .. }));
        // Memory untouched.
        assert!(vm.translate_gpa(&host, victim).is_ok());
        assert!(host.released_log().is_empty());
    }

    #[test]
    fn sync_to_target_converges_both_ways() {
        let (mut host, mut vm) = setup();
        let full = vm.virtio_mem().region_size();
        // Host shrinks the VM by 3 sub-blocks.
        vm.virtio_mem.set_requested_size(full - 3 * SUB_BLOCK_SIZE);
        let changed = vm.virtio_mem_sync_to_target(&mut host).unwrap();
        assert_eq!(changed, 3);
        assert_eq!(vm.virtio_mem().plugged_size(), full - 3 * SUB_BLOCK_SIZE);
        // Host grows it back.
        vm.virtio_mem.set_requested_size(full);
        let changed = vm.virtio_mem_sync_to_target(&mut host).unwrap();
        assert_eq!(changed, 3);
        assert_eq!(vm.virtio_mem().plugged_size(), full);
    }

    #[test]
    fn hypercall_matches_honest_translation() {
        let (host, vm) = setup();
        for gpa in [0u64, 0x1234, 0x20_0000, 0x3f_f000] {
            let gpa = Gpa::new(gpa);
            assert_eq!(
                vm.hypercall_gpa_to_hpa(gpa).unwrap(),
                vm.translate_gpa(&host, gpa).unwrap().hpa
            );
        }
    }

    #[test]
    fn balloon_inflate_splits_thp_and_frees_one_page() {
        let (mut host, mut vm) = setup();
        let free_before = host.buddy().free_pages();
        let leaves_before = vm.ept_leaf_pages(&host).len();
        vm.balloon_inflate(&mut host, Gpa::new(0x3000)).unwrap();
        // One page freed net of the EPT page allocated by the split.
        assert_eq!(host.buddy().free_pages(), free_before + 1 - 1);
        assert_eq!(vm.ept_leaf_pages(&host).len(), leaves_before + 1);
        assert!(vm.translate_gpa(&host, Gpa::new(0x3000)).is_err());
        // Neighbouring page of the same chunk still mapped, now 4 KiB.
        let t = vm.translate_gpa(&host, Gpa::new(0x4000)).unwrap();
        assert_eq!(t.level, MappingLevel::Page4K);
        assert_eq!(host.released_log().len(), 1);
        // Deflate restores usability.
        vm.balloon_deflate(&mut host, Gpa::new(0x3000)).unwrap();
        assert!(vm.translate_gpa(&host, Gpa::new(0x3000)).is_ok());
    }

    #[test]
    fn iommu_map_consumes_noise_pages() {
        let (mut host, mut vm) = setup();
        let noise_before = host.noise_pages();
        for i in 0..8u64 {
            vm.iommu_map(
                &mut host,
                0,
                hh_sim::Iova::new(0x1_0000_0000 + i * HUGE_PAGE_SIZE),
                Gpa::new(0x1000),
            )
            .unwrap();
        }
        assert!(host.noise_pages() < noise_before);
        assert_eq!(vm.iommu_mapping_count(0), 8);
    }

    #[test]
    fn destroy_restores_host_free_pages() {
        let mut host = Host::new(HostConfig::small_test());
        let free_before = host.buddy().free_pages();
        let mut vm = host.create_vm(VmConfig::small_test()).unwrap();
        vm.exec_gpa(&mut host, Gpa::new(0x1000)).unwrap();
        vm.iommu_map(&mut host, 0, hh_sim::Iova::new(0), Gpa::new(0))
            .unwrap();
        let victim = vm.virtio_mem().sub_block_base(0);
        vm.virtio_mem_unplug(&mut host, victim).unwrap();
        vm.destroy(&mut host);
        assert_eq!(host.buddy().free_pages(), free_before);
    }

    #[test]
    fn corrupted_epte_redirects_guest_reads_and_scan_sees_it() {
        let (mut host, mut vm) = setup();
        // Split a chunk so it has 4 KiB EPTEs.
        vm.exec_gpa(&mut host, Gpa::new(0)).unwrap();
        // Stamp magic values on the chunk's pages.
        let magic = |gpa: Gpa| 0x4d41_0000_0000_0000 | gpa.raw();
        for i in 0..512u64 {
            vm.stamp_page(
                &mut host,
                Gpa::new(i * PAGE_SIZE),
                0,
                magic(Gpa::new(i * PAGE_SIZE)),
            )
            .unwrap();
        }
        assert!(vm
            .scan_magic(&mut host, Gpa::new(0), HUGE_PAGE_SIZE, &magic)
            .is_empty());
        // Corrupt the EPTE of page 5 in DRAM, as a Rowhammer flip would.
        let victim = Gpa::new(5 * PAGE_SIZE);
        let entry_hpa = vm.leaf_epte_hpa(&host, victim).unwrap();
        let raw = host.dram().store().read_u64(entry_hpa);
        host.dram_mut()
            .store_mut()
            .write_u64(entry_hpa, raw ^ (1 << 21));
        // Simulate the journal entry the hammer would have produced.
        // (Direct corruption bypasses the journal, so scan via honest
        // translation instead.)
        let data = vm.read_u64_gpa(&host, victim);
        // An Err means the redirect left the device — also a change.
        if let Ok(v) = data {
            assert_ne!(v, magic(victim), "read must be redirected");
        }
    }

    #[test]
    fn scan_for_flips_reports_guest_coordinates() {
        use hh_dram::HammerPattern;
        let (mut host, mut vm) = setup();
        // Fill all guest memory with 0xff so OneToZero cells are armed.
        let total = vm.config().total_mem().bytes();
        vm.fill_gpa(&mut host, Gpa::new(0), total, 0xff).unwrap();
        let cursor = vm.journal_cursor(&host);
        // Hammer every row pair via host-side access for test brevity.
        let geometry = host.dram().geometry().clone();
        for row in 1..geometry.row_count() - 2 {
            for bank in 0..geometry.bank_count() {
                let p = HammerPattern::single_sided_for(&geometry, bank, row);
                host.dram_mut().hammer(&p, 400_000);
            }
        }
        let flips = vm.scan_for_flips(&mut host, cursor, Gpa::new(0), total);
        assert!(!flips.is_empty(), "dense test profile must flip");
        for flip in &flips {
            // Every reported flip is observable at its guest address.
            let byte = vm
                .read_gpa(&host, Gpa::new(flip.gpa.align_down(1).raw()), 1)
                .unwrap()[0];
            let bit = (byte >> flip.bit) & 1;
            assert_eq!(bit, flip.direction.target_bit());
        }
    }
}

#[cfg(test)]
mod ept_mode_tests {
    use super::*;
    use crate::ept::EptMode;
    use crate::host::HostConfig;

    #[test]
    fn five_level_ept_vm_works_end_to_end() {
        let mut host = Host::new(HostConfig::small_test());
        let cfg = VmConfig {
            ept_mode: EptMode::FiveLevel,
            ..VmConfig::small_test()
        };
        let mut vm = host.create_vm(cfg).unwrap();
        // Memory access, multihit split, unplug, hypercall all behave
        // identically; the walk is just one level deeper.
        vm.write_u64_gpa(&mut host, Gpa::new(0x2000), 0xabcd)
            .unwrap();
        assert_eq!(vm.read_u64_gpa(&host, Gpa::new(0x2000)).unwrap(), 0xabcd);
        assert!(vm.exec_gpa(&mut host, Gpa::new(0)).unwrap());
        let t = vm.translate_gpa(&host, Gpa::new(0x2000)).unwrap();
        assert_eq!(t.level, MappingLevel::Page4K);
        // One extra table level: PML5 + PML4 + PDPT + PD (+ PT after the
        // split).
        let levels: Vec<u8> = vm.ept_table_pages(&host).iter().map(|&(_, l)| l).collect();
        assert!(levels.contains(&5));
        let victim = vm.virtio_mem().sub_block_base(1);
        vm.virtio_mem_unplug(&mut host, victim).unwrap();
        assert!(vm.translate_gpa(&host, victim).is_err());
        vm.destroy(&mut host);
    }
}

//! The host machine: DRAM, page allocator, clock, and boot-time noise.

use hh_buddy::{AllocJitter, BuddyAllocator, BuddySnapshot, MigrateType, PageTypeInfo, PcpConfig};
use hh_dram::{DimmProfile, DramDevice};
use hh_sim::addr::{Pfn, PAGE_SIZE};
use hh_sim::clock::{Clock, CostModel, SimDuration, SimInstant};
use hh_sim::rng::SimRng;
use hh_sim::snap::{Dec, Enc, SnapError};
use hh_sim::ByteSize;
use hh_trace::Tracer;

use crate::error::FaultStage;
use crate::fault::{FaultConfig, FaultPlan};
use crate::virtio_mem::QuarantinePolicy;
use crate::HvError;

/// Boot-time allocation noise: how many `MIGRATE_UNMOVABLE` pages the
/// host kernel and its services have allocated and partially freed by
/// the time the attacker VM starts.
///
/// The *free* small-order unmovable population is exactly the "noise
/// pages" curve of Figure 3; S3 (OpenStack/DevStack) starts much higher
/// than the bare-KVM S1/S2 hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseProfile {
    /// Unmovable pages still held by the kernel (never freed).
    pub live_unmovable_pages: u64,
    /// Free small-order unmovable pages left behind by boot-time churn
    /// (allocated then freed, fragmented so they cannot coalesce).
    pub free_small_unmovable_pages: u64,
}

impl NoiseProfile {
    /// Bare KVM host (S1/S2): Figure 3(a) starts around 30–40 k noise
    /// pages.
    pub fn bare_kvm() -> Self {
        Self {
            live_unmovable_pages: 24_000,
            free_small_unmovable_pages: 34_000,
        }
    }

    /// OpenStack/DevStack host (S3): Figure 3(b) starts much higher.
    pub fn openstack() -> Self {
        Self {
            live_unmovable_pages: 60_000,
            free_small_unmovable_pages: 55_000,
        }
    }

    /// Minimal noise for unit tests.
    pub fn quiet() -> Self {
        Self {
            live_unmovable_pages: 16,
            free_small_unmovable_pages: 32,
        }
    }
}

/// Host construction parameters.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The installed DIMMs (geometry + Rowhammer profile).
    pub dimm: DimmProfile,
    /// Simulated-time cost model.
    pub cost: CostModel,
    /// Per-CPU pageset configuration (disable for the PCP ablation).
    pub pcp: PcpConfig,
    /// Boot-time allocation noise.
    pub noise: NoiseProfile,
    /// virtio-mem request quarantine (the paper's §6 countermeasure).
    pub quarantine: QuarantinePolicy,
    /// Transient fault injection at the steering choke points
    /// (off by default).
    pub faults: FaultConfig,
    /// Master seed for all stochastic behaviour.
    pub seed: u64,
}

impl HostConfig {
    /// A 256 MiB host with a dense fault profile and minimal noise —
    /// fast enough for unit tests and doc examples.
    pub fn small_test() -> Self {
        Self {
            dimm: DimmProfile::test_profile(256 << 20),
            cost: CostModel::calibrated(),
            pcp: PcpConfig::standard(),
            noise: NoiseProfile::quiet(),
            quarantine: QuarantinePolicy::Off,
            faults: FaultConfig::off(),
            seed: 0x5eed,
        }
    }

    /// Machine S1: Core i3-10100, 16 GiB Apacer DDR4-2666, bare KVM.
    pub fn s1() -> Self {
        Self {
            dimm: DimmProfile::s1(ByteSize::gib(16).bytes()),
            cost: CostModel::calibrated(),
            pcp: PcpConfig::standard(),
            noise: NoiseProfile::bare_kvm(),
            quarantine: QuarantinePolicy::Off,
            faults: FaultConfig::off(),
            seed: 0x51,
        }
    }

    /// Machine S2: Xeon E-2124, 16 GiB Apacer DDR4-2666, bare KVM.
    pub fn s2() -> Self {
        Self {
            dimm: DimmProfile::s2(ByteSize::gib(16).bytes()),
            cost: CostModel::calibrated(),
            pcp: PcpConfig::standard(),
            // Same software stack as S1; slightly different boot churn
            // (the paper's two bare-KVM hosts also differ run to run).
            noise: NoiseProfile {
                live_unmovable_pages: 22_000,
                free_small_unmovable_pages: 31_000,
            },
            quarantine: QuarantinePolicy::Off,
            faults: FaultConfig::off(),
            seed: 0x52,
        }
    }

    /// Machine S3: S1 hardware running a single-node OpenStack
    /// (DevStack) deployment — identical mechanics, more boot noise.
    pub fn s3() -> Self {
        Self {
            noise: NoiseProfile::openstack(),
            seed: 0x53,
            ..Self::s1()
        }
    }

    /// Returns a copy with a different seed (experiment repetitions).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given quarantine policy.
    pub fn with_quarantine(mut self, q: QuarantinePolicy) -> Self {
        self.quarantine = q;
        self
    }

    /// Returns a copy with the given fault-injection configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}

/// The host machine.
///
/// Owns the DRAM, the page allocator and the simulated clock; VMs borrow
/// it for every operation, mirroring how all guest-visible behaviour is
/// ultimately host state.
#[derive(Debug)]
pub struct Host {
    dram: DramDevice,
    buddy: BuddyAllocator,
    clock: Clock,
    cost: CostModel,
    quarantine: QuarantinePolicy,
    rng: SimRng,
    /// PFNs of pages released by VMs through virtio-mem/balloon since the
    /// last [`Self::reset_released_log`] — the paper's "log PFNs of the
    /// pages that are released from the VM" debug hook (§5.2).
    released_log: Vec<Pfn>,
    ept_pages_allocated: u64,
    next_vm_id: u32,
    fault_plan: FaultPlan,
    tracer: Tracer,
}

impl Host {
    /// Boots a host: initializes DRAM and the allocator, then replays the
    /// configured boot-time allocation noise.
    ///
    /// # Panics
    ///
    /// Panics if the noise profile does not fit in the DIMM.
    pub fn new(config: HostConfig) -> Self {
        let size = config.dimm.geometry.size_bytes();
        let mut buddy = BuddyAllocator::with_pcp(size / PAGE_SIZE, config.pcp);
        apply_boot_noise(&mut buddy, config.noise);
        Self::assemble(config, buddy)
    }

    /// Shared tail of [`Self::new`] and [`HostTemplate::instantiate`]:
    /// everything *after* the allocator has absorbed its boot noise.
    /// Keeping both constructors on this one path is what makes a
    /// template-instantiated host bit-identical to a booted one.
    fn assemble(config: HostConfig, buddy: BuddyAllocator) -> Self {
        let mut rng = SimRng::seed_from(config.seed);
        let noise_rng = rng.fork("host-noise");
        let dram = DramDevice::new(config.dimm, config.seed ^ 0xd1a);
        let fault_plan = FaultPlan::new(config.faults, config.seed);
        let mut host = Self {
            dram,
            buddy,
            clock: Clock::new(),
            cost: config.cost,
            quarantine: config.quarantine,
            rng: noise_rng,
            released_log: Vec::new(),
            ept_pages_allocated: 0,
            next_vm_id: 1,
            fault_plan,
            tracer: Tracer::off(),
        };
        // Jitter attaches after boot noise: boot-time churn is part of
        // the machine's initial conditions, not of the hostile phase.
        if config.faults.alloc_rate > 0.0 {
            host.buddy.set_alloc_jitter(Some(AllocJitter::new(
                host.fault_plan.jitter_seed(),
                config.faults.alloc_rate,
            )));
        }
        host
    }

    /// Attaches an instrumentation handle to the host and propagates it
    /// to the DRAM device and the page allocator, so hammer bursts, bit
    /// flips and buddy churn report into the same sink. The sink's clock
    /// is synchronised with the host clock on attach and after every
    /// simulated-time charge.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.tracer.set_now(self.clock.now_nanos());
        self.dram.set_tracer(self.tracer.clone());
        self.buddy.set_tracer(self.tracer.clone());
    }

    /// The attached instrumentation handle (detached no-op by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The DRAM device.
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    /// Mutable DRAM access (hammering, direct corruption experiments).
    pub fn dram_mut(&mut self) -> &mut DramDevice {
        &mut self.dram
    }

    /// The page allocator.
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Mutable allocator access.
    pub fn buddy_mut(&mut self) -> &mut BuddyAllocator {
        &mut self.buddy
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Time elapsed since `start`.
    pub fn elapsed_since(&self, start: SimInstant) -> SimDuration {
        self.clock.elapsed_since(start)
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The configured virtio-mem quarantine policy.
    pub fn quarantine(&self) -> QuarantinePolicy {
        self.quarantine
    }

    /// Host-side RNG stream (background activity, TRR sampling…).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The host's fault plan (inspection / test hooks).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Rolls the fault plan for a choke-point operation. Called before
    /// the operation has any side effect; on a hit, records the
    /// injection in the trace and returns the retryable
    /// [`HvError::Transient`] the operation must propagate.
    ///
    /// # Errors
    ///
    /// [`HvError::Transient`] when the plan schedules a fault here.
    pub fn fault_check(&mut self, stage: FaultStage) -> Result<(), HvError> {
        match self.fault_plan.check(stage, self.clock.now_nanos()) {
            None => Ok(()),
            Some(cause) => {
                self.tracer.fault_injected(stage.name(), cause);
                Err(HvError::Transient { stage, cause })
            }
        }
    }

    /// Advances the clock and keeps the trace sink's timestamp in step.
    fn advance(&mut self, nanos: u64) {
        self.clock.advance_nanos(nanos);
        self.tracer.set_now(self.clock.now_nanos());
    }

    /// Advances the simulated clock by `nanos`.
    pub fn charge_nanos(&mut self, nanos: u64) {
        self.advance(nanos);
    }

    /// Charges a linear memory scan of `bytes`.
    pub fn charge_scan(&mut self, bytes: u64) {
        self.advance(self.cost.scan_cost_nanos(bytes));
    }

    /// Charges a bulk memory write of `bytes`.
    pub fn charge_write(&mut self, bytes: u64) {
        self.advance(self.cost.write_cost_nanos(bytes));
    }

    /// Charges `activations` hammer activations.
    pub fn charge_hammer(&mut self, activations: u64) {
        self.advance(activations.saturating_mul(self.cost.hammer_activation_nanos));
    }

    /// Charges one iTLB-Multihit hugepage split.
    pub fn charge_hugepage_split(&mut self) {
        self.advance(self.cost.hugepage_split_nanos);
    }

    /// Charges one vIOMMU map operation.
    pub fn charge_viommu_map(&mut self) {
        self.advance(self.cost.viommu_map_nanos);
    }

    /// Charges one virtio-mem unplug round-trip.
    pub fn charge_virtio_mem_unplug(&mut self) {
        self.advance(self.cost.virtio_mem_unplug_nanos);
    }

    /// Charges a VM reboot.
    pub fn charge_vm_reboot(&mut self) {
        self.tracer.vm_reboot();
        self.advance(self.cost.vm_reboot_nanos);
    }

    /// Allocates a zeroed order-0 `MIGRATE_UNMOVABLE` page for an EPT
    /// table (the PCP-first path kernel page-table allocations take).
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfHostMemory`] when the host is exhausted.
    pub fn alloc_ept_page(&mut self) -> Result<Pfn, HvError> {
        self.alloc_ept_page_typed(MigrateType::Unmovable)
    }

    /// [`Self::alloc_ept_page`] with an explicit migration type — the
    /// Xen-style model ([`crate::xen`]) allocates p2m pages from the
    /// undifferentiated heap (`Movable`), which is exactly why §6 argues
    /// Page Steering is easier there.
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfHostMemory`] when the host is exhausted.
    pub fn alloc_ept_page_typed(&mut self, mt: MigrateType) -> Result<Pfn, HvError> {
        let pfn = self.buddy.alloc_page(mt)?;
        self.dram.fill(pfn.base_hpa(), PAGE_SIZE, 0);
        self.ept_pages_allocated += 1;
        Ok(pfn)
    }

    /// Frees an EPT table page.
    pub fn free_ept_page(&mut self, pfn: Pfn) {
        self.buddy.free_page(pfn);
    }

    /// Allocates a zeroed order-0 `MIGRATE_UNMOVABLE` page for an IOPT
    /// table (§4.2.1: "these mappings are stored in order-0
    /// MIGRATE_UNMOVABLE pages").
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfHostMemory`] when the host is exhausted.
    pub fn alloc_iopt_page(&mut self) -> Result<Pfn, HvError> {
        let pfn = self.buddy.alloc_page(MigrateType::Unmovable)?;
        self.dram.fill(pfn.base_hpa(), PAGE_SIZE, 0);
        Ok(pfn)
    }

    /// Frees an IOPT table page.
    pub fn free_iopt_page(&mut self, pfn: Pfn) {
        self.buddy.free_page(pfn);
    }

    /// Lifetime count of EPT page allocations.
    pub fn ept_pages_allocated(&self) -> u64 {
        self.ept_pages_allocated
    }

    /// Records pages a VM released (virtio-mem unplug / balloon inflate).
    pub(crate) fn log_released(&mut self, base: Pfn, pages: u64) {
        for i in 0..pages {
            self.released_log.push(base.add(i));
        }
    }

    /// PFNs released by VMs since the last reset — the paper's first
    /// Table 2 debug function.
    pub fn released_log(&self) -> &[Pfn] {
        &self.released_log
    }

    /// Clears the released-pages log (between experiment runs).
    pub fn reset_released_log(&mut self) {
        self.released_log.clear();
    }

    /// Snapshot of the allocator free lists, the model's
    /// `/proc/pagetypeinfo`.
    pub fn pagetypeinfo(&self) -> PageTypeInfo {
        self.buddy.pagetypeinfo()
    }

    /// The paper's "noise pages" metric: free small-order (order < 9)
    /// `MIGRATE_UNMOVABLE` pages, including PCP-cached ones.
    pub fn noise_pages(&self) -> u64 {
        self.buddy.small_order_free_pages(MigrateType::Unmovable)
    }

    /// Allocates a fresh VM identifier.
    pub(crate) fn next_vm_id(&mut self) -> u32 {
        let id = self.next_vm_id;
        self.next_vm_id += 1;
        id
    }

    /// Serializes the host's complete mutable state into a snapshot
    /// stream: allocator (free-list LIFO order, indexes, PCP lanes,
    /// stats), DRAM (contents, RNG, flip journal), clock, host RNG
    /// position, released-pages log, counters, and the positions of the
    /// fault-injection streams. The configuration is *not* included —
    /// the container format stores `(scenario, seed, faults)` and
    /// rebuilds it, exactly as [`HostTemplate::instantiate`] does.
    pub fn encode_state_into(&self, enc: &mut Enc) {
        self.buddy.snapshot().encode_into(enc);
        self.dram.encode_state_into(enc);
        enc.u64(self.clock.now_nanos());
        for w in self.rng.state() {
            enc.u64(w);
        }
        enc.u64(self.released_log.len() as u64);
        for p in &self.released_log {
            enc.u64(p.index());
        }
        enc.u64(self.ept_pages_allocated);
        enc.u32(self.next_vm_id);
        enc.u64(self.fault_plan.draws());
        enc.u64(self.buddy.alloc_jitter().map_or(0, |j| j.calls()));
    }

    /// Rebuilds a host from its configuration plus a stream captured by
    /// [`encode_state_into`](Self::encode_state_into). `config` must be
    /// the configuration the snapshotted host was built with (same
    /// scenario, seed and fault plan); the pure derivations — DRAM fault
    /// profile, RNG stream seeds, fault-plan stream seed — are replayed
    /// from it, then every piece of mutable state is overwritten from
    /// the stream, leaving the host bit-identical to the snapshotted
    /// one (with a detached tracer).
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the stream is truncated, corrupt, or does not
    /// match `config`'s geometry.
    pub fn from_snapshot_state(config: HostConfig, dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let snap = BuddySnapshot::decode(dec)?;
        let frames = config.dimm.geometry.size_bytes() / PAGE_SIZE;
        if snap.total_frames() != frames {
            return Err(SnapError::Corrupt("buddy zone does not match geometry"));
        }
        let mut host = Self::assemble(config, BuddyAllocator::from_snapshot(&snap));
        host.dram.restore_state(dec)?;
        let nanos = dec.u64()?;
        let mut state = [0u64; 4];
        for w in &mut state {
            *w = dec.u64()?;
        }
        if state.iter().all(|&w| w == 0) {
            return Err(SnapError::Corrupt("all-zero host rng state"));
        }
        let released = dec.count(8)?;
        let mut released_log = Vec::with_capacity(released);
        for _ in 0..released {
            let pfn = dec.u64()?;
            if pfn >= frames {
                return Err(SnapError::Corrupt("released-log pfn beyond zone"));
            }
            released_log.push(Pfn::new(pfn));
        }
        let ept_pages_allocated = dec.u64()?;
        let next_vm_id = dec.u32()?;
        if next_vm_id == 0 {
            return Err(SnapError::Corrupt("vm ids start at 1"));
        }
        let draws = dec.u64()?;
        let jitter_calls = dec.u64()?;
        // `assemble` restored the allocator without its jitter source
        // and then reattached one (rate > 0) or none (rate == 0); the
        // stream position must agree with that configuration.
        match host.buddy.alloc_jitter_mut() {
            Some(j) => j.set_calls(jitter_calls),
            None if jitter_calls != 0 => {
                return Err(SnapError::Corrupt("jitter calls without alloc jitter"));
            }
            None => {}
        }
        host.clock = Clock::new();
        host.clock.advance_nanos(nanos);
        host.rng = SimRng::from_state(state);
        host.released_log = released_log;
        host.ept_pages_allocated = ept_pages_allocated;
        host.next_vm_id = next_vm_id;
        host.fault_plan.set_draws(draws);
        Ok(host)
    }

    /// A copy-on-write fork of the host: DRAM pages are shared with the
    /// parent until either side writes (see [`DramDevice::fork`]), the
    /// allocator, clock, RNG streams and fault-plan positions are
    /// copied, and the fork starts with a detached tracer. Forking a
    /// profiled host is how one boot fans out into divergent campaign
    /// cells without re-profiling.
    pub fn fork(&self) -> Self {
        Self {
            dram: self.dram.fork(),
            buddy: self.buddy.fork(),
            clock: self.clock,
            cost: self.cost.clone(),
            quarantine: self.quarantine,
            rng: self.rng.clone(),
            released_log: self.released_log.clone(),
            ept_pages_allocated: self.ept_pages_allocated,
            next_vm_id: self.next_vm_id,
            fault_plan: self.fault_plan.clone(),
            tracer: Tracer::off(),
        }
    }
}

/// Boot-time churn: allocate unmovable pages in adjacent pairs and
/// free one page of each pair, leaving `free_small_unmovable_pages`
/// order-0 unmovable free pages that cannot coalesce — the initial
/// "noise pages" population of Figure 3.
///
/// Deliberately RNG-free: the noise sequence depends only on the
/// profile, never on the host seed, which is what lets
/// [`HostTemplate`] replay it once and share the result across every
/// seed of a campaign scenario.
fn apply_boot_noise(buddy: &mut BuddyAllocator, noise: NoiseProfile) {
    for _ in 0..noise.live_unmovable_pages {
        buddy
            .alloc(0, MigrateType::Unmovable)
            .expect("noise profile exceeds DRAM");
    }
    let mut to_free = Vec::with_capacity(noise.free_small_unmovable_pages as usize);
    for _ in 0..noise.free_small_unmovable_pages {
        // Holding the odd page of each pair pins fragmentation.
        let a = buddy
            .alloc(0, MigrateType::Unmovable)
            .expect("noise profile exceeds DRAM");
        let _held = buddy
            .alloc(0, MigrateType::Unmovable)
            .expect("noise profile exceeds DRAM");
        to_free.push(a);
    }
    for p in to_free {
        buddy.free(p, 0);
    }
}

/// A pre-booted host image: the configuration plus a snapshot of the
/// allocator state after boot-time noise.
///
/// Booting a host replays tens of thousands of allocator operations
/// (the noise profile), and that sequence is a pure function of the
/// configuration — the seed only steers DRAM faults, TRR sampling and
/// fault injection, none of which touch the boot-time allocator. A
/// campaign grid therefore builds one template per scenario and stamps
/// out per-seed hosts with [`instantiate`](Self::instantiate), which
/// skips straight to a snapshot restore.
///
/// The template is `Send + Sync` (unlike [`Host`], whose tracer holds
/// an `Rc`), so worker threads can instantiate from a shared reference.
#[derive(Debug, Clone)]
pub struct HostTemplate {
    config: HostConfig,
    buddy: BuddySnapshot,
}

impl HostTemplate {
    /// Builds the template: seeds the allocator and replays the boot
    /// noise once.
    ///
    /// # Panics
    ///
    /// Panics if the noise profile does not fit in the DIMM.
    pub fn new(config: HostConfig) -> Self {
        let size = config.dimm.geometry.size_bytes();
        let mut buddy = BuddyAllocator::with_pcp(size / PAGE_SIZE, config.pcp);
        apply_boot_noise(&mut buddy, config.noise);
        Self {
            config,
            buddy: buddy.snapshot(),
        }
    }

    /// The configuration the template was built from (its seed is
    /// replaced per instantiation).
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Instantiates a host with the given seed, bit-identical to
    /// `Host::new(template.config().clone().with_seed(seed))` — the
    /// DRAM device, RNG streams and fault plan are derived from `seed`
    /// exactly as [`Host::new`] derives them; only the boot-noise
    /// replay is skipped in favour of the snapshot.
    pub fn instantiate(&self, seed: u64) -> Host {
        let config = self.config.clone().with_seed(seed);
        Host::assemble(config, BuddyAllocator::from_snapshot(&self.buddy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_noise_populates_unmovable_lists() {
        let host = Host::new(HostConfig::small_test());
        // At least the configured free pages, plus up to ~1 023 pages of
        // split remnant from the stolen max-order block — the same
        // "imprecision" the paper notes in §4.2.1.
        let noise = host.noise_pages();
        assert!(
            (32..32 + 1024).contains(&noise),
            "expected 32..1056 noise pages, got {noise}"
        );
    }

    #[test]
    fn bigger_noise_profile_means_more_noise() {
        let mut cfg = HostConfig::small_test();
        cfg.noise = NoiseProfile {
            live_unmovable_pages: 100,
            free_small_unmovable_pages: 500,
        };
        let host = Host::new(cfg);
        assert!(host.noise_pages() >= 500);
    }

    #[test]
    fn ept_pages_are_unmovable_and_zeroed() {
        let mut host = Host::new(HostConfig::small_test());
        // Dirty some memory first so reuse without zeroing would show.
        let probe = host.buddy_mut().alloc_page(MigrateType::Unmovable).unwrap();
        host.dram_mut().fill(probe.base_hpa(), PAGE_SIZE, 0xff);
        host.buddy_mut().free_page(probe);
        let pfn = host.alloc_ept_page().unwrap();
        assert_eq!(pfn, probe, "PCP LIFO should hand back the dirty page");
        assert_eq!(host.dram().store().read_u64(pfn.base_hpa()), 0);
        assert_eq!(host.ept_pages_allocated(), 1);
    }

    #[test]
    fn clock_charges_accumulate() {
        let mut host = Host::new(HostConfig::small_test());
        let t0 = host.now();
        host.charge_hammer(1_000);
        host.charge_viommu_map();
        assert!(host.elapsed_since(t0).as_nanos() > 0);
    }

    #[test]
    fn released_log_roundtrip() {
        let mut host = Host::new(HostConfig::small_test());
        host.log_released(Pfn::new(100), 3);
        assert_eq!(host.released_log().len(), 3);
        assert_eq!(host.released_log()[2], Pfn::new(102));
        host.reset_released_log();
        assert!(host.released_log().is_empty());
    }

    #[test]
    fn template_instantiation_matches_a_cold_boot() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HostTemplate>();

        let template = HostTemplate::new(HostConfig::small_test());
        for seed in [0x5eed, 0xd15c0, 1, u64::MAX] {
            let mut cold = Host::new(HostConfig::small_test().with_seed(seed));
            let mut fast = template.instantiate(seed);
            assert_eq!(fast.pagetypeinfo(), cold.pagetypeinfo());
            assert_eq!(fast.buddy().free_pages(), cold.buddy().free_pages());
            assert_eq!(fast.noise_pages(), cold.noise_pages());
            // Same state ⇒ same future behaviour: allocator decisions,
            // RNG streams and fault draws all line up.
            assert_eq!(
                fast.alloc_ept_page().unwrap(),
                cold.alloc_ept_page().unwrap()
            );
            assert_eq!(fast.rng_mut().next_u64(), cold.rng_mut().next_u64());
        }
    }

    #[test]
    fn template_instantiation_matches_a_faulted_boot() {
        let cfg = HostConfig::small_test().with_faults(FaultConfig::uniform(0.2).with_seed(9));
        let template = HostTemplate::new(cfg.clone());
        let mut cold = Host::new(cfg.with_seed(0xfa));
        let mut fast = template.instantiate(0xfa);
        // Jitter and the fault plan are per-seed: the same injections
        // must fire on both hosts, in the same order.
        for _ in 0..64 {
            assert_eq!(
                fast.buddy_mut().alloc_page(MigrateType::Unmovable),
                cold.buddy_mut().alloc_page(MigrateType::Unmovable)
            );
            fast.charge_nanos(1_000);
            cold.charge_nanos(1_000);
            assert_eq!(
                fast.fault_check(FaultStage::EptSplit).is_err(),
                cold.fault_check(FaultStage::EptSplit).is_err()
            );
        }
        assert_eq!(fast.fault_plan().draws(), cold.fault_plan().draws());
    }

    /// A host with non-trivial state in every subsystem: allocations,
    /// EPT pages, released-log entries, advanced clock and RNG.
    fn worked_host() -> Host {
        let cfg =
            HostConfig::small_test().with_faults(FaultConfig::uniform(0.05).with_seed(0x7a17));
        let mut host = Host::new(cfg);
        for _ in 0..8 {
            let _ = host.alloc_ept_page();
        }
        let blk = host.buddy_mut().alloc(3, MigrateType::Movable).unwrap();
        host.buddy_mut().free(blk, 3);
        host.dram_mut()
            .fill(Pfn::new(40).base_hpa(), PAGE_SIZE, 0xab);
        host.log_released(Pfn::new(100), 5);
        host.charge_nanos(123_456);
        let _ = host.rng_mut().next_u64();
        let _ = host.fault_check(crate::error::FaultStage::EptSplit);
        host
    }

    #[test]
    fn host_snapshot_restores_bit_identical_state() {
        let mut original = worked_host();
        let mut enc = Enc::new();
        original.encode_state_into(&mut enc);
        let bytes = enc.into_bytes();

        let cfg =
            HostConfig::small_test().with_faults(FaultConfig::uniform(0.05).with_seed(0x7a17));
        let mut dec = Dec::new(&bytes);
        let mut restored = Host::from_snapshot_state(cfg, &mut dec).expect("valid snapshot");
        dec.finish().expect("no trailing bytes");

        assert_eq!(
            restored.buddy().free_state_digest(),
            original.buddy().free_state_digest()
        );
        assert_eq!(restored.buddy().stats(), original.buddy().stats());
        assert_eq!(restored.dram().store(), original.dram().store());
        assert_eq!(
            restored.dram().flip_journal(),
            original.dram().flip_journal()
        );
        assert_eq!(restored.now(), original.now());
        assert_eq!(restored.released_log(), original.released_log());
        assert_eq!(
            restored.ept_pages_allocated(),
            original.ept_pages_allocated()
        );
        assert_eq!(restored.fault_plan().draws(), original.fault_plan().draws());

        // Same state ⇒ same future: allocation order, RNG stream, VM
        // ids and fault draws all continue in lockstep.
        for _ in 0..32 {
            assert_eq!(
                restored.alloc_ept_page().ok(),
                original.alloc_ept_page().ok()
            );
            assert_eq!(restored.rng_mut().next_u64(), original.rng_mut().next_u64());
            restored.charge_nanos(777);
            original.charge_nanos(777);
            assert_eq!(
                restored
                    .fault_check(crate::error::FaultStage::VirtioMemUnplug)
                    .is_err(),
                original
                    .fault_check(crate::error::FaultStage::VirtioMemUnplug)
                    .is_err()
            );
        }
        assert_eq!(restored.next_vm_id(), original.next_vm_id());
    }

    #[test]
    fn host_snapshot_rejects_corrupt_bytes_with_typed_errors() {
        let original = worked_host();
        let mut enc = Enc::new();
        original.encode_state_into(&mut enc);
        let bytes = enc.into_bytes();
        let cfg =
            || HostConfig::small_test().with_faults(FaultConfig::uniform(0.05).with_seed(0x7a17));

        for len in (0..bytes.len()).step_by(211).chain([bytes.len() - 1]) {
            let mut dec = Dec::new(&bytes[..len]);
            Host::from_snapshot_state(cfg(), &mut dec)
                .expect_err("truncated host snapshot must fail");
        }

        // A snapshot restored under a mismatched geometry is rejected.
        let mut small = cfg();
        small.dimm = DimmProfile::test_profile(128 << 20);
        let mut dec = Dec::new(&bytes);
        assert_eq!(
            Host::from_snapshot_state(small, &mut dec).err(),
            Some(SnapError::Corrupt("buddy zone does not match geometry"))
        );
    }

    #[test]
    fn forked_hosts_share_pages_then_diverge() {
        let parent = worked_host();
        let mut fork = parent.fork();
        assert_eq!(
            fork.buddy().free_state_digest(),
            parent.buddy().free_state_digest()
        );
        assert!(fork.dram().store().shared_pages() > 0, "fork should be CoW");

        // Identical futures when driven identically...
        let mut twin = parent.fork();
        assert_eq!(fork.alloc_ept_page().ok(), twin.alloc_ept_page().ok());
        assert_eq!(fork.rng_mut().next_u64(), twin.rng_mut().next_u64());

        // ...and writes after the fork stay on their side.
        let probe = Pfn::new(200).base_hpa();
        fork.dram_mut().fill(probe, PAGE_SIZE, 0xee);
        assert_ne!(parent.dram().store().read_u8(probe), 0xee);
    }

    #[test]
    fn s3_has_more_noise_than_s1() {
        // Construction of full 16 GiB hosts is cheap: DRAM is sparse.
        let s1 = Host::new(HostConfig::s1());
        let s3 = Host::new(HostConfig::s3());
        assert!(s3.noise_pages() > s1.noise_pages());
        assert!(s1.noise_pages() > 10_000);
    }
}

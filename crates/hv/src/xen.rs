//! A minimal Xen-style hypervisor model for the §6 comparison.
//!
//! The paper's discussion argues Page Steering is *easier* on Xen than on
//! KVM, because of two differences this module reproduces:
//!
//! 1. A guest can release memory **proactively** with the
//!    `XENMEM_decrease_reservation` hypercall ([`XenDomain::decrease_reservation`]),
//!    which frees pages to the domheap via `free_domheap_pages` — no
//!    device negotiation, no sub-block granularity constraints.
//! 2. Xen's heap allocator (`alloc_domheap_pages`) **does not segregate
//!    migration types**: p2m (Xen's EPT) page allocations draw from the
//!    same free pool the guest just released into, so there is no
//!    `MIGRATE_UNMOVABLE` noise population to exhaust first — the entire
//!    §4.2.1 vIOMMU step disappears.
//!
//! The model reuses the buddy allocator (with a single migration type)
//! and the EPT implementation (Xen's HAP/p2m tables have the same shape),
//! so reuse statistics are directly comparable with the KVM path.

use hh_buddy::{BuddyAllocator, MigrateType};
use hh_sim::addr::{Gpa, Pfn, HUGE_PAGE_SIZE};
use std::collections::BTreeMap;

use crate::ept::Ept;
use crate::host::Host;
use crate::HvError;

/// A guest domain under the Xen-style model.
///
/// # Examples
///
/// ```
/// use hh_hv::xen::XenDomain;
/// use hh_hv::{Host, HostConfig};
/// use hh_sim::Gpa;
///
/// let mut host = Host::new(HostConfig::small_test());
/// let mut dom = XenDomain::create(&mut host, 16 << 21)?;
/// // Proactive release — no device, no negotiation:
/// dom.decrease_reservation(&mut host, Gpa::new(2 << 21))?;
/// assert_eq!(host.released_log().len(), 512);
/// # Ok::<(), hh_hv::HvError>(())
/// ```
#[derive(Debug)]
pub struct XenDomain {
    p2m: Ept,
    /// 2 MiB chunk index → backing block.
    backing: BTreeMap<u64, Pfn>,
    mem_bytes: u64,
}

impl XenDomain {
    /// Creates a domain with `mem_bytes` of 2 MiB-backed memory.
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfHostMemory`] when the heap cannot back it.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is not 2 MiB-aligned or zero.
    pub fn create(host: &mut Host, mem_bytes: u64) -> Result<Self, HvError> {
        assert!(mem_bytes > 0 && mem_bytes.is_multiple_of(HUGE_PAGE_SIZE));
        let p2m = Ept::new(host)?;
        let mut dom = Self {
            p2m,
            backing: BTreeMap::new(),
            mem_bytes,
        };
        for chunk in 0..mem_bytes / HUGE_PAGE_SIZE {
            dom.populate_chunk(host, chunk)?;
        }
        Ok(dom)
    }

    fn populate_chunk(&mut self, host: &mut Host, chunk: u64) -> Result<(), HvError> {
        // Xen does not distinguish migration types; everything is "heap".
        let block = Self::alloc_domheap(host.buddy_mut(), 9)?;
        self.p2m.map_huge(
            host,
            Gpa::new(chunk * HUGE_PAGE_SIZE),
            block.base_hpa(),
            true,
        )?;
        self.backing.insert(chunk, block);
        Ok(())
    }

    /// `alloc_domheap_pages`: one free pool, no type segregation.
    fn alloc_domheap(buddy: &mut BuddyAllocator, order: u8) -> Result<Pfn, HvError> {
        Ok(buddy.alloc(order, MigrateType::Movable)?)
    }

    /// Domain memory size.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// The `XENMEM_decrease_reservation` hypercall: the guest proactively
    /// releases a 2 MiB extent; Xen frees it straight to the domheap
    /// (`free_domheap_pages`), where the very next p2m allocation can
    /// pick it up.
    ///
    /// # Errors
    ///
    /// [`HvError::NotPlugged`] if the extent is already gone;
    /// [`HvError::BadSubBlock`] for unaligned addresses.
    pub fn decrease_reservation(&mut self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        if !gpa.is_aligned(HUGE_PAGE_SIZE) {
            return Err(HvError::BadSubBlock(gpa));
        }
        let chunk = gpa.raw() / HUGE_PAGE_SIZE;
        let block = self
            .backing
            .remove(&chunk)
            .ok_or(HvError::NotPlugged(gpa))?;
        self.p2m.unmap(host, gpa)?;
        host.buddy_mut().free(block, 9);
        host.log_released(block, 512);
        host.charge_virtio_mem_unplug(); // comparable hypercall cost
        Ok(())
    }

    /// `XENMEM_populate_physmap`: re-backs a released extent.
    ///
    /// # Errors
    ///
    /// [`HvError::AlreadyPlugged`] if still populated; allocation errors.
    pub fn populate_physmap(&mut self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        let chunk = gpa.raw() / HUGE_PAGE_SIZE;
        if self.backing.contains_key(&chunk) {
            return Err(HvError::AlreadyPlugged(gpa));
        }
        self.populate_chunk(host, chunk)
    }

    /// Forces a p2m split of the 2 MiB mapping at `gpa` — Xen demotes
    /// superpages for the same class of reasons KVM does (page-type
    /// changes, mem_access, the multihit-style errata), allocating a p2m
    /// table page from the domheap in the process.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if the chunk has no 2 MiB mapping.
    pub fn demote_superpage(&mut self, host: &mut Host, gpa: Gpa) -> Result<Pfn, HvError> {
        // p2m table pages come from the same undifferentiated heap —
        // `alloc_domheap_pages` does not separate migration types.
        self.p2m.split_huge_typed(host, gpa, MigrateType::Movable)
    }

    /// All p2m table pages (for reuse statistics).
    pub fn p2m_table_pages(&self, host: &Host) -> Vec<Pfn> {
        self.p2m
            .table_pages(host)
            .into_iter()
            .map(|(pfn, _)| pfn)
            .collect()
    }

    /// Tears the domain down.
    pub fn destroy(mut self, host: &mut Host) {
        for (_, block) in std::mem::take(&mut self.backing) {
            host.buddy_mut().free(block, 9);
        }
        self.p2m.destroy(host);
    }
}

/// Reuse statistics for the Xen-style steering experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XenReuse {
    /// Pages the guest released.
    pub released: u64,
    /// p2m table pages in the system.
    pub p2m_pages: u64,
    /// Released pages now holding p2m tables.
    pub reused: u64,
}

/// Runs the §6 Xen steering comparison: release `blocks` extents, demote
/// `demotions` superpages, count how many p2m pages landed on released
/// frames — with **no** exhaustion step at all.
///
/// # Errors
///
/// Propagates domain operation failures.
pub fn steering_experiment(
    host: &mut Host,
    dom: &mut XenDomain,
    blocks: u64,
    demotions: u64,
) -> Result<XenReuse, HvError> {
    host.reset_released_log();
    let total_chunks = dom.mem_bytes() / HUGE_PAGE_SIZE;
    let stride = (total_chunks / blocks).max(1);
    for i in 0..blocks {
        dom.decrease_reservation(host, Gpa::new((i * stride % total_chunks) * HUGE_PAGE_SIZE))?;
    }
    let mut demoted = 0;
    for chunk in 0..total_chunks {
        if demoted >= demotions {
            break;
        }
        let gpa = Gpa::new(chunk * HUGE_PAGE_SIZE);
        if dom.demote_superpage(host, gpa).is_ok() {
            demoted += 1;
        }
    }
    let released: std::collections::HashSet<u64> =
        host.released_log().iter().map(|p| p.index()).collect();
    let p2m = dom.p2m_table_pages(host);
    let reused = p2m.iter().filter(|p| released.contains(&p.index())).count() as u64;
    Ok(XenReuse {
        released: released.len() as u64,
        p2m_pages: p2m.len() as u64,
        reused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;

    fn host() -> Host {
        Host::new(HostConfig::small_test())
    }

    #[test]
    fn domain_lifecycle() {
        let mut h = host();
        let free_before = h.buddy().free_pages();
        let dom = XenDomain::create(&mut h, 8 << 21).unwrap();
        assert!(h.buddy().free_pages() < free_before);
        dom.destroy(&mut h);
        assert_eq!(h.buddy().free_pages(), free_before);
    }

    #[test]
    fn decrease_reservation_is_unconditional() {
        // No quarantine, no target negotiation: the hypercall always
        // works — the §6 point about Xen.
        let mut h = host();
        let mut dom = XenDomain::create(&mut h, 8 << 21).unwrap();
        for chunk in 0..4u64 {
            dom.decrease_reservation(&mut h, Gpa::new(chunk * HUGE_PAGE_SIZE))
                .unwrap();
        }
        assert_eq!(h.released_log().len(), 4 * 512);
        // Double release fails cleanly.
        assert!(dom.decrease_reservation(&mut h, Gpa::new(0)).is_err());
        dom.destroy(&mut h);
    }

    #[test]
    fn populate_round_trip() {
        let mut h = host();
        let mut dom = XenDomain::create(&mut h, 8 << 21).unwrap();
        dom.decrease_reservation(&mut h, Gpa::new(2 << 21)).unwrap();
        dom.populate_physmap(&mut h, Gpa::new(2 << 21)).unwrap();
        assert!(dom.populate_physmap(&mut h, Gpa::new(2 << 21)).is_err());
        dom.destroy(&mut h);
    }

    #[test]
    fn steering_needs_no_exhaustion_on_xen() {
        let mut h = host();
        let mut dom = XenDomain::create(&mut h, 48 << 21).unwrap();
        let reuse = steering_experiment(&mut h, &mut dom, 4, 40).unwrap();
        assert!(
            reuse.reused > 0,
            "released frames must be reused for p2m with no exhaustion step: {reuse:?}"
        );
        assert!(reuse.p2m_pages >= 40);
        dom.destroy(&mut h);
    }
}

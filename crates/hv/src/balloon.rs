//! virtio-balloon device state.
//!
//! The §6 discussion of the paper analyses virtio-balloon as an
//! alternative release channel: unlike virtio-mem it operates on
//! individual 4 KiB pages, so an attacker needs no sub-block alignment —
//! but releasing a page of a THP-backed chunk first splits the hugepage
//! (and, under the iTLB-Multihit countermeasure model, its EPT mapping).
//! The protocol-level state lives here; the host-side mechanics are in
//! [`crate::vm::Vm::balloon_inflate`].

use std::collections::BTreeSet;

use hh_sim::addr::{Gpa, PAGE_SIZE};

use crate::HvError;

/// Balloon state: the set of guest pages currently surrendered.
#[derive(Debug, Clone, Default)]
pub struct VirtioBalloon {
    inflated: BTreeSet<u64>,
}

impl VirtioBalloon {
    /// Creates a deflated balloon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages currently inside the balloon.
    pub fn inflated_pages(&self) -> u64 {
        self.inflated.len() as u64
    }

    /// Is this guest page inside the balloon?
    pub fn is_inflated(&self, gpa: Gpa) -> bool {
        self.inflated.contains(&(gpa.raw() / PAGE_SIZE))
    }

    /// Records a page entering the balloon.
    ///
    /// # Errors
    ///
    /// [`HvError::AlreadyInflated`] on duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `gpa` is not page-aligned.
    pub fn inflate(&mut self, gpa: Gpa) -> Result<(), HvError> {
        assert!(gpa.is_aligned(PAGE_SIZE));
        if !self.inflated.insert(gpa.raw() / PAGE_SIZE) {
            return Err(HvError::AlreadyInflated(gpa));
        }
        Ok(())
    }

    /// Records a page leaving the balloon.
    ///
    /// # Errors
    ///
    /// [`HvError::NotInflated`] if the page is not ballooned.
    ///
    /// # Panics
    ///
    /// Panics if `gpa` is not page-aligned.
    pub fn deflate(&mut self, gpa: Gpa) -> Result<(), HvError> {
        assert!(gpa.is_aligned(PAGE_SIZE));
        if !self.inflated.remove(&(gpa.raw() / PAGE_SIZE)) {
            return Err(HvError::NotInflated(gpa));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflate_deflate_roundtrip() {
        let mut b = VirtioBalloon::new();
        let p = Gpa::new(0x4000);
        b.inflate(p).unwrap();
        assert!(b.is_inflated(p));
        assert_eq!(b.inflated_pages(), 1);
        assert_eq!(b.inflate(p), Err(HvError::AlreadyInflated(p)));
        b.deflate(p).unwrap();
        assert_eq!(b.deflate(p), Err(HvError::NotInflated(p)));
        assert_eq!(b.inflated_pages(), 0);
    }
}

//! Hostile-host fault injection.
//!
//! The paper's end-to-end attack is probabilistic: the authors simply
//! re-run stages until an attempt lands (§6–§7). This module supplies
//! the *hostile* side of that bargain — a deterministic, seed-driven
//! [`FaultPlan`] that injects transient failures at the three steering
//! choke points (vIOMMU map/unmap, virtio-mem unplug, EPT split), each
//! surfacing as [`HvError::Transient`] so recovery code can tell a
//! retryable hiccup from a fatal error. Allocation jitter on the
//! order-0 page path is configured here too but lives in `hh-buddy`
//! ([`hh_buddy::AllocJitter`]).
//!
//! Every decision is a pure function of `(fault seed, host seed, draw
//! index, simulated time)`: the same configuration replays the same
//! faults at the same simulated instants, independent of worker count,
//! so faulted campaigns stay bit-identical for any `--jobs`.

use hh_sim::rng::SplitMix64;

use crate::error::FaultStage;

/// Fault-injection rates per choke point, plus the plan's seed.
///
/// The default configuration injects nothing, so hosts built from
/// untouched configs behave byte-identically to earlier revisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a vIOMMU map/unmap fails transiently.
    pub viommu_rate: f64,
    /// Probability a virtio-mem unplug fails transiently.
    pub virtio_mem_rate: f64,
    /// Probability an EPT hugepage split fails transiently.
    pub ept_split_rate: f64,
    /// Probability an order-0 page allocation fails transiently
    /// (implemented by [`hh_buddy::AllocJitter`]).
    pub alloc_rate: f64,
    /// Fault-stream seed, mixed with the host seed so per-cell streams
    /// in a campaign grid stay independent.
    pub seed: u64,
}

impl FaultConfig {
    /// No injection at any choke point.
    pub const fn off() -> Self {
        Self {
            viommu_rate: 0.0,
            virtio_mem_rate: 0.0,
            ept_split_rate: 0.0,
            alloc_rate: 0.0,
            seed: 0,
        }
    }

    /// The same rate at every choke point (the CLI's `--faults R`).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} out of range"
        );
        Self {
            viommu_rate: rate,
            virtio_mem_rate: rate,
            ept_split_rate: rate,
            alloc_rate: rate,
            seed: 0,
        }
    }

    /// Returns a copy with a different fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any choke point has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.viommu_rate > 0.0
            || self.virtio_mem_rate > 0.0
            || self.ept_split_rate > 0.0
            || self.alloc_rate > 0.0
    }

    fn rate(&self, stage: FaultStage) -> f64 {
        match stage {
            FaultStage::ViommuMap | FaultStage::ViommuUnmap => self.viommu_rate,
            FaultStage::VirtioMemUnplug => self.virtio_mem_rate,
            FaultStage::EptSplit => self.ept_split_rate,
            FaultStage::BuddyAlloc => self.alloc_rate,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// The host's deterministic fault schedule.
///
/// [`check`](Self::check) is called at every choke point *before* the
/// operation has any side effect, so an injected [`HvError::Transient`]
/// always leaves the host in the pre-operation state and the caller can
/// retry after a backoff.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    stream_seed: u64,
    draws: u64,
}

impl FaultPlan {
    /// Builds the plan for a host; `host_seed` keeps plans on different
    /// campaign cells statistically independent even under one shared
    /// `FaultConfig::seed`.
    pub fn new(config: FaultConfig, host_seed: u64) -> Self {
        let stream_seed = SplitMix64::new(config.seed ^ host_seed.rotate_left(23)).next();
        Self {
            config,
            stream_seed,
            draws: 0,
        }
    }

    /// The configuration the plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Fault-die draws so far (one per checked choke-point operation
    /// with a nonzero rate).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Restores the draw counter captured by [`draws`](Self::draws).
    /// Decisions are pure in `(stream seed, draw index, simulated
    /// time)`, so this resumes the fault schedule exactly — the machine
    /// snapshot hook.
    pub fn set_draws(&mut self, draws: u64) {
        self.draws = draws;
    }

    /// The deterministic seed for the buddy allocator's jitter stream
    /// (kept separate from [`check`](Self::check) draws so allocator
    /// traffic never perturbs choke-point schedules).
    pub fn jitter_seed(&self) -> u64 {
        SplitMix64::new(self.stream_seed ^ 0xa110_c377).next()
    }

    /// Rolls the fault die for `stage` at simulated time `now_nanos`.
    ///
    /// Returns the modelled cause when a fault fires. The decision is a
    /// pure function of `(stream seed, draw index, now_nanos)` — the
    /// plan advances with the simulated clock, and replaying the same
    /// deterministic execution replays the same faults.
    pub fn check(&mut self, stage: FaultStage, now_nanos: u64) -> Option<&'static str> {
        let rate = self.config.rate(stage);
        if rate <= 0.0 {
            return None;
        }
        self.draws += 1;
        let x = SplitMix64::new(
            self.stream_seed ^ self.draws.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ now_nanos,
        )
        .next();
        // 53 uniform mantissa bits, the same construction SimRng uses.
        let uniform = ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        if uniform >= rate {
            return None;
        }
        Some(match stage {
            FaultStage::ViommuMap | FaultStage::ViommuUnmap => "iotlb flush timeout",
            FaultStage::VirtioMemUnplug => "unplug request dropped",
            FaultStage::EptSplit => "mmu lock contention",
            FaultStage::BuddyAlloc => "allocation jitter",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_never_fires_and_never_draws() {
        let mut plan = FaultPlan::new(FaultConfig::off(), 0x5eed);
        for t in 0..1_000 {
            assert_eq!(plan.check(FaultStage::ViommuMap, t), None);
        }
        assert_eq!(plan.draws(), 0, "zero-rate checks must not draw");
    }

    #[test]
    fn plan_is_deterministic_in_seed_and_time() {
        let cfg = FaultConfig::uniform(0.3).with_seed(0xfa);
        let run = |host_seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::new(cfg, host_seed);
            (0..200)
                .map(|t| plan.check(FaultStage::EptSplit, t * 1_000).is_some())
                .collect()
        };
        assert_eq!(run(1), run(1), "same seeds replay the same schedule");
        assert_ne!(run(1), run(2), "host seed perturbs the schedule");
        let fired = run(1).iter().filter(|&&b| b).count();
        assert!(
            (20..=120).contains(&fired),
            "rate 0.3 over 200 draws fired {fired} times"
        );
    }

    #[test]
    fn uniform_rate_applies_to_every_choke_point() {
        let cfg = FaultConfig::uniform(0.25);
        assert!(cfg.is_active());
        for stage in [
            FaultStage::ViommuMap,
            FaultStage::ViommuUnmap,
            FaultStage::VirtioMemUnplug,
            FaultStage::EptSplit,
            FaultStage::BuddyAlloc,
        ] {
            assert_eq!(cfg.rate(stage), 0.25);
        }
        assert!(!FaultConfig::off().is_active());
    }
}

//! The virtual IOMMU (vIOMMU) and its IOPT pages.
//!
//! With a PCI device assigned through VFIO and vIOMMU enabled, the guest
//! can establish DMA mappings from its I/O virtual address space to its
//! own pages. The hypervisor materializes each mapping in IOMMU page
//! tables; the property the attack exploits (§4.2.1) is that every
//! 2 MiB-aligned window of IOVA space needs its own **order-0
//! `MIGRATE_UNMOVABLE`** leaf IOPT page (512 entries × 4 KiB), and that
//! vIOMMU caps a group at **65 535 mappings**. Mapping one guest page at
//! 60 000 IOVAs spaced 2 MiB apart therefore drains ~60 000 small-order
//! unmovable pages from the host's free lists.

use std::collections::HashMap;

use hh_sim::addr::{Gpa, Hpa, Iova, Pfn, HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::error::FaultStage;
use crate::host::Host;
use crate::HvError;

/// Default vIOMMU mapping cap per IOMMU group.
pub const MAX_MAPPINGS_PER_GROUP: usize = 65_535;

/// One IOMMU group: the unit of isolation a passed-through device (or an
/// SR-IOV virtual function) lives in.
#[derive(Debug, Clone, Default)]
pub struct IommuGroup {
    /// IOVA page index → target HPA (resolved at map time, as VFIO pins).
    mappings: HashMap<u64, Hpa>,
    /// 2 MiB IOVA window index → leaf IOPT page backing it.
    iopt_pages: HashMap<u64, Pfn>,
}

impl IommuGroup {
    /// Creates an empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Number of leaf IOPT pages currently allocated.
    pub fn iopt_page_count(&self) -> usize {
        self.iopt_pages.len()
    }

    /// Maps `iova → hpa` (the caller resolves GPA→HPA first), allocating
    /// a leaf IOPT page if this is the first mapping in its 2 MiB window.
    ///
    /// # Errors
    ///
    /// [`HvError::IommuMapLimit`] at 65 535 mappings;
    /// [`HvError::IovaAlreadyMapped`] on duplicates; allocation errors
    /// propagate.
    ///
    /// # Panics
    ///
    /// Panics if `iova` or `hpa` is not page-aligned.
    pub fn map(&mut self, host: &mut Host, iova: Iova, hpa: Hpa) -> Result<(), HvError> {
        assert!(iova.is_aligned(PAGE_SIZE) && hpa.is_aligned(PAGE_SIZE));
        if self.mappings.len() >= MAX_MAPPINGS_PER_GROUP {
            return Err(HvError::IommuMapLimit);
        }
        let page_index = iova.raw() / PAGE_SIZE;
        if self.mappings.contains_key(&page_index) {
            return Err(HvError::IovaAlreadyMapped(iova));
        }
        // Fault choke point: past validation, before any side effect, so
        // an injected transient leaves the group untouched.
        host.fault_check(FaultStage::ViommuMap)?;
        let window = iova.raw() / HUGE_PAGE_SIZE;
        if let std::collections::hash_map::Entry::Vacant(e) = self.iopt_pages.entry(window) {
            let pt = host.alloc_iopt_page()?;
            e.insert(pt);
        }
        // Write the entry into the IOPT page in DRAM for fidelity.
        let pt = self.iopt_pages[&window];
        let slot = (iova.raw() / PAGE_SIZE) % 512;
        host.dram_mut()
            .store_mut()
            .write_u64(pt.base_hpa().add(slot * 8), hpa.raw() | 0b11);
        self.mappings.insert(page_index, hpa);
        host.charge_viommu_map();
        host.tracer().viommu_map(iova.raw());
        Ok(())
    }

    /// Removes the mapping at `iova`, freeing its IOPT page when the
    /// 2 MiB window empties.
    ///
    /// # Errors
    ///
    /// [`HvError::IovaNotMapped`] if no mapping exists.
    pub fn unmap(&mut self, host: &mut Host, iova: Iova) -> Result<(), HvError> {
        let page_index = iova.raw() / PAGE_SIZE;
        if !self.mappings.contains_key(&page_index) {
            return Err(HvError::IovaNotMapped(iova));
        }
        // Fault choke point: checked before the mapping is removed.
        host.fault_check(FaultStage::ViommuUnmap)?;
        self.mappings.remove(&page_index);
        let window = iova.raw() / HUGE_PAGE_SIZE;
        let pt = self.iopt_pages[&window];
        let slot = page_index % 512;
        host.dram_mut()
            .store_mut()
            .write_u64(pt.base_hpa().add(slot * 8), 0);
        let window_now_empty = !self
            .mappings
            .keys()
            .any(|&p| p * PAGE_SIZE / HUGE_PAGE_SIZE == window);
        if window_now_empty {
            let pt = self.iopt_pages.remove(&window).expect("window had a page");
            host.free_iopt_page(pt);
        }
        Ok(())
    }

    /// Translates an IOVA the way a device DMA would.
    ///
    /// # Errors
    ///
    /// [`HvError::IovaNotMapped`] if no mapping exists.
    pub fn translate(&self, iova: Iova) -> Result<Hpa, HvError> {
        let page_index = iova.raw() / PAGE_SIZE;
        let base = self
            .mappings
            .get(&page_index)
            .ok_or(HvError::IovaNotMapped(iova))?;
        Ok(base.add(iova.page_offset()))
    }

    /// Releases every mapping and IOPT page (device unassignment / VM
    /// teardown).
    pub fn destroy(&mut self, host: &mut Host) {
        self.mappings.clear();
        // Free in IOVA-window order: HashMap drain order varies run to
        // run, the buddy free lists are LIFO, and campaign determinism
        // requires teardown to leave the allocator in a reproducible
        // state.
        let mut pages: Vec<(u64, Pfn)> = self.iopt_pages.drain().collect();
        pages.sort_unstable_by_key(|&(window, _)| window);
        for (_, pt) in pages {
            host.free_iopt_page(pt);
        }
    }
}

/// Target of a vIOMMU mapping request from the guest: the guest names a
/// GPA, the hypervisor resolves and pins it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapRequest {
    /// I/O virtual address to map.
    pub iova: Iova,
    /// Guest page to make DMA-visible.
    pub gpa: Gpa,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;

    fn host() -> Host {
        Host::new(HostConfig::small_test())
    }

    #[test]
    fn each_2mib_window_costs_one_unmovable_page() {
        let mut h = host();
        let mut g = IommuGroup::new();
        let target = Hpa::new(0x5000);
        let before = h.noise_pages();
        for i in 0..10u64 {
            g.map(&mut h, Iova::new(i * HUGE_PAGE_SIZE), target)
                .unwrap();
        }
        assert_eq!(g.iopt_page_count(), 10);
        assert_eq!(g.mapping_count(), 10);
        // Ten free small unmovable pages were consumed (PCP effects may
        // shift the exact count; direction must hold).
        assert!(h.noise_pages() < before);
    }

    #[test]
    fn same_window_shares_one_iopt_page() {
        let mut h = host();
        let mut g = IommuGroup::new();
        for i in 0..4u64 {
            g.map(&mut h, Iova::new(i * PAGE_SIZE), Hpa::new(0x5000))
                .unwrap();
        }
        assert_eq!(g.iopt_page_count(), 1);
        assert_eq!(g.mapping_count(), 4);
    }

    #[test]
    fn translation_roundtrip() {
        let mut h = host();
        let mut g = IommuGroup::new();
        g.map(&mut h, Iova::new(0x40_0000), Hpa::new(0x9000))
            .unwrap();
        assert_eq!(g.translate(Iova::new(0x40_0123)).unwrap(), Hpa::new(0x9123));
        assert!(g.translate(Iova::new(0)).is_err());
    }

    #[test]
    fn duplicate_mapping_rejected() {
        let mut h = host();
        let mut g = IommuGroup::new();
        g.map(&mut h, Iova::new(0), Hpa::new(0x1000)).unwrap();
        assert_eq!(
            g.map(&mut h, Iova::new(0), Hpa::new(0x2000)),
            Err(HvError::IovaAlreadyMapped(Iova::new(0)))
        );
    }

    #[test]
    fn mapping_limit_enforced() {
        // Use a tiny synthetic limit by filling to the real one would be
        // slow; instead verify the check against a nearly full map.
        let mut h = host();
        let mut g = IommuGroup::new();
        // Fill fake mappings directly (same window, distinct pages).
        for i in 0..MAX_MAPPINGS_PER_GROUP as u64 {
            g.mappings.insert(i, Hpa::new(0x1000));
        }
        assert_eq!(
            g.map(&mut h, Iova::new(1 << 40), Hpa::new(0x1000)),
            Err(HvError::IommuMapLimit)
        );
    }

    #[test]
    fn unmap_frees_iopt_page_when_window_empties() {
        let mut h = host();
        let mut g = IommuGroup::new();
        g.map(&mut h, Iova::new(0), Hpa::new(0x1000)).unwrap();
        g.map(&mut h, Iova::new(PAGE_SIZE), Hpa::new(0x1000))
            .unwrap();
        g.unmap(&mut h, Iova::new(0)).unwrap();
        assert_eq!(g.iopt_page_count(), 1, "window still has a mapping");
        g.unmap(&mut h, Iova::new(PAGE_SIZE)).unwrap();
        assert_eq!(g.iopt_page_count(), 0);
    }

    #[test]
    fn destroy_returns_all_pages() {
        let mut h = host();
        let free_before = h.buddy().free_pages();
        let mut g = IommuGroup::new();
        for i in 0..32u64 {
            g.map(&mut h, Iova::new(i * HUGE_PAGE_SIZE), Hpa::new(0x3000))
                .unwrap();
        }
        g.destroy(&mut h);
        assert_eq!(h.buddy().free_pages(), free_before);
        assert_eq!(g.mapping_count(), 0);
    }

    #[test]
    fn iopt_entries_are_written_to_dram() {
        let mut h = host();
        let mut g = IommuGroup::new();
        g.map(&mut h, Iova::new(0x40_1000), Hpa::new(0xabc000))
            .unwrap();
        let pt = g.iopt_pages[&(0x40_1000u64 / HUGE_PAGE_SIZE)];
        let slot = (0x40_1000u64 / PAGE_SIZE) % 512;
        let raw = h.dram().store().read_u64(pt.base_hpa().add(slot * 8));
        assert_eq!(raw, 0xabc000 | 0b11);
    }
}

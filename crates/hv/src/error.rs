//! Hypervisor error type.

use std::fmt;

use hh_buddy::AllocError;
use hh_sim::{Gpa, Iova};

/// The steering choke points where the host's fault plan can inject a
/// transient failure (see [`crate::FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStage {
    /// vIOMMU DMA map (`IommuGroup::map`).
    ViommuMap,
    /// vIOMMU DMA unmap (`IommuGroup::unmap`).
    ViommuUnmap,
    /// virtio-mem sub-block unplug.
    VirtioMemUnplug,
    /// iTLB-Multihit EPT hugepage split.
    EptSplit,
    /// Host buddy-allocator page allocation (jitter).
    BuddyAlloc,
}

impl FaultStage {
    /// Stable lower-snake name (used in trace events and messages).
    pub const fn name(self) -> &'static str {
        match self {
            FaultStage::ViommuMap => "viommu_map",
            FaultStage::ViommuUnmap => "viommu_unmap",
            FaultStage::VirtioMemUnplug => "virtio_mem_unplug",
            FaultStage::EptSplit => "ept_split",
            FaultStage::BuddyAlloc => "buddy_alloc",
        }
    }
}

/// Errors surfaced by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvError {
    /// The host ran out of memory.
    OutOfHostMemory(AllocError),
    /// A transient, retryable failure injected by the host's fault plan.
    /// Unlike every other variant, the operation left no side effects and
    /// may simply be retried after a backoff.
    Transient {
        /// Choke point the fault hit.
        stage: FaultStage,
        /// Modelled cause of the failure.
        cause: &'static str,
    },
    /// A guest-physical address has no EPT mapping.
    Unmapped(Gpa),
    /// A guest-physical address is outside the VM's address space.
    OutOfGuestRange(Gpa),
    /// virtio-mem: the sub-block at this address is not plugged.
    NotPlugged(Gpa),
    /// virtio-mem: the sub-block at this address is already plugged.
    AlreadyPlugged(Gpa),
    /// virtio-mem: address not aligned to / inside the device region.
    BadSubBlock(Gpa),
    /// virtio-mem: the host rejected a guest request under the
    /// quarantine countermeasure (the paper's QEMU patch, §6).
    QuarantineNack {
        /// Plugged size at the time of the rejected request, in bytes.
        current: u64,
        /// Host-requested target size, in bytes.
        requested: u64,
    },
    /// virtio-mem: the sub-block is not backed by a full 2 MiB THP block,
    /// so it cannot be returned to the host as an order-9 block.
    NotHugeBacked(Gpa),
    /// vIOMMU: per-group mapping limit (65 535) exceeded.
    IommuMapLimit,
    /// vIOMMU: mapping already exists for this I/O virtual address.
    IovaAlreadyMapped(Iova),
    /// vIOMMU: no mapping exists for this I/O virtual address.
    IovaNotMapped(Iova),
    /// virtio-balloon: the page is already inflated (released).
    AlreadyInflated(Gpa),
    /// virtio-balloon: the page is not inflated.
    NotInflated(Gpa),
    /// Execution attempted at an unmapped or non-executable address and
    /// the fault could not be resolved.
    ExecFault(Gpa),
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::OutOfHostMemory(e) => write!(f, "host allocation failed: {e}"),
            HvError::Transient { stage, cause } => {
                write!(f, "transient fault at {}: {cause}", stage.name())
            }
            HvError::Unmapped(gpa) => write!(f, "no EPT mapping for {gpa}"),
            HvError::OutOfGuestRange(gpa) => write!(f, "{gpa} outside guest address space"),
            HvError::NotPlugged(gpa) => write!(f, "sub-block at {gpa} is not plugged"),
            HvError::AlreadyPlugged(gpa) => write!(f, "sub-block at {gpa} is already plugged"),
            HvError::BadSubBlock(gpa) => write!(f, "{gpa} is not a valid sub-block address"),
            HvError::QuarantineNack { current, requested } => write!(
                f,
                "unplug rejected by quarantine (plugged {current} <= requested {requested})"
            ),
            HvError::NotHugeBacked(gpa) => {
                write!(f, "sub-block at {gpa} is not backed by a 2 MiB block")
            }
            HvError::IommuMapLimit => write!(f, "vIOMMU mapping limit (65535) reached"),
            HvError::IovaAlreadyMapped(iova) => write!(f, "{iova} is already mapped"),
            HvError::IovaNotMapped(iova) => write!(f, "{iova} is not mapped"),
            HvError::AlreadyInflated(gpa) => write!(f, "balloon page at {gpa} already inflated"),
            HvError::NotInflated(gpa) => write!(f, "balloon page at {gpa} not inflated"),
            HvError::ExecFault(gpa) => write!(f, "execution fault at {gpa}"),
        }
    }
}

impl std::error::Error for HvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HvError::OutOfHostMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl HvError {
    /// Whether the error is a retryable [`HvError::Transient`] fault.
    pub const fn is_transient(&self) -> bool {
        matches!(self, HvError::Transient { .. })
    }
}

impl From<AllocError> for HvError {
    fn from(e: AllocError) -> Self {
        match e {
            // Jitter is retryable; real exhaustion is not.
            AllocError::Transient => HvError::Transient {
                stage: FaultStage::BuddyAlloc,
                cause: "allocation jitter",
            },
            other => HvError::OutOfHostMemory(other),
        }
    }
}

//! The virtio-mem guest-memory device (gMD).
//!
//! virtio-mem lets the hypervisor resize a VM's memory at runtime in
//! 2 MiB *sub-blocks* (§4.1). The protocol is cooperative: the host sets
//! a `requested_size`; the guest driver plugs or unplugs sub-blocks to
//! converge on it. The paper's key observation (§4.2.2) is that QEMU/KVM
//! **does not enforce** the direction of convergence — a malicious guest
//! driver can unplug any sub-block it likes, whenever it likes, and
//! suppress the automatic re-plug. That voluntary-release path is what
//! Page Steering uses to hand vulnerable hugepages back to the host
//! allocator.
//!
//! [`QuarantinePolicy::QemuPatch`] implements the countermeasure the
//! authors submitted to QEMU (§6): reject guest requests that move
//! *away* from the host target or overshoot it.

use hh_sim::addr::{Gpa, HUGE_PAGE_SIZE};

use crate::error::FaultStage;
use crate::host::Host;
use crate::HvError;

/// Size of a virtio-mem sub-block: 2 MiB, aligned with THP and order-9
/// buddy blocks.
pub const SUB_BLOCK_SIZE: u64 = HUGE_PAGE_SIZE;

/// Host-side policing of guest memory-change requests (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuarantinePolicy {
    /// Stock QEMU behaviour: guest requests are honoured unconditionally.
    #[default]
    Off,
    /// The authors' QEMU patch: "prohibit unplugging when
    /// `size <= requested`" — i.e. NACK any unplug that would take the
    /// plugged size at or below the host-requested target, and any plug
    /// that overshoots it.
    QemuPatch,
}

impl QuarantinePolicy {
    /// Does the policy admit an unplug of `delta` bytes?
    pub fn permits_unplug(self, plugged: u64, requested: u64, delta: u64) -> bool {
        match self {
            QuarantinePolicy::Off => true,
            // Unplugging is only legitimate while converging down:
            // plugged must stay strictly above the target before the
            // operation, and must not undershoot it after.
            QuarantinePolicy::QemuPatch => plugged > requested && plugged - delta >= requested,
        }
    }

    /// Does the policy admit a plug of `delta` bytes?
    pub fn permits_plug(self, plugged: u64, requested: u64, delta: u64) -> bool {
        match self {
            QuarantinePolicy::Off => true,
            QuarantinePolicy::QemuPatch => plugged + delta <= requested,
        }
    }
}

/// Device state for one VM's virtio-mem region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtioMemDevice {
    region_base: Gpa,
    sub_blocks: u64,
    plugged: Vec<bool>,
    requested_size: u64,
}

impl VirtioMemDevice {
    /// Creates a fully plugged device covering `size` bytes at
    /// `region_base`, with the host target equal to the full size.
    ///
    /// # Panics
    ///
    /// Panics if base or size are not sub-block aligned, or size is zero.
    pub fn new(region_base: Gpa, size: u64) -> Self {
        assert!(
            region_base.is_aligned(SUB_BLOCK_SIZE),
            "unaligned region base"
        );
        assert!(
            size > 0 && size.is_multiple_of(SUB_BLOCK_SIZE),
            "bad region size"
        );
        let sub_blocks = size / SUB_BLOCK_SIZE;
        Self {
            region_base,
            sub_blocks,
            plugged: vec![true; sub_blocks as usize],
            requested_size: size,
        }
    }

    /// First guest-physical address of the region.
    pub fn region_base(&self) -> Gpa {
        self.region_base
    }

    /// Region size in bytes.
    pub fn region_size(&self) -> u64 {
        self.sub_blocks * SUB_BLOCK_SIZE
    }

    /// Currently plugged bytes.
    pub fn plugged_size(&self) -> u64 {
        self.plugged.iter().filter(|&&p| p).count() as u64 * SUB_BLOCK_SIZE
    }

    /// The host-requested target size.
    pub fn requested_size(&self) -> u64 {
        self.requested_size
    }

    /// Host side: set a new target size (the legitimate resize path).
    ///
    /// # Panics
    ///
    /// Panics if the target is not sub-block aligned or exceeds the
    /// region.
    pub fn set_requested_size(&mut self, bytes: u64) {
        assert!(bytes.is_multiple_of(SUB_BLOCK_SIZE) && bytes <= self.region_size());
        self.requested_size = bytes;
    }

    /// Sub-block index of a guest-physical address.
    ///
    /// # Errors
    ///
    /// [`HvError::BadSubBlock`] if unaligned or outside the region.
    pub fn sub_block_of(&self, gpa: Gpa) -> Result<u64, HvError> {
        if !gpa.is_aligned(SUB_BLOCK_SIZE)
            || gpa < self.region_base
            || gpa.offset_from(self.region_base) >= self.region_size()
        {
            return Err(HvError::BadSubBlock(gpa));
        }
        Ok(gpa.offset_from(self.region_base) / SUB_BLOCK_SIZE)
    }

    /// Guest-physical base address of a sub-block index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn sub_block_base(&self, index: u64) -> Gpa {
        assert!(index < self.sub_blocks, "sub-block index out of range");
        self.region_base.add(index * SUB_BLOCK_SIZE)
    }

    /// Is the sub-block at `gpa` plugged?
    ///
    /// # Errors
    ///
    /// [`HvError::BadSubBlock`] for invalid addresses.
    pub fn is_plugged(&self, gpa: Gpa) -> Result<bool, HvError> {
        Ok(self.plugged[self.sub_block_of(gpa)? as usize])
    }

    /// Marks a sub-block unplugged after the quarantine check.
    ///
    /// This is the protocol-level half of an unplug; the caller
    /// ([`crate::vm::Vm::virtio_mem_unplug`]) releases the backing.
    ///
    /// # Errors
    ///
    /// [`HvError::BadSubBlock`], [`HvError::NotPlugged`], or
    /// [`HvError::QuarantineNack`] per the policy.
    pub fn unplug(&mut self, gpa: Gpa, policy: QuarantinePolicy) -> Result<(), HvError> {
        let index = self.sub_block_of(gpa)?;
        if !self.plugged[index as usize] {
            return Err(HvError::NotPlugged(gpa));
        }
        let plugged = self.plugged_size();
        if !policy.permits_unplug(plugged, self.requested_size, SUB_BLOCK_SIZE) {
            return Err(HvError::QuarantineNack {
                current: plugged,
                requested: self.requested_size,
            });
        }
        self.plugged[index as usize] = false;
        Ok(())
    }

    /// [`Self::unplug`] with the host's fault plan consulted first —
    /// the paper's second steering choke point. Validation and the
    /// quarantine check run before the fault roll, so an injected
    /// transient leaves the device state untouched and the request can
    /// simply be re-issued.
    ///
    /// # Errors
    ///
    /// Everything [`Self::unplug`] returns, plus [`HvError::Transient`]
    /// when the host's fault plan drops the request.
    pub fn unplug_on(&mut self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        let policy = host.quarantine();
        let index = self.sub_block_of(gpa)?;
        if !self.plugged[index as usize] {
            return Err(HvError::NotPlugged(gpa));
        }
        let plugged = self.plugged_size();
        if !policy.permits_unplug(plugged, self.requested_size, SUB_BLOCK_SIZE) {
            return Err(HvError::QuarantineNack {
                current: plugged,
                requested: self.requested_size,
            });
        }
        host.fault_check(FaultStage::VirtioMemUnplug)?;
        self.plugged[index as usize] = false;
        Ok(())
    }

    /// Marks a sub-block plugged after the quarantine check.
    ///
    /// # Errors
    ///
    /// [`HvError::BadSubBlock`], [`HvError::AlreadyPlugged`], or
    /// [`HvError::QuarantineNack`] per the policy.
    pub fn plug(&mut self, gpa: Gpa, policy: QuarantinePolicy) -> Result<(), HvError> {
        let index = self.sub_block_of(gpa)?;
        if self.plugged[index as usize] {
            return Err(HvError::AlreadyPlugged(gpa));
        }
        let plugged = self.plugged_size();
        if !policy.permits_plug(plugged, self.requested_size, SUB_BLOCK_SIZE) {
            return Err(HvError::QuarantineNack {
                current: plugged,
                requested: self.requested_size,
            });
        }
        self.plugged[index as usize] = true;
        Ok(())
    }

    /// Iterates over the base GPAs of currently plugged sub-blocks.
    pub fn plugged_sub_blocks(&self) -> impl Iterator<Item = Gpa> + '_ {
        self.plugged
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p)
            .map(move |(i, _)| self.region_base.add(i as u64 * SUB_BLOCK_SIZE))
    }

    /// First unplugged sub-block, if any (used by the cooperative driver
    /// when converging upward).
    pub fn first_unplugged(&self) -> Option<Gpa> {
        self.plugged
            .iter()
            .position(|&p| !p)
            .map(|i| self.region_base.add(i as u64 * SUB_BLOCK_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> VirtioMemDevice {
        VirtioMemDevice::new(Gpa::new(1 << 30), 64 * SUB_BLOCK_SIZE)
    }

    #[test]
    fn fresh_device_is_fully_plugged() {
        let d = device();
        assert_eq!(d.plugged_size(), d.region_size());
        assert_eq!(d.plugged_sub_blocks().count(), 64);
        assert_eq!(d.first_unplugged(), None);
    }

    #[test]
    fn voluntary_unplug_with_policy_off() {
        // The attack path: host target says "keep everything", guest
        // unplugs anyway, stock QEMU accepts.
        let mut d = device();
        assert_eq!(d.requested_size(), d.region_size());
        let victim = d.sub_block_base(7);
        d.unplug(victim, QuarantinePolicy::Off).unwrap();
        assert!(!d.is_plugged(victim).unwrap());
        assert_eq!(d.plugged_size(), d.region_size() - SUB_BLOCK_SIZE);
    }

    #[test]
    fn quarantine_nacks_voluntary_unplug() {
        let mut d = device();
        let victim = d.sub_block_base(7);
        let err = d.unplug(victim, QuarantinePolicy::QemuPatch).unwrap_err();
        assert!(matches!(err, HvError::QuarantineNack { .. }));
        assert!(d.is_plugged(victim).unwrap());
    }

    #[test]
    fn quarantine_permits_legitimate_shrink() {
        let mut d = device();
        // Host asks the VM to shrink by two sub-blocks.
        d.set_requested_size(d.region_size() - 2 * SUB_BLOCK_SIZE);
        d.unplug(d.sub_block_base(0), QuarantinePolicy::QemuPatch)
            .unwrap();
        d.unplug(d.sub_block_base(1), QuarantinePolicy::QemuPatch)
            .unwrap();
        // A third unplug would undershoot the target: NACK.
        let err = d
            .unplug(d.sub_block_base(2), QuarantinePolicy::QemuPatch)
            .unwrap_err();
        assert!(matches!(err, HvError::QuarantineNack { .. }));
    }

    #[test]
    fn quarantine_permits_legitimate_grow() {
        let mut d = device();
        d.set_requested_size(d.region_size() - SUB_BLOCK_SIZE);
        d.unplug(d.sub_block_base(5), QuarantinePolicy::Off)
            .unwrap();
        d.unplug(d.sub_block_base(6), QuarantinePolicy::Off)
            .unwrap();
        // Now plugged = region - 2 sub-blocks < requested: plug allowed.
        d.plug(d.sub_block_base(5), QuarantinePolicy::QemuPatch)
            .unwrap();
        // Another plug would overshoot: NACK.
        let err = d
            .plug(d.sub_block_base(6), QuarantinePolicy::QemuPatch)
            .unwrap_err();
        assert!(matches!(err, HvError::QuarantineNack { .. }));
    }

    #[test]
    fn double_unplug_rejected() {
        let mut d = device();
        let b = d.sub_block_base(3);
        d.unplug(b, QuarantinePolicy::Off).unwrap();
        assert_eq!(
            d.unplug(b, QuarantinePolicy::Off),
            Err(HvError::NotPlugged(b))
        );
    }

    #[test]
    fn bad_addresses_rejected() {
        let d = device();
        assert!(matches!(
            d.sub_block_of(Gpa::new(0)),
            Err(HvError::BadSubBlock(_))
        ));
        assert!(matches!(
            d.sub_block_of(Gpa::new((1 << 30) + 0x1000)),
            Err(HvError::BadSubBlock(_))
        ));
        assert!(matches!(
            d.sub_block_of(Gpa::new((1 << 30) + 64 * SUB_BLOCK_SIZE)),
            Err(HvError::BadSubBlock(_))
        ));
    }

    #[test]
    fn first_unplugged_tracks_holes() {
        let mut d = device();
        d.unplug(d.sub_block_base(9), QuarantinePolicy::Off)
            .unwrap();
        assert_eq!(d.first_unplugged(), Some(d.sub_block_base(9)));
        d.plug(d.sub_block_base(9), QuarantinePolicy::Off).unwrap();
        assert_eq!(d.first_unplugged(), None);
    }
}

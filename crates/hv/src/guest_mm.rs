//! Guest-side virtual memory: the attacker is a *process*.
//!
//! The paper's attacker runs as an ordinary program inside the HVM and
//! works with guest-virtual addresses; its kernel maps them to
//! guest-physical frames through the guest's own page tables, ideally as
//! transparent hugepages. The 21-bit physical-address leak (§4.1) needs
//! *both* layers to use 2 MiB mappings: GVA→GPA via guest THP and
//! GPA→HPA via host THP.
//!
//! This module models the guest kernel's memory manager at the level the
//! attack interacts with: an `mmap`-style anonymous allocator over the
//! VM's guest-physical memory, with THP granted to sufficiently large,
//! aligned requests and deniable (`GuestThp::Never`) for the ablation
//! where the attacker loses the address leak.

use std::collections::BTreeMap;

use hh_sim::addr::{Gpa, Gva, HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::HvError;

/// Guest THP policy, mirroring `/sys/kernel/mm/transparent_hugepage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuestThp {
    /// Hugepage-back every eligible (2 MiB-aligned, ≥ 2 MiB) mapping.
    #[default]
    Always,
    /// 4 KiB pages only — the profiling ablation.
    Never,
}

/// One virtual mapping of the attacker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestVma {
    /// First guest-virtual address.
    pub gva: Gva,
    /// Length in bytes.
    pub len: u64,
    /// First backing guest-physical address.
    pub gpa: Gpa,
    /// Whether the mapping is hugepage-backed in the *guest* page tables.
    pub huge: bool,
}

impl GuestVma {
    /// Returns `true` if `gva` falls inside this mapping.
    pub fn contains(&self, gva: Gva) -> bool {
        gva >= self.gva && gva.offset_from(self.gva) < self.len
    }
}

/// The guest kernel's memory manager for the attacker process.
///
/// Backing is carved from a caller-supplied pool of guest-physical
/// ranges (typically [`crate::vm::Vm::usable_ranges`]); the manager hands
/// out bump-allocated, hugepage-aligned extents so guest THP lines up
/// with host THP.
///
/// # Examples
///
/// ```
/// use hh_hv::guest_mm::{GuestMm, GuestThp};
/// use hh_sim::{Gpa, Gva};
///
/// let mut mm = GuestMm::new(vec![(Gpa::new(0), 8 << 21)], GuestThp::Always);
/// let buf = mm.mmap(4 << 21).unwrap();
/// assert!(buf.huge);
/// let gpa = mm.translate(buf.gva.add(0x123456)).unwrap();
/// // Guest THP preserves the low 21 bits.
/// assert_eq!(gpa.raw() & 0x1f_ffff, buf.gva.add(0x123456).raw() & 0x1f_ffff);
/// ```
#[derive(Debug, Clone)]
pub struct GuestMm {
    thp: GuestThp,
    /// Free guest-physical extents, bump-allocated.
    free_pool: Vec<(Gpa, u64)>,
    /// Live mappings by base GVA.
    vmas: BTreeMap<u64, GuestVma>,
    next_gva: u64,
}

impl GuestMm {
    /// Base of the guest-virtual mmap area (arbitrary, away from zero so
    /// null-ish GVAs fault).
    const MMAP_BASE: u64 = 0x7f00_0000_0000;

    /// Creates a manager over the given guest-physical pool. Adjacent
    /// extents are coalesced so large mappings can span them (e.g. the
    /// contiguous 2 MiB sub-blocks of [`crate::vm::Vm::usable_ranges`]).
    pub fn new(pool: Vec<(Gpa, u64)>, thp: GuestThp) -> Self {
        let mut sorted = pool;
        sorted.sort_by_key(|&(base, _)| base.raw());
        let mut merged: Vec<(Gpa, u64)> = Vec::with_capacity(sorted.len());
        for (base, len) in sorted {
            match merged.last_mut() {
                Some((last_base, last_len)) if last_base.add(*last_len) == base => {
                    *last_len += len;
                }
                _ => merged.push((base, len)),
            }
        }
        Self {
            thp,
            free_pool: merged,
            vmas: BTreeMap::new(),
            next_gva: Self::MMAP_BASE,
        }
    }

    /// The THP policy in force.
    pub fn thp(&self) -> GuestThp {
        self.thp
    }

    /// Anonymous `mmap`: allocates `len` bytes of virtual address space
    /// with physical backing. Hugepage-aligned requests of ≥ 2 MiB get
    /// guest THP under [`GuestThp::Always`].
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfGuestRange`] when the backing pool is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not page-aligned.
    pub fn mmap(&mut self, len: u64) -> Result<GuestVma, HvError> {
        assert!(len > 0 && len.is_multiple_of(PAGE_SIZE), "bad mmap length");
        let want_huge = self.thp == GuestThp::Always && len >= HUGE_PAGE_SIZE;
        let align = if want_huge { HUGE_PAGE_SIZE } else { PAGE_SIZE };

        // Find a pool extent with enough aligned space.
        for slot in self.free_pool.iter_mut() {
            let (base, avail) = *slot;
            let aligned = base.align_up(align);
            let waste = aligned.offset_from(base);
            if avail < waste || avail - waste < len {
                continue;
            }
            *slot = (aligned.add(len), avail - waste - len);
            let gva = Gva::new(if want_huge {
                // Keep GVA and GPA congruent modulo 2 MiB so the low-21-bit
                // leak composes through both translation layers.
                (self.next_gva + HUGE_PAGE_SIZE - 1) & !(HUGE_PAGE_SIZE - 1)
            } else {
                self.next_gva
            });
            self.next_gva = gva.raw() + len + PAGE_SIZE; // guard gap
            let vma = GuestVma {
                gva,
                len,
                gpa: aligned,
                huge: want_huge,
            };
            self.vmas.insert(gva.raw(), vma);
            return Ok(vma);
        }
        Err(HvError::OutOfGuestRange(Gpa::new(0)))
    }

    /// Unmaps a mapping. The physical backing returns to the pool.
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfGuestRange`] if `gva` is not a mapping base.
    pub fn munmap(&mut self, gva: Gva) -> Result<(), HvError> {
        let vma = self
            .vmas
            .remove(&gva.raw())
            .ok_or(HvError::OutOfGuestRange(Gpa::new(gva.raw())))?;
        self.free_pool.push((vma.gpa, vma.len));
        Ok(())
    }

    /// Translates a guest-virtual address to guest-physical, the way the
    /// guest page tables would.
    ///
    /// # Errors
    ///
    /// [`HvError::OutOfGuestRange`] for unmapped GVAs.
    pub fn translate(&self, gva: Gva) -> Result<Gpa, HvError> {
        let vma = self
            .vmas
            .range(..=gva.raw())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(gva))
            .ok_or(HvError::OutOfGuestRange(Gpa::new(gva.raw())))?;
        Ok(vma.gpa.add(gva.offset_from(vma.gva)))
    }

    /// Live mappings, in GVA order.
    pub fn vmas(&self) -> impl Iterator<Item = &GuestVma> {
        self.vmas.values()
    }

    /// Remaining backing capacity in bytes.
    pub fn pool_remaining(&self) -> u64 {
        self.free_pool.iter().map(|&(_, len)| len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_16m() -> Vec<(Gpa, u64)> {
        vec![(Gpa::new(0), 16 << 20)]
    }

    #[test]
    fn thp_mapping_preserves_low_21_bits() {
        let mut mm = GuestMm::new(pool_16m(), GuestThp::Always);
        let vma = mm.mmap(4 << 21).unwrap();
        assert!(vma.huge);
        for off in [0u64, 0x1234, 0x1f_ffff, 0x20_0000, 0x3e_dcba] {
            let gva = vma.gva.add(off);
            let gpa = mm.translate(gva).unwrap();
            assert_eq!(gva.raw() & 0x1f_ffff, gpa.raw() & 0x1f_ffff);
        }
    }

    #[test]
    fn no_thp_means_no_alignment_guarantee_needed() {
        let mut mm = GuestMm::new(vec![(Gpa::new(0x1000), 8 << 20)], GuestThp::Never);
        let vma = mm.mmap(2 << 20).unwrap();
        assert!(!vma.huge);
        // Translation still exact.
        assert_eq!(mm.translate(vma.gva).unwrap(), vma.gpa);
    }

    #[test]
    fn small_mappings_are_never_huge() {
        let mut mm = GuestMm::new(pool_16m(), GuestThp::Always);
        let vma = mm.mmap(PAGE_SIZE * 3).unwrap();
        assert!(!vma.huge);
    }

    #[test]
    fn mappings_do_not_overlap() {
        let mut mm = GuestMm::new(pool_16m(), GuestThp::Always);
        let a = mm.mmap(2 << 20).unwrap();
        let b = mm.mmap(2 << 20).unwrap();
        assert!(a.gva.add(a.len) <= b.gva || b.gva.add(b.len) <= a.gva);
        assert!(a.gpa.add(a.len) <= b.gpa || b.gpa.add(b.len) <= a.gpa);
    }

    #[test]
    fn unmapped_gva_faults() {
        let mut mm = GuestMm::new(pool_16m(), GuestThp::Always);
        let vma = mm.mmap(2 << 20).unwrap();
        assert!(mm.translate(Gva::new(0x1000)).is_err());
        assert!(mm.translate(vma.gva.add(vma.len)).is_err());
    }

    #[test]
    fn munmap_recycles_backing() {
        let mut mm = GuestMm::new(pool_16m(), GuestThp::Always);
        let before = mm.pool_remaining();
        let vma = mm.mmap(4 << 20).unwrap();
        assert!(mm.pool_remaining() < before);
        mm.munmap(vma.gva).unwrap();
        assert_eq!(mm.pool_remaining(), before);
        assert!(mm.translate(vma.gva).is_err());
        assert!(mm.munmap(vma.gva).is_err());
    }

    #[test]
    fn exhaustion_reports_out_of_range() {
        let mut mm = GuestMm::new(vec![(Gpa::new(0), 4 << 20)], GuestThp::Always);
        mm.mmap(2 << 20).unwrap();
        // Alignment waste makes a second full 2 MiB impossible.
        assert!(mm.mmap(4 << 20).is_err());
    }

    #[test]
    #[should_panic(expected = "bad mmap length")]
    fn unaligned_len_panics() {
        GuestMm::new(pool_16m(), GuestThp::Always).mmap(123).ok();
    }
}

//! Four-level extended page tables with the Intel EPTE layout.
//!
//! The defining design decision of this module: **table pages live inside
//! the simulated DRAM**. Every walk reads entry bytes from the
//! [`hh_dram::store::SparseStore`], so when the attack's Rowhammer step
//! flips a PFN bit inside an EPT page (§4.3), subsequent guest accesses
//! really do land on the redirected host-physical page — the exploit is
//! not scripted, it happens.
//!
//! Entry layout (Intel SDM Vol. 3C, table 29-7, simplified to the bits
//! the attack interacts with):
//!
//! | bits   | meaning                                  |
//! |--------|------------------------------------------|
//! | 0      | read                                     |
//! | 1      | write                                    |
//! | 2      | execute — cleared on hugepages by the iTLB-Multihit countermeasure |
//! | 7      | page size (1 = 2 MiB leaf, in the PD)    |
//! | 12–47  | host PFN                                 |
//!
//! The attack targets PFN bits 21–⌈log₂ mem⌉ of leaf entries (§4.1).

use hh_sim::addr::{Gpa, Hpa, Pfn, HUGE_PAGE_SIZE, PAGE_SIZE};

use crate::host::Host;
use crate::HvError;

/// Number of 8-byte entries in one table page.
pub const ENTRIES_PER_TABLE: u64 = 512;

/// An extended-page-table entry.
///
/// # Examples
///
/// ```
/// use hh_hv::ept::Epte;
/// use hh_sim::Pfn;
///
/// let e = Epte::leaf(Pfn::new(0x1234), true);
/// assert!(e.is_present() && e.is_executable());
/// assert_eq!(e.pfn(), Pfn::new(0x1234));
/// let nx = e.with_executable(false);
/// assert!(!nx.is_executable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Epte(u64);

impl Epte {
    const READ: u64 = 1 << 0;
    const WRITE: u64 = 1 << 1;
    const EXEC: u64 = 1 << 2;
    const LARGE: u64 = 1 << 7;
    const PFN_MASK: u64 = ((1u64 << 48) - 1) & !0xfff;

    /// The all-zero (not-present) entry.
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Creates an entry from its raw 64-bit encoding.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw 64-bit encoding.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// A present RW leaf entry for a 4 KiB page.
    pub fn leaf(pfn: Pfn, executable: bool) -> Self {
        let mut raw = (pfn.index() << 12) & Self::PFN_MASK | Self::READ | Self::WRITE;
        if executable {
            raw |= Self::EXEC;
        }
        Self(raw)
    }

    /// A present RW leaf entry for a 2 MiB hugepage (page-size bit set).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not hugepage-aligned.
    pub fn huge_leaf(pfn: Pfn, executable: bool) -> Self {
        assert!(
            pfn.is_huge_aligned(),
            "huge leaf needs a 2 MiB-aligned frame"
        );
        Self(Self::leaf(pfn, executable).0 | Self::LARGE)
    }

    /// A non-leaf entry pointing at the next-level table page.
    pub fn table(pfn: Pfn) -> Self {
        Self((pfn.index() << 12) & Self::PFN_MASK | Self::READ | Self::WRITE | Self::EXEC)
    }

    /// `true` if any permission bit is set (entry present).
    pub fn is_present(self) -> bool {
        self.0 & (Self::READ | Self::WRITE | Self::EXEC) != 0
    }

    /// `true` if the execute bit (bit 2) is set.
    pub fn is_executable(self) -> bool {
        self.0 & Self::EXEC != 0
    }

    /// `true` if the page-size bit (bit 7) marks this a 2 MiB leaf.
    pub fn is_large(self) -> bool {
        self.0 & Self::LARGE != 0
    }

    /// The referenced host frame (bits 12–47).
    pub fn pfn(self) -> Pfn {
        Pfn::new((self.0 & Self::PFN_MASK) >> 12)
    }

    /// Copy with the execute bit set or cleared — the iTLB-Multihit
    /// countermeasure's lever (§4.2.3).
    pub fn with_executable(self, executable: bool) -> Self {
        if executable {
            Self(self.0 | Self::EXEC)
        } else {
            Self(self.0 & !Self::EXEC)
        }
    }

    /// Copy pointing at a different frame, permissions unchanged.
    pub fn with_pfn(self, pfn: Pfn) -> Self {
        Self(self.0 & !Self::PFN_MASK | (pfn.index() << 12) & Self::PFN_MASK)
    }
}

/// Translation result level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingLevel {
    /// Mapped by a 4 KiB leaf in a PT.
    Page4K,
    /// Mapped by a 2 MiB leaf in a PD.
    Huge2M,
}

/// A resolved guest-physical translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Host-physical address of the byte.
    pub hpa: Hpa,
    /// Mapping granularity that produced it.
    pub level: MappingLevel,
    /// The leaf entry (post-corruption contents, read from DRAM).
    pub entry: Epte,
    /// Host-physical address of the leaf entry itself.
    pub entry_hpa: Hpa,
}

/// EPT paging mode (§2.2: "There are two modes for multi-level EPTs,
/// i.e., 4-level and 5-level EPTs"). The paper's attack targets leaf
/// pages, which exist identically in both; the mode only changes the
/// walk depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EptMode {
    /// 4-level (PML4 root): 48-bit guest-physical space. The paper's
    /// focus and the default.
    #[default]
    FourLevel,
    /// 5-level (PML5 root): 57-bit guest-physical space.
    FiveLevel,
}

impl EptMode {
    /// Number of table levels.
    pub fn levels(self) -> u8 {
        match self {
            EptMode::FourLevel => 4,
            EptMode::FiveLevel => 5,
        }
    }
}

/// A 4- or 5-level EPT hierarchy rooted at a table page in host DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ept {
    root: Pfn,
    mode: EptMode,
}

/// Index of the entry for `gpa` at `level` (5/4 = root … 1 = PT).
fn level_index(gpa: Gpa, level: u8) -> u64 {
    (gpa.raw() >> (12 + 9 * (u64::from(level) - 1))) & (ENTRIES_PER_TABLE - 1)
}

impl Ept {
    /// Allocates a fresh, zeroed root table page.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::OutOfHostMemory`] if the host cannot allocate.
    pub fn new(host: &mut Host) -> Result<Self, HvError> {
        Self::new_with_mode(host, EptMode::FourLevel)
    }

    /// Allocates a root for the given paging mode.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::OutOfHostMemory`] if the host cannot allocate.
    pub fn new_with_mode(host: &mut Host, mode: EptMode) -> Result<Self, HvError> {
        Ok(Self {
            root: host.alloc_ept_page()?,
            mode,
        })
    }

    /// Root table frame.
    pub fn root(self) -> Pfn {
        self.root
    }

    /// The paging mode.
    pub fn mode(self) -> EptMode {
        self.mode
    }

    fn read_entry(host: &Host, table: Pfn, index: u64) -> Epte {
        Epte::from_raw(
            host.dram()
                .store()
                .read_u64(table.base_hpa().add(index * 8)),
        )
    }

    fn write_entry(host: &mut Host, table: Pfn, index: u64, entry: Epte) {
        host.dram_mut()
            .store_mut()
            .write_u64(table.base_hpa().add(index * 8), entry.raw());
    }

    /// Walks down to `target_level`, allocating intermediate tables on
    /// demand, and returns the table page holding the entry for `gpa`.
    fn table_for(self, host: &mut Host, gpa: Gpa, target_level: u8) -> Result<Pfn, HvError> {
        let mut table = self.root;
        for level in (target_level + 1..=self.mode.levels()).rev() {
            let index = level_index(gpa, level);
            let entry = Self::read_entry(host, table, index);
            let next = if entry.is_present() {
                assert!(
                    !entry.is_large(),
                    "walk through a leaf at level {level}: remap over hugepage?"
                );
                entry.pfn()
            } else {
                let page = host.alloc_ept_page()?;
                Self::write_entry(host, table, index, Epte::table(page));
                page
            };
            table = next;
        }
        Ok(table)
    }

    /// Installs a 2 MiB leaf mapping `gpa → hpa` in the page directory.
    ///
    /// # Errors
    ///
    /// Propagates host allocation failure for intermediate tables.
    ///
    /// # Panics
    ///
    /// Panics if either address is not 2 MiB-aligned.
    pub fn map_huge(
        self,
        host: &mut Host,
        gpa: Gpa,
        hpa: Hpa,
        executable: bool,
    ) -> Result<(), HvError> {
        assert!(gpa.is_aligned(HUGE_PAGE_SIZE) && hpa.is_aligned(HUGE_PAGE_SIZE));
        let pd = self.table_for(host, gpa, 2)?;
        Self::write_entry(
            host,
            pd,
            level_index(gpa, 2),
            Epte::huge_leaf(hpa.pfn(), executable),
        );
        Ok(())
    }

    /// Installs a 4 KiB leaf mapping `gpa → hpa` in a page table.
    ///
    /// # Errors
    ///
    /// Propagates host allocation failure for intermediate tables.
    ///
    /// # Panics
    ///
    /// Panics if either address is not 4 KiB-aligned.
    pub fn map_4k(
        self,
        host: &mut Host,
        gpa: Gpa,
        hpa: Hpa,
        executable: bool,
    ) -> Result<(), HvError> {
        assert!(gpa.is_aligned(PAGE_SIZE) && hpa.is_aligned(PAGE_SIZE));
        let pt = self.table_for(host, gpa, 1)?;
        Self::write_entry(
            host,
            pt,
            level_index(gpa, 1),
            Epte::leaf(hpa.pfn(), executable),
        );
        Ok(())
    }

    /// Removes the mapping covering `gpa` (2 MiB leaf or 4 KiB leaf).
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if nothing maps `gpa`.
    pub fn unmap(self, host: &mut Host, gpa: Gpa) -> Result<(), HvError> {
        let mut table = self.root;
        for level in (1..=self.mode.levels()).rev() {
            let index = level_index(gpa, level);
            let entry = Self::read_entry(host, table, index);
            if !entry.is_present() {
                return Err(HvError::Unmapped(gpa));
            }
            if level == 1 || entry.is_large() {
                Self::write_entry(host, table, index, Epte::empty());
                return Ok(());
            }
            table = entry.pfn();
        }
        unreachable!("walk always terminates at level 1")
    }

    /// Translates `gpa`, reading entries from simulated DRAM (honest with
    /// respect to corruption).
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if the walk hits a non-present entry.
    pub fn translate(self, host: &Host, gpa: Gpa) -> Result<Translation, HvError> {
        let mut table = self.root;
        for level in (1..=self.mode.levels()).rev() {
            let index = level_index(gpa, level);
            let entry_hpa = table.base_hpa().add(index * 8);
            let entry = Self::read_entry(host, table, index);
            if !entry.is_present() {
                return Err(HvError::Unmapped(gpa));
            }
            if level == 2 && entry.is_large() {
                return Ok(Translation {
                    hpa: entry.pfn().base_hpa().add(gpa.huge_page_offset()),
                    level: MappingLevel::Huge2M,
                    entry,
                    entry_hpa,
                });
            }
            if level == 1 {
                return Ok(Translation {
                    hpa: entry.pfn().base_hpa().add(gpa.page_offset()),
                    level: MappingLevel::Page4K,
                    entry,
                    entry_hpa,
                });
            }
            table = entry.pfn();
        }
        unreachable!("walk always terminates at level 1")
    }

    /// The iTLB-Multihit countermeasure's split (§4.2.3): demotes the
    /// 2 MiB mapping covering `gpa` into 512 executable 4 KiB entries
    /// stored in a **newly allocated** EPT page, and returns that page.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if `gpa` is not covered by a 2 MiB leaf;
    /// [`HvError::OutOfHostMemory`] if the PT page cannot be allocated.
    pub fn split_huge(self, host: &mut Host, gpa: Gpa) -> Result<Pfn, HvError> {
        self.split_huge_typed(host, gpa, hh_buddy::MigrateType::Unmovable)
    }

    /// [`Self::split_huge`] with an explicit migration type for the new
    /// table page (the Xen-style model allocates from the
    /// undifferentiated heap).
    ///
    /// # Errors
    ///
    /// Same as [`Self::split_huge`].
    pub fn split_huge_typed(
        self,
        host: &mut Host,
        gpa: Gpa,
        mt: hh_buddy::MigrateType,
    ) -> Result<Pfn, HvError> {
        let pd = self.table_for(host, gpa, 2)?;
        let index = level_index(gpa, 2);
        let entry = Self::read_entry(host, pd, index);
        if !entry.is_present() || !entry.is_large() {
            return Err(HvError::Unmapped(gpa));
        }
        // Fault choke point: past validation, before the PT page is
        // allocated, so an injected transient leaves the EPT untouched.
        host.fault_check(crate::error::FaultStage::EptSplit)?;
        let pt = host.alloc_ept_page_typed(mt)?;
        let base = entry.pfn();
        // Build the whole PT page and store it in one operation.
        let mut bytes = Box::new([0u8; PAGE_SIZE as usize]);
        for i in 0..ENTRIES_PER_TABLE {
            let raw = Epte::leaf(base.add(i), true).raw().to_le_bytes();
            bytes[(i * 8) as usize..(i * 8 + 8) as usize].copy_from_slice(&raw);
        }
        host.dram_mut().store_mut().write_page(pt.base_hpa(), bytes);
        Self::write_entry(host, pd, index, Epte::table(pt));
        host.charge_hugepage_split();
        host.tracer().ept_split(gpa.raw());
        Ok(pt)
    }

    /// Collects every table page of the hierarchy: `(frame, level)`
    /// pairs, level 4 = root … level 1 = leaf PT pages. This is the
    /// "dump EPT pages" debug facility the paper adds for Table 2.
    pub fn table_pages(self, host: &Host) -> Vec<(Pfn, u8)> {
        let mut out = Vec::new();
        self.collect_tables(host, self.root, self.mode.levels(), &mut out);
        out
    }

    /// Leaf (level-1) PT pages only — the population Page Steering
    /// places on vulnerable frames.
    pub fn leaf_table_pages(self, host: &Host) -> Vec<Pfn> {
        self.table_pages(host)
            .into_iter()
            .filter(|&(_, level)| level == 1)
            .map(|(pfn, _)| pfn)
            .collect()
    }

    fn collect_tables(self, host: &Host, table: Pfn, level: u8, out: &mut Vec<(Pfn, u8)>) {
        out.push((table, level));
        if level == 1 {
            return;
        }
        for i in 0..ENTRIES_PER_TABLE {
            let entry = Self::read_entry(host, table, i);
            if entry.is_present() && !entry.is_large() {
                self.collect_tables(host, entry.pfn(), level - 1, out);
            }
        }
    }

    /// Frees every table page back to the host (VM teardown).
    pub fn destroy(self, host: &mut Host) {
        for (pfn, _) in self.table_pages(host) {
            host.free_ept_page(pfn);
        }
    }

    /// Host-physical address of the *leaf* entry covering `gpa`, without
    /// requiring the walk to succeed past it. Experiment aid.
    ///
    /// # Errors
    ///
    /// [`HvError::Unmapped`] if the walk fails before a leaf.
    pub fn leaf_entry_hpa(self, host: &Host, gpa: Gpa) -> Result<Hpa, HvError> {
        self.translate(host, gpa).map(|t| t.entry_hpa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;

    fn host() -> Host {
        Host::new(HostConfig::small_test())
    }

    #[test]
    fn epte_bit_layout() {
        let e = Epte::leaf(Pfn::new(0xabcde), false);
        assert_eq!(e.raw() & 0x7, 0b011); // R+W, no X
        assert_eq!(e.pfn(), Pfn::new(0xabcde));
        assert!(!e.is_large());
        let h = Epte::huge_leaf(Pfn::new(0x200), true);
        assert!(h.is_large() && h.is_executable());
        assert_eq!(h.raw() & (1 << 7), 1 << 7);
    }

    #[test]
    fn epte_pfn_field_is_bits_12_to_47() {
        let e = Epte::from_raw(0xffff_ffff_ffff_ffff);
        assert_eq!(e.pfn().index(), (1 << 36) - 1);
        let e2 = Epte::leaf(Pfn::new(0), true).with_pfn(Pfn::new(1 << 35));
        assert_eq!(e2.pfn(), Pfn::new(1 << 35));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn huge_leaf_requires_alignment() {
        Epte::huge_leaf(Pfn::new(3), true);
    }

    #[test]
    fn map_4k_translate_roundtrip() {
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        let hpa = Hpa::new(0x7000);
        ept.map_4k(&mut h, Gpa::new(0x40201000), hpa, false)
            .unwrap();
        let t = ept.translate(&h, Gpa::new(0x40201123)).unwrap();
        assert_eq!(t.hpa, Hpa::new(0x7123));
        assert_eq!(t.level, MappingLevel::Page4K);
    }

    #[test]
    fn map_huge_translate_roundtrip() {
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        ept.map_huge(&mut h, Gpa::new(0x4000_0000), Hpa::new(0x60_0000), false)
            .unwrap();
        let t = ept
            .translate(&h, Gpa::new(0x4000_0000 + 0x12_3456))
            .unwrap();
        assert_eq!(t.hpa, Hpa::new(0x60_0000 + 0x12_3456));
        assert_eq!(t.level, MappingLevel::Huge2M);
        assert!(!t.entry.is_executable(), "hugepages are mapped NX");
    }

    #[test]
    fn unmapped_translation_fails() {
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        assert_eq!(
            ept.translate(&h, Gpa::new(0x1000)),
            Err(HvError::Unmapped(Gpa::new(0x1000)))
        );
    }

    #[test]
    fn split_preserves_translation_and_allocates_one_page() {
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        ept.map_huge(&mut h, Gpa::new(0), Hpa::new(0x20_0000), false)
            .unwrap();
        let before = ept.table_pages(&h).len();
        let pt = ept.split_huge(&mut h, Gpa::new(0x1000)).unwrap();
        assert_eq!(ept.table_pages(&h).len(), before + 1);
        assert!(ept.leaf_table_pages(&h).contains(&pt));
        // Same byte translates to the same HPA, now via a 4 KiB leaf,
        // executable.
        let t = ept.translate(&h, Gpa::new(0x4321)).unwrap();
        assert_eq!(t.hpa, Hpa::new(0x20_4321));
        assert_eq!(t.level, MappingLevel::Page4K);
        assert!(t.entry.is_executable());
    }

    #[test]
    fn split_requires_a_huge_leaf() {
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        ept.map_4k(&mut h, Gpa::new(0x1000), Hpa::new(0x5000), true)
            .unwrap();
        assert!(ept.split_huge(&mut h, Gpa::new(0x1000)).is_err());
    }

    #[test]
    fn corrupting_an_entry_in_dram_redirects_translation() {
        // The core honesty property: flips in DRAM change walks.
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        ept.map_4k(&mut h, Gpa::new(0x2000), Hpa::new(0x8000), false)
            .unwrap();
        let t = ept.translate(&h, Gpa::new(0x2000)).unwrap();
        // Flip PFN bit 21 of the leaf entry directly in DRAM.
        let raw = h.dram().store().read_u64(t.entry_hpa);
        h.dram_mut()
            .store_mut()
            .write_u64(t.entry_hpa, raw ^ (1 << 21));
        let t2 = ept.translate(&h, Gpa::new(0x2000)).unwrap();
        assert_eq!(t2.hpa.raw(), 0x8000u64 ^ (1 << 21));
    }

    #[test]
    fn unmap_removes_mapping() {
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        ept.map_huge(&mut h, Gpa::new(0x20_0000), Hpa::new(0x40_0000), false)
            .unwrap();
        ept.unmap(&mut h, Gpa::new(0x20_0000)).unwrap();
        assert!(ept.translate(&h, Gpa::new(0x20_0000)).is_err());
        assert_eq!(
            ept.unmap(&mut h, Gpa::new(0x20_0000)),
            Err(HvError::Unmapped(Gpa::new(0x20_0000)))
        );
    }

    #[test]
    fn destroy_returns_all_pages() {
        let mut h = host();
        let free_before = h.buddy().free_pages();
        let ept = Ept::new(&mut h).unwrap();
        for i in 0..10u64 {
            ept.map_huge(
                &mut h,
                Gpa::new(i * HUGE_PAGE_SIZE),
                Hpa::new((i + 8) * HUGE_PAGE_SIZE),
                false,
            )
            .unwrap();
        }
        ept.split_huge(&mut h, Gpa::new(0)).unwrap();
        ept.destroy(&mut h);
        assert_eq!(h.buddy().free_pages(), free_before);
    }

    #[test]
    fn table_pages_have_correct_levels() {
        let mut h = host();
        let ept = Ept::new(&mut h).unwrap();
        ept.map_4k(&mut h, Gpa::new(0x1000), Hpa::new(0x3000), false)
            .unwrap();
        let pages = ept.table_pages(&h);
        // PML4 + PDPT + PD + PT.
        assert_eq!(pages.len(), 4);
        let levels: Vec<u8> = pages.iter().map(|&(_, l)| l).collect();
        assert_eq!(levels, vec![4, 3, 2, 1]);
        assert_eq!(ept.leaf_table_pages(&h).len(), 1);
    }
}

//! Property-based tests on hypervisor invariants, driven by the
//! deterministic `hh_sim::check` harness.

use hh_hv::ept::MappingLevel;
use hh_hv::{Host, HostConfig, VmConfig};
use hh_sim::addr::{Gpa, HUGE_PAGE_SIZE, PAGE_SIZE};
use hh_sim::check;

fn small_setup() -> (Host, hh_hv::Vm) {
    let mut host = Host::new(HostConfig::small_test());
    let vm = host.create_vm(VmConfig::small_test()).unwrap();
    (host, vm)
}

const CASES: usize = 32;

/// Translation agrees with the hypercall for every mapped address —
/// until corruption, the EPT walk and hypervisor bookkeeping are two
/// views of one truth.
#[test]
fn translate_matches_hypercall() {
    check::cases(0x4a01, CASES, |rng| {
        let off = rng.gen_range(0u64..36 << 20);
        let (host, vm) = small_setup();
        let gpa = Gpa::new(off);
        let walked = vm.translate_gpa(&host, gpa).unwrap().hpa;
        let hypercall = vm.hypercall_gpa_to_hpa(gpa).unwrap();
        assert_eq!(walked, hypercall);
    });
}

/// Splitting a hugepage never changes any translation in its window.
#[test]
fn split_is_translation_invariant() {
    check::cases(0x4a02, CASES, |rng| {
        let chunk = rng.gen_range(0u64..18);
        let probes: Vec<u64> = (0..8)
            .map(|_| rng.gen_range(0u64..HUGE_PAGE_SIZE))
            .collect();
        let (mut host, mut vm) = small_setup();
        let base = Gpa::new(chunk * HUGE_PAGE_SIZE);
        let before: Vec<_> = probes
            .iter()
            .map(|&p| vm.translate_gpa(&host, base.add(p)).unwrap().hpa)
            .collect();
        vm.exec_gpa(&mut host, base).unwrap();
        for (i, &p) in probes.iter().enumerate() {
            let t = vm.translate_gpa(&host, base.add(p)).unwrap();
            assert_eq!(t.hpa, before[i]);
            assert_eq!(t.level, MappingLevel::Page4K);
        }
    });
}

/// Unplug/plug cycles conserve host free pages exactly, whatever the
/// order of operations.
#[test]
fn virtio_mem_cycles_conserve_memory() {
    check::cases(0x4a03, CASES, |rng| {
        let ops = check::vec_of(rng, 1, 40, |r| (r.gen_range(0u64..16), r.gen_bool(0.5)));
        let (mut host, mut vm) = small_setup();
        let free_at_start = host.buddy().free_pages();
        let region = vm.virtio_mem().region_base();
        for (block, plug) in ops {
            let gpa = region.add(block * HUGE_PAGE_SIZE);
            if plug {
                let _ = vm.virtio_mem_plug(&mut host, gpa);
            } else {
                let _ = vm.virtio_mem_unplug(&mut host, gpa);
            }
        }
        // Re-plug everything, then free pages must match the start.
        vm.virtio_mem_set_requested(vm.virtio_mem().region_size());
        vm.virtio_mem_sync_to_target(&mut host).unwrap();
        assert_eq!(host.buddy().free_pages(), free_at_start);
        vm.destroy(&mut host);
    });
}

/// Released sub-blocks are always logged with exactly 512 consecutive
/// frames starting at an order-9-aligned frame.
#[test]
fn released_blocks_are_aligned_order9() {
    check::cases(0x4a04, 16, |rng| {
        let block = rng.gen_range(0u64..16);
        let (mut host, mut vm) = small_setup();
        let gpa = vm.virtio_mem().region_base().add(block * HUGE_PAGE_SIZE);
        vm.virtio_mem_unplug(&mut host, gpa).unwrap();
        let log = host.released_log();
        assert_eq!(log.len(), 512);
        assert_eq!(log[0].index() % 512, 0);
        for (i, pfn) in log.iter().enumerate() {
            assert_eq!(pfn.index(), log[0].index() + i as u64);
        }
    });
}

/// Balloon inflate/deflate round-trips preserve both translations and
/// free-page accounting.
#[test]
fn balloon_roundtrip() {
    check::cases(0x4a05, CASES, |rng| {
        let mut pages = std::collections::BTreeSet::new();
        let want = rng.gen_range(1usize..12);
        while pages.len() < want {
            pages.insert(rng.gen_range(0u64..1024));
        }
        let (mut host, mut vm) = small_setup();
        let _free_at_start = host.buddy().free_pages();
        let targets: Vec<Gpa> = pages.iter().map(|&p| Gpa::new(p * PAGE_SIZE)).collect();
        for &gpa in &targets {
            vm.balloon_inflate(&mut host, gpa).unwrap();
            assert!(vm.translate_gpa(&host, gpa).is_err());
        }
        for &gpa in &targets {
            vm.balloon_deflate(&mut host, gpa).unwrap();
            assert!(vm.translate_gpa(&host, gpa).is_ok());
        }
        // Inflation freed pages net of EPT pages allocated by splits;
        // deflation re-allocated them: the *guest-visible* state is
        // consistent and the balloon is empty.
        assert_eq!(vm.balloon().inflated_pages(), 0);
        vm.destroy(&mut host);
        assert_eq!(
            host.buddy().free_pages(),
            host.buddy().total_frames() - {
                // Boot noise stays allocated; recompute from a fresh host.
                let fresh = Host::new(HostConfig::small_test());
                fresh.buddy().total_frames() - fresh.buddy().free_pages()
            }
        );
    });
}

/// vIOMMU map/unmap sequences never leak IOPT pages.
#[test]
fn viommu_no_leaks() {
    check::cases(0x4a06, CASES, |rng| {
        let windows = check::vec_of(rng, 1, 32, |r| r.gen_range(0u64..64));
        let (mut host, mut vm) = small_setup();
        let free_before = host.buddy().free_pages();
        let mut mapped = Vec::new();
        for w in windows {
            let iova = hh_sim::Iova::new(w * HUGE_PAGE_SIZE);
            if vm.iommu_map(&mut host, 0, iova, Gpa::new(0)).is_ok() {
                mapped.push(iova);
            }
        }
        for iova in mapped {
            vm.iommu_unmap(&mut host, 0, iova).unwrap();
        }
        assert_eq!(host.buddy().free_pages(), free_before);
    });
}

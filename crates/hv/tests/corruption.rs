//! Corruption-path semantics: what exactly happens when EPT pages in
//! DRAM change under the guest — the contract the exploit builds on.

use hh_hv::ept::MappingLevel;
use hh_hv::{Host, HostConfig, VmConfig};
use hh_sim::addr::{Gpa, Hpa, PAGE_SIZE};

fn setup_split() -> (Host, hh_hv::Vm) {
    let mut host = Host::new(HostConfig::small_test());
    let mut vm = host.create_vm(VmConfig::small_test()).unwrap();
    vm.exec_gpa(&mut host, Gpa::new(0)).unwrap();
    (host, vm)
}

fn flip_pfn_bit(host: &mut Host, entry_hpa: Hpa, bit: u32) {
    let raw = host.dram().store().read_u64(entry_hpa);
    host.dram_mut()
        .store_mut()
        .write_u64(entry_hpa, raw ^ (1u64 << bit));
}

#[test]
fn flip_to_unbacked_frame_reads_zero_dram() {
    // A redirected mapping that stays inside the device reads whatever
    // is there — including untouched (zero) frames.
    let (mut host, mut vm) = setup_split();
    let victim = Gpa::new(0x9000);
    vm.write_u64_gpa(&mut host, victim, 0x1111).unwrap();
    let entry = vm.leaf_epte_hpa(&host, victim).unwrap();
    flip_pfn_bit(&mut host, entry, 25);
    let t = vm.translate_gpa(&host, victim).unwrap();
    if host.dram().geometry().contains(t.hpa) {
        // Still readable, but through a different frame.
        let v = vm.read_u64_gpa(&host, victim).unwrap();
        assert_ne!(v, 0x1111, "must not read the original frame");
    } else {
        assert!(vm.read_u64_gpa(&host, victim).is_err());
    }
}

#[test]
fn flip_off_device_makes_page_unreadable() {
    let (mut host, vm) = setup_split();
    let victim = Gpa::new(0xa000);
    let entry = vm.leaf_epte_hpa(&host, victim).unwrap();
    // Bit 40 of the raw entry = PFN bit 28 → way past a 256 MiB device.
    flip_pfn_bit(&mut host, entry, 40);
    assert!(vm.read_u64_gpa(&host, victim).is_err());
    assert!(vm.read_gpa(&host, victim, 1).is_err());
}

#[test]
fn guest_writes_through_corrupted_mapping_corrupt_the_target() {
    // The escape's mechanism: once an EPTE points at another page, guest
    // stores land there.
    let (mut host, mut vm) = setup_split();
    let victim = Gpa::new(0xb000);
    let entry = vm.leaf_epte_hpa(&host, victim).unwrap();
    let raw = host.dram().store().read_u64(entry);
    // Redirect precisely onto a host-chosen frame.
    let target = host
        .buddy_mut()
        .alloc_page(hh_buddy::MigrateType::Unmovable)
        .unwrap();
    let pfn_mask = ((1u64 << 48) - 1) & !0xfff;
    host.dram_mut()
        .store_mut()
        .write_u64(entry, raw & !pfn_mask | (target.index() << 12));

    vm.write_u64_gpa(&mut host, victim, 0xc0fe).unwrap();
    assert_eq!(host.dram().store().read_u64(target.base_hpa()), 0xc0fe);
}

#[test]
fn low_bit_flips_keep_the_same_frame() {
    // §4.1: flipping PFN bits 12–20 stays inside the same 2 MiB block —
    // and bits below 21 in the *entry* (permissions aside) don't change
    // which 4 KiB frame a 4 KiB mapping uses beyond its block. Verify a
    // bit-12 flip still lands in the original backing block.
    let (mut host, vm) = setup_split();
    let victim = Gpa::new(0xc000);
    let before = vm.translate_gpa(&host, victim).unwrap().hpa;
    let entry = vm.leaf_epte_hpa(&host, victim).unwrap();
    flip_pfn_bit(&mut host, entry, 12);
    let after = vm.translate_gpa(&host, victim).unwrap().hpa;
    assert_ne!(before, after);
    assert_eq!(
        before.align_down(2 << 20),
        after.align_down(2 << 20),
        "bit-12 flip must stay inside the 2 MiB block"
    );
}

#[test]
fn corrupting_a_pd_entry_redirects_a_whole_chunk() {
    // Flips can also land in non-leaf tables; the model walks whatever
    // the tables say. (The attack filters these out via the EPT format
    // check; the substrate must still behave coherently.)
    let (mut host, vm) = setup_split();
    // Translate through the still-huge second chunk; its PD entry is the
    // leaf.
    let gpa = Gpa::new(2 << 21);
    let t = vm.translate_gpa(&host, gpa).unwrap();
    assert_eq!(t.level, MappingLevel::Huge2M);
    let raw = host.dram().store().read_u64(t.entry_hpa);
    host.dram_mut()
        .store_mut()
        .write_u64(t.entry_hpa, raw ^ (1 << 25));
    let t2 = vm.translate_gpa(&host, gpa).unwrap();
    assert_eq!(t2.hpa.raw(), t.hpa.raw() ^ (1 << 25));
    // The whole 2 MiB window moved together.
    let t3 = vm.translate_gpa(&host, gpa.add(0x12345)).unwrap();
    assert_eq!(t3.hpa.raw(), t.hpa.raw() ^ (1 << 25) | 0x12345);
}

#[test]
fn stamp_region_handles_split_and_huge_chunks_alike() {
    let (mut host, mut vm) = setup_split(); // chunk 0 split, others huge
    let magic = |g: Gpa| 0xabcd_0000_0000_0000 | (g.raw() & 0xffff_f000);
    let total = vm.config().total_mem().bytes();
    vm.stamp_region(&mut host, Gpa::new(0), total, 0x11, &magic)
        .unwrap();
    for probe in [0u64, 0x5000, (2 << 21) + 0x3000, total - PAGE_SIZE] {
        let gpa = Gpa::new(probe);
        assert_eq!(vm.read_u64_gpa(&host, gpa).unwrap(), magic(gpa));
        // Fill byte visible past the stamp.
        assert_eq!(vm.read_gpa(&host, gpa.add(9), 1).unwrap()[0], 0x11);
    }
}

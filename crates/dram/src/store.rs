//! Sparse, pattern-compressed byte store for multi-GiB simulated DIMMs.
//!
//! The reproduction simulates hosts with 16 GiB of DRAM; materializing that
//! much memory is neither possible nor necessary. Almost all attack memory
//! is filled with uniform test patterns (0x55/0xAA stripes, magic-value
//! stamps), so pages are stored in one of three forms:
//!
//! * `Uniform(fill)` — every byte equals `fill` (1 byte of state);
//! * `Patched { fill, diffs }` — a uniform page with a few modified bytes
//!   (how Rowhammer flips on pattern-filled memory are stored);
//! * `Dense` — a fully materialized 4 KiB page (EPT pages, code pages).
//!
//! The store also powers fast "scan for corruption" operations: finding
//! bytes that differ from an expected fill is O(#diffs), not O(bytes) —
//! mirroring how a real attacker's linear scan is modelled as a clock cost
//! rather than an actual byte loop.

use std::fmt;
use std::sync::Arc;

use hh_sim::addr::{Hpa, PAGE_SIZE};
use hh_sim::snap::{Dec, Enc, SnapError};

const DENSE_THRESHOLD: usize = 64;

/// One 4 KiB page in its most compact faithful representation.
#[derive(Clone, PartialEq, Eq)]
enum Page {
    Uniform(u8),
    Patched { fill: u8, diffs: Vec<(u16, u8)> },
    Dense(Box<[u8; PAGE_SIZE as usize]>),
}

impl Page {
    fn read(&self, offset: u16) -> u8 {
        match self {
            Page::Uniform(fill) => *fill,
            Page::Patched { fill, diffs } => diffs
                .iter()
                .find(|(o, _)| *o == offset)
                .map_or(*fill, |(_, b)| *b),
            Page::Dense(bytes) => bytes[offset as usize],
        }
    }

    fn write(&mut self, offset: u16, value: u8) {
        match self {
            Page::Uniform(fill) => {
                if *fill != value {
                    *self = Page::Patched {
                        fill: *fill,
                        diffs: vec![(offset, value)],
                    };
                }
            }
            Page::Patched { fill, diffs } => {
                if let Some(slot) = diffs.iter_mut().find(|(o, _)| *o == offset) {
                    slot.1 = value;
                    if value == *fill {
                        diffs.retain(|(_, b)| *b != *fill);
                        if diffs.is_empty() {
                            *self = Page::Uniform(*fill);
                        }
                    }
                } else if value != *fill {
                    diffs.push((offset, value));
                    if diffs.len() > DENSE_THRESHOLD {
                        self.densify();
                    }
                }
            }
            Page::Dense(bytes) => bytes[offset as usize] = value,
        }
    }

    fn densify(&mut self) {
        let mut bytes = Box::new([0u8; PAGE_SIZE as usize]);
        match self {
            Page::Uniform(fill) => bytes.fill(*fill),
            Page::Patched { fill, diffs } => {
                bytes.fill(*fill);
                for &(o, b) in diffs.iter() {
                    bytes[o as usize] = b;
                }
            }
            Page::Dense(_) => return,
        }
        *self = Page::Dense(bytes);
    }

    /// Bytes that differ from `expected`, as (offset, actual) pairs —
    /// lazily, so callers that stop early (or merely count) never
    /// materialize a whole page of pairs.
    fn mismatches(&self, expected: u8) -> PageMismatches<'_> {
        match self {
            Page::Uniform(fill) if *fill == expected => PageMismatches::Empty,
            Page::Uniform(fill) => PageMismatches::Uniform {
                fill: *fill,
                next: 0,
            },
            // Invariant: a patch never equals its page's fill byte, so
            // when the fill matches `expected` the diff list *is* the
            // mismatch list.
            Page::Patched { fill, diffs } if *fill == expected => {
                PageMismatches::Diffs(diffs.iter())
            }
            Page::Patched { fill, diffs } => PageMismatches::Patched {
                fill: *fill,
                diffs,
                expected,
                next: 0,
            },
            Page::Dense(bytes) => PageMismatches::Dense {
                bytes,
                expected,
                next: 0,
            },
        }
    }
}

/// Lazy per-page mismatch scan (the page-local half of [`Mismatches`]).
#[derive(Debug)]
enum PageMismatches<'a> {
    Empty,
    Uniform {
        fill: u8,
        next: u16,
    },
    Diffs(std::slice::Iter<'a, (u16, u8)>),
    Patched {
        fill: u8,
        diffs: &'a [(u16, u8)],
        expected: u8,
        next: u16,
    },
    Dense {
        bytes: &'a [u8; PAGE_SIZE as usize],
        expected: u8,
        next: u16,
    },
}

impl Iterator for PageMismatches<'_> {
    type Item = (u16, u8);

    fn next(&mut self) -> Option<(u16, u8)> {
        match self {
            PageMismatches::Empty => None,
            PageMismatches::Uniform { fill, next } => {
                if u64::from(*next) < PAGE_SIZE {
                    let o = *next;
                    *next += 1;
                    Some((o, *fill))
                } else {
                    None
                }
            }
            PageMismatches::Diffs(diffs) => diffs.next().copied(),
            PageMismatches::Patched {
                fill,
                diffs,
                expected,
                next,
            } => {
                while u64::from(*next) < PAGE_SIZE {
                    let o = *next;
                    *next += 1;
                    let b = diffs
                        .iter()
                        .find(|&&(d, _)| d == o)
                        .map_or(*fill, |&(_, b)| b);
                    if b != *expected {
                        return Some((o, b));
                    }
                }
                None
            }
            PageMismatches::Dense {
                bytes,
                expected,
                next,
            } => {
                // Word-at-a-time scan: a clean dense page walks 512
                // `u64` compares instead of 4096 byte compares, and only
                // words with a nonzero XOR against the expected fill are
                // expanded byte by byte. `PAGE_SIZE` is a multiple of 8,
                // so an aligned cursor always has a full word ahead.
                let expected_word = u64::from_le_bytes([*expected; 8]);
                while u64::from(*next) < PAGE_SIZE {
                    let o = *next;
                    if o % 8 == 0 {
                        let start = o as usize;
                        let word = u64::from_le_bytes(
                            bytes[start..start + 8]
                                .try_into()
                                .expect("aligned 8-byte chunk inside the page"),
                        );
                        if word == expected_word {
                            *next = o + 8;
                            continue;
                        }
                    }
                    *next = o + 1;
                    let b = bytes[o as usize];
                    if b != *expected {
                        return Some((o, b));
                    }
                }
                None
            }
        }
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Page::Uniform(fill) => write!(f, "Uniform({fill:#x})"),
            Page::Patched { fill, diffs } => {
                write!(f, "Patched(fill={fill:#x}, {} diffs)", diffs.len())
            }
            Page::Dense(_) => write!(f, "Dense"),
        }
    }
}

/// A sparse byte-addressable memory of fixed size.
///
/// Unwritten memory reads as zero, matching freshly provisioned host DRAM
/// in the simulation.
///
/// # Examples
///
/// ```
/// use hh_dram::store::SparseStore;
/// use hh_sim::Hpa;
///
/// let mut mem = SparseStore::new(1 << 30);
/// mem.fill(Hpa::new(0x2000), 0x1000, 0xaa);
/// mem.write_u64(Hpa::new(0x2008), 0xdead_beef);
/// assert_eq!(mem.read_u64(Hpa::new(0x2008)), 0xdead_beef);
/// assert_eq!(mem.read_u8(Hpa::new(0x2000)), 0xaa);
/// assert_eq!(mem.read_u8(Hpa::new(0x9000)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseStore {
    /// Dense per-frame slots: `None` is an untouched (zero) page. A flat
    /// vector beats a hash map here because the attack stamps and scans
    /// millions of pages sequentially — locality is everything.
    ///
    /// Pages sit behind `Arc` so [`Clone`] is copy-on-write at page
    /// granularity: forking a machine copies one pointer per slot, and
    /// [`SparseStore::slot_mut`] unshares (`Arc::make_mut`) only the
    /// pages a fork actually writes. That is what makes fanning one
    /// profiled host out into thousands of divergent campaign cells
    /// affordable.
    pages: Vec<Option<Arc<Page>>>,
    resident: usize,
    size: u64,
}

impl SparseStore {
    /// Creates a zero-filled store of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not page-aligned.
    pub fn new(size: u64) -> Self {
        assert_eq!(size % PAGE_SIZE, 0, "store size must be page-aligned");
        Self {
            pages: vec![None; (size / PAGE_SIZE) as usize],
            resident: 0,
            size,
        }
    }

    /// Returns the store size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    #[inline]
    fn check(&self, hpa: Hpa, len: u64) {
        assert!(
            hpa.raw()
                .checked_add(len)
                .is_some_and(|end| end <= self.size),
            "access at {hpa} (+{len}) beyond DRAM size {:#x}",
            self.size
        );
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the device.
    pub fn read_u8(&self, hpa: Hpa) -> u8 {
        self.check(hpa, 1);
        self.pages[hpa.pfn().index() as usize]
            .as_deref()
            .map_or(0, |p| p.read(hpa.page_offset() as u16))
    }

    /// Writes one byte.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the device.
    pub fn write_u8(&mut self, hpa: Hpa, value: u8) {
        self.check(hpa, 1);
        self.slot_mut(hpa.pfn().index())
            .write(hpa.page_offset() as u16, value);
    }

    /// Reads a little-endian `u64`. The access may straddle pages.
    pub fn read_u64(&self, hpa: Hpa) -> u64 {
        if hpa.page_offset() <= PAGE_SIZE - 8 {
            // Fast path: one page lookup, eight in-page reads.
            self.check(hpa, 8);
            let base = hpa.page_offset() as u16;
            return match self.pages[hpa.pfn().index() as usize].as_deref() {
                None => 0,
                Some(p) => {
                    let mut bytes = [0u8; 8];
                    for (i, b) in bytes.iter_mut().enumerate() {
                        *b = p.read(base + i as u16);
                    }
                    u64::from_le_bytes(bytes)
                }
            };
        }
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(hpa.add(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u64`. The access may straddle pages.
    pub fn write_u64(&mut self, hpa: Hpa, value: u64) {
        if hpa.page_offset() <= PAGE_SIZE - 8 {
            // Fast path: one page lookup, eight in-page writes.
            self.check(hpa, 8);
            let base = hpa.page_offset() as u16;
            let page = self.slot_mut(hpa.pfn().index());
            for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
                page.write(base + i as u16, byte);
            }
            return;
        }
        for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(hpa.add(i as u64), byte);
        }
    }

    /// Fills `[hpa, hpa + len)` with `value`, resetting page
    /// representations to the compact uniform form where whole pages are
    /// covered.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the device.
    pub fn fill(&mut self, hpa: Hpa, len: u64, value: u8) {
        self.check(hpa, len);
        let mut cur = hpa;
        let end = hpa.add(len);
        while cur < end {
            let page_end = cur.align_down(PAGE_SIZE).add(PAGE_SIZE);
            let chunk_end = page_end.min(end);
            if cur.page_offset() == 0 && chunk_end == page_end {
                self.set_slot(cur.pfn().index(), Page::Uniform(value));
            } else {
                for off in 0..chunk_end.offset_from(cur) {
                    self.write_u8(cur.add(off), value);
                }
            }
            cur = chunk_end;
        }
    }

    /// Replaces one whole 4 KiB page with the given contents in a single
    /// operation — the fast path for building page tables, which would
    /// otherwise transit the diff representation 512 times.
    ///
    /// # Panics
    ///
    /// Panics if `page_base` is not page-aligned or outside the device.
    pub fn write_page(&mut self, page_base: Hpa, bytes: Box<[u8; PAGE_SIZE as usize]>) {
        assert!(
            page_base.is_aligned(PAGE_SIZE),
            "write_page needs page alignment"
        );
        self.check(page_base, PAGE_SIZE);
        self.set_slot(page_base.pfn().index(), Page::Dense(bytes));
    }

    /// Resets one whole page to `fill` and writes a little-endian `u64`
    /// into its first eight bytes, in a single map operation — the
    /// magic-stamping fast path (one stamp per 4 KiB page over many GiB).
    ///
    /// # Panics
    ///
    /// Panics if `page_base` is not page-aligned or outside the device.
    pub fn reset_page_with_magic(&mut self, page_base: Hpa, fill: u8, magic: u64) {
        assert!(
            page_base.is_aligned(PAGE_SIZE),
            "stamp needs page alignment"
        );
        self.check(page_base, PAGE_SIZE);
        let diffs: Vec<(u16, u8)> = magic
            .to_le_bytes()
            .into_iter()
            .enumerate()
            .filter(|&(_, b)| b != fill)
            .map(|(i, b)| (i as u16, b))
            .collect();
        let page = if diffs.is_empty() {
            Page::Uniform(fill)
        } else {
            Page::Patched { fill, diffs }
        };
        self.set_slot(page_base.pfn().index(), page);
    }

    /// Copies `bytes` into memory starting at `hpa`, one slot lookup per
    /// touched page rather than per byte.
    pub fn write_bytes(&mut self, hpa: Hpa, bytes: &[u8]) {
        self.check(hpa, bytes.len() as u64);
        let mut cur = hpa;
        let mut rest = bytes;
        while !rest.is_empty() {
            let span = ((PAGE_SIZE - cur.page_offset()) as usize).min(rest.len());
            let (chunk, tail) = rest.split_at(span);
            let base = cur.page_offset() as u16;
            let page = self.slot_mut(cur.pfn().index());
            for (i, &b) in chunk.iter().enumerate() {
                page.write(base + i as u16, b);
            }
            cur = cur.add(span as u64);
            rest = tail;
        }
    }

    /// Reads `len` bytes starting at `hpa`, one page lookup per touched
    /// page; uniform and dense pages are copied span-at-a-time.
    pub fn read_bytes(&self, hpa: Hpa, len: usize) -> Vec<u8> {
        self.check(hpa, len as u64);
        let mut out = Vec::with_capacity(len);
        let mut cur = hpa;
        let end = hpa.add(len as u64);
        while cur < end {
            let page_end = cur.align_down(PAGE_SIZE).add(PAGE_SIZE);
            let chunk_end = page_end.min(end);
            let span = chunk_end.offset_from(cur) as usize;
            let lo = cur.page_offset() as usize;
            match self.pages[cur.pfn().index() as usize].as_deref() {
                None => out.resize(out.len() + span, 0),
                Some(Page::Uniform(fill)) => out.resize(out.len() + span, *fill),
                Some(Page::Patched { fill, diffs }) => {
                    let start = out.len();
                    out.resize(start + span, *fill);
                    for &(o, b) in diffs {
                        let o = o as usize;
                        if o >= lo && o < lo + span {
                            out[start + (o - lo)] = b;
                        }
                    }
                }
                Some(Page::Dense(bytes)) => out.extend_from_slice(&bytes[lo..lo + span]),
            }
            cur = chunk_end;
        }
        out
    }

    /// Lazily scans `[hpa, hpa+len)` for bytes differing from
    /// `expected`, yielding `(address, actual)` pairs in address order.
    ///
    /// Cost is proportional to the number of *touched* pages and diffs,
    /// not to `len`, which is what makes simulated multi-GiB corruption
    /// scans tractable — and being an iterator, callers that stop early
    /// (or only count) allocate nothing at all.
    ///
    /// # Panics
    ///
    /// Panics unless the range is page-aligned and inside the device.
    pub fn mismatches(&self, hpa: Hpa, len: u64, expected: u8) -> Mismatches<'_> {
        self.check(hpa, len);
        assert!(
            hpa.is_aligned(PAGE_SIZE) && len.is_multiple_of(PAGE_SIZE),
            "mismatch scan must be page-aligned"
        );
        Mismatches {
            store: self,
            expected,
            pfn: hpa.pfn().index(),
            end_pfn: (hpa.raw() + len) / PAGE_SIZE,
            base: hpa,
            current: PageMismatches::Empty,
        }
    }

    /// [`SparseStore::mismatches`], collected.
    ///
    /// # Panics
    ///
    /// Panics unless the range is page-aligned and inside the device.
    pub fn find_mismatches(&self, hpa: Hpa, len: u64, expected: u8) -> Vec<(Hpa, u8)> {
        self.mismatches(hpa, len, expected).collect()
    }

    /// Number of materialized (non-zero-default) pages, for memory
    /// accounting in tests.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Number of materialized pages whose backing is still shared with
    /// another store (fork accounting in tests: a fresh fork shares
    /// everything; each write unshares exactly one page).
    pub fn shared_pages(&self) -> usize {
        self.pages
            .iter()
            .flatten()
            .filter(|arc| Arc::strong_count(arc) > 1)
            .count()
    }

    /// Serializes the store into the machine-snapshot byte stream: the
    /// size, then one tagged record per page slot (absent / uniform /
    /// patched / dense). Patch lists keep their in-memory order — it is
    /// observable through the mismatch scan — so identical stores always
    /// produce identical bytes.
    pub fn encode_into(&self, enc: &mut Enc) {
        enc.u64(self.size);
        for slot in &self.pages {
            match slot.as_deref() {
                None => enc.u8(0),
                Some(Page::Uniform(fill)) => {
                    enc.u8(1);
                    enc.u8(*fill);
                }
                Some(Page::Patched { fill, diffs }) => {
                    enc.u8(2);
                    enc.u8(*fill);
                    enc.u64(diffs.len() as u64);
                    for &(offset, value) in diffs {
                        enc.u32(u32::from(offset));
                        enc.u8(value);
                    }
                }
                Some(Page::Dense(bytes)) => {
                    enc.u8(3);
                    enc.raw(bytes.as_slice());
                }
            }
        }
    }

    /// Decodes a store written by [`SparseStore::encode_into`].
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`]s for truncation and corruption (unaligned or
    /// absurd sizes, unknown page tags, out-of-page patch offsets,
    /// patches equal to their fill — the compactness invariant). The
    /// page count is validated against the remaining input before the
    /// slot vector is allocated.
    pub fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let size = dec.u64()?;
        if size == 0 || size % PAGE_SIZE != 0 {
            return Err(SnapError::Corrupt("store size not page-aligned"));
        }
        let page_count = size / PAGE_SIZE;
        // Every page costs at least its 1-byte tag, so a size the
        // remaining input cannot cover is corrupt — reject before
        // allocating the slot vector.
        if page_count > dec.remaining() as u64 {
            return Err(SnapError::Truncated {
                needed: page_count,
                available: dec.remaining() as u64,
            });
        }
        let mut pages: Vec<Option<Arc<Page>>> = Vec::with_capacity(page_count as usize);
        let mut resident = 0usize;
        for _ in 0..page_count {
            let page = match dec.u8()? {
                0 => None,
                1 => Some(Page::Uniform(dec.u8()?)),
                2 => {
                    let fill = dec.u8()?;
                    let count = dec.count(5)?;
                    if count > DENSE_THRESHOLD {
                        return Err(SnapError::Corrupt("patched page beyond dense threshold"));
                    }
                    let mut diffs: Vec<(u16, u8)> = Vec::with_capacity(count);
                    for _ in 0..count {
                        let offset = dec.u32()?;
                        let value = dec.u8()?;
                        if u64::from(offset) >= PAGE_SIZE {
                            return Err(SnapError::Corrupt("patch offset beyond page"));
                        }
                        let offset = offset as u16;
                        if value == fill {
                            return Err(SnapError::Corrupt("patch equals page fill"));
                        }
                        if diffs.iter().any(|&(o, _)| o == offset) {
                            return Err(SnapError::Corrupt("duplicate patch offset"));
                        }
                        diffs.push((offset, value));
                    }
                    Some(Page::Patched { fill, diffs })
                }
                3 => {
                    let raw = dec.raw(PAGE_SIZE as usize)?;
                    let mut bytes = Box::new([0u8; PAGE_SIZE as usize]);
                    bytes.copy_from_slice(raw);
                    Some(Page::Dense(bytes))
                }
                _ => return Err(SnapError::Corrupt("unknown page tag")),
            };
            if page.is_some() {
                resident += 1;
            }
            pages.push(page.map(Arc::new));
        }
        Ok(Self {
            pages,
            resident,
            size,
        })
    }

    /// Mutable access to a slot, materializing a zero page on first
    /// touch and unsharing a page another fork still references.
    fn slot_mut(&mut self, pfn: u64) -> &mut Page {
        let slot = &mut self.pages[pfn as usize];
        if slot.is_none() {
            *slot = Some(Arc::new(Page::Uniform(0)));
            self.resident += 1;
        }
        Arc::make_mut(slot.as_mut().expect("just materialized"))
    }

    /// Replaces a slot wholesale.
    fn set_slot(&mut self, pfn: u64, page: Page) {
        let slot = &mut self.pages[pfn as usize];
        if slot.is_none() {
            self.resident += 1;
        }
        *slot = Some(Arc::new(page));
    }
}

/// Lazy corruption scan over a page-aligned range — see
/// [`SparseStore::mismatches`].
#[derive(Debug)]
pub struct Mismatches<'a> {
    store: &'a SparseStore,
    expected: u8,
    pfn: u64,
    end_pfn: u64,
    base: Hpa,
    current: PageMismatches<'a>,
}

impl Iterator for Mismatches<'_> {
    type Item = (Hpa, u8);

    fn next(&mut self) -> Option<(Hpa, u8)> {
        loop {
            if let Some((o, b)) = self.current.next() {
                return Some((self.base.add(u64::from(o)), b));
            }
            if self.pfn >= self.end_pfn {
                return None;
            }
            self.base = Hpa::new(self.pfn * PAGE_SIZE);
            self.current = match self.store.pages[self.pfn as usize].as_deref() {
                // An untouched slot is a zero page.
                None if self.expected != 0 => PageMismatches::Uniform { fill: 0, next: 0 },
                None => PageMismatches::Empty,
                Some(p) => p.mismatches(self.expected),
            };
            self.pfn += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let mem = SparseStore::new(1 << 20);
        assert_eq!(mem.read_u8(Hpa::new(0)), 0);
        assert_eq!(mem.read_u64(Hpa::new(0xff8)), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = SparseStore::new(1 << 20);
        mem.write_u64(Hpa::new(0x100), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(Hpa::new(0x100)), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(Hpa::new(0x100)), 0x08); // little endian
    }

    #[test]
    fn straddling_u64() {
        let mut mem = SparseStore::new(1 << 20);
        mem.write_u64(Hpa::new(0xffc), 0xaabb_ccdd_1122_3344);
        assert_eq!(mem.read_u64(Hpa::new(0xffc)), 0xaabb_ccdd_1122_3344);
    }

    #[test]
    fn fill_is_compact() {
        let mut mem = SparseStore::new(1 << 30);
        mem.fill(Hpa::new(0), 1 << 30, 0x55);
        // 256 Ki pages, each 1 byte of fill state + map overhead: resident
        // count equals page count but representation is Uniform.
        assert_eq!(mem.read_u8(Hpa::new(0x3fff_ffff)), 0x55);
        assert_eq!(mem.resident_pages(), (1 << 30) / PAGE_SIZE as usize);
    }

    #[test]
    fn partial_fill() {
        let mut mem = SparseStore::new(1 << 20);
        mem.fill(Hpa::new(0x800), 0x1000, 0xaa);
        assert_eq!(mem.read_u8(Hpa::new(0x7ff)), 0);
        assert_eq!(mem.read_u8(Hpa::new(0x800)), 0xaa);
        assert_eq!(mem.read_u8(Hpa::new(0x17ff)), 0xaa);
        assert_eq!(mem.read_u8(Hpa::new(0x1800)), 0);
    }

    #[test]
    fn mismatch_scan_finds_flips_only() {
        let mut mem = SparseStore::new(1 << 24);
        mem.fill(Hpa::new(0), 1 << 24, 0xff);
        mem.write_u8(Hpa::new(0x12345), 0xfe); // one "bit flip"
        let hits = mem.find_mismatches(Hpa::new(0), 1 << 24, 0xff);
        assert_eq!(hits, vec![(Hpa::new(0x12345), 0xfe)]);
    }

    #[test]
    fn mismatch_scan_on_untouched_zero_memory() {
        let mem = SparseStore::new(1 << 16);
        assert!(mem.find_mismatches(Hpa::new(0), 1 << 16, 0).is_empty());
        let hits = mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x11);
        assert_eq!(hits.len(), PAGE_SIZE as usize);
    }

    #[test]
    fn patched_page_densifies_under_heavy_writes() {
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), PAGE_SIZE, 0x00);
        for i in 0..200 {
            mem.write_u8(Hpa::new(i * 7 % PAGE_SIZE), (i % 251) as u8 + 1);
        }
        // Still readable after the representation switch.
        assert_eq!(mem.read_u8(Hpa::new(0)), {
            // last write to offset 0 was i=0: value 1... offset 0 hit when i*7%4096==0
            let mut v = 0u8;
            for i in 0..200u64 {
                if i * 7 % PAGE_SIZE == 0 {
                    v = (i % 251) as u8 + 1;
                }
            }
            v
        });
    }

    #[test]
    fn rewriting_fill_value_restores_uniform() {
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), PAGE_SIZE, 0x55);
        mem.write_u8(Hpa::new(0x10), 0x54);
        assert_eq!(mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x55).len(), 1);
        mem.write_u8(Hpa::new(0x10), 0x55);
        assert!(mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x55).is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond DRAM size")]
    fn out_of_bounds_read_panics() {
        SparseStore::new(1 << 16).read_u8(Hpa::new(1 << 16));
    }

    #[test]
    fn write_and_read_bytes() {
        let mut mem = SparseStore::new(1 << 16);
        let data = [1u8, 2, 3, 4, 5];
        mem.write_bytes(Hpa::new(0xfff), &data);
        assert_eq!(mem.read_bytes(Hpa::new(0xfff), 5), data);
    }

    #[test]
    fn read_bytes_spans_mixed_page_representations() {
        let mut mem = SparseStore::new(1 << 16);
        // Page 0: untouched (zero). Page 1: uniform. Page 2: patched.
        // Page 3: dense.
        mem.fill(Hpa::new(PAGE_SIZE), PAGE_SIZE, 0x55);
        mem.fill(Hpa::new(2 * PAGE_SIZE), PAGE_SIZE, 0xaa);
        mem.write_u8(Hpa::new(2 * PAGE_SIZE + 1), 0xab);
        mem.write_u8(Hpa::new(3 * PAGE_SIZE - 1), 0xac);
        let mut dense = Box::new([0u8; PAGE_SIZE as usize]);
        for (i, b) in dense.iter_mut().enumerate() {
            *b = i as u8;
        }
        mem.write_page(Hpa::new(3 * PAGE_SIZE), dense);

        // A read crossing all four pages, starting and ending mid-page.
        let got = mem.read_bytes(Hpa::new(PAGE_SIZE - 2), (3 * PAGE_SIZE + 4) as usize);
        let expect: Vec<u8> = (0..3 * PAGE_SIZE + 4)
            .map(|i| mem.read_u8(Hpa::new(PAGE_SIZE - 2 + i)))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(got[0], 0); // tail of the zero page
        assert_eq!(got[2], 0x55); // uniform page starts
        assert_eq!(got[(PAGE_SIZE + 3) as usize], 0xab); // patch honoured
        assert_eq!(got[(2 * PAGE_SIZE + 1) as usize], 0xac); // trailing patch
        assert_eq!(got[(2 * PAGE_SIZE + 2) as usize], 0); // dense page byte 0
        assert_eq!(got[(2 * PAGE_SIZE + 5) as usize], 3); // dense page byte 3
    }

    #[test]
    fn write_bytes_across_page_boundary_patches_both_pages() {
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), 2 * PAGE_SIZE, 0x55);
        let data: Vec<u8> = (0..8).collect();
        mem.write_bytes(Hpa::new(PAGE_SIZE - 4), &data);
        assert_eq!(mem.read_bytes(Hpa::new(PAGE_SIZE - 4), 8), data);
        // Both pages hold a patched representation with the right diffs.
        assert_eq!(
            mem.find_mismatches(Hpa::new(0), 2 * PAGE_SIZE, 0x55).len(),
            8
        );
        // Writing the fill back restores the uniform representation.
        mem.write_bytes(Hpa::new(PAGE_SIZE - 4), &[0x55; 8]);
        assert!(mem
            .find_mismatches(Hpa::new(0), 2 * PAGE_SIZE, 0x55)
            .is_empty());
    }

    #[test]
    fn mismatch_iterator_is_lazy_and_ordered() {
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), 4 * PAGE_SIZE, 0x77);
        mem.write_u8(Hpa::new(0x10), 0x01);
        mem.write_u8(Hpa::new(PAGE_SIZE + 0x20), 0x02);
        mem.write_u8(Hpa::new(3 * PAGE_SIZE + 0x30), 0x03);
        // Early exit: taking the first hit must not depend on scanning
        // the rest of the range.
        let first = mem.mismatches(Hpa::new(0), 4 * PAGE_SIZE, 0x77).next();
        assert_eq!(first, Some((Hpa::new(0x10), 0x01)));
        // Full drain matches the collected API, in address order.
        let all: Vec<_> = mem.mismatches(Hpa::new(0), 4 * PAGE_SIZE, 0x77).collect();
        assert_eq!(all, mem.find_mismatches(Hpa::new(0), 4 * PAGE_SIZE, 0x77));
        assert_eq!(
            all,
            vec![
                (Hpa::new(0x10), 0x01),
                (Hpa::new(PAGE_SIZE + 0x20), 0x02),
                (Hpa::new(3 * PAGE_SIZE + 0x30), 0x03),
            ]
        );
    }

    /// Reference scan: the per-byte definition the word-at-a-time fast
    /// path must reproduce exactly.
    fn naive_mismatches(mem: &SparseStore, hpa: Hpa, len: u64, expected: u8) -> Vec<(Hpa, u8)> {
        (0..len)
            .map(|i| hpa.add(i))
            .filter_map(|a| {
                let b = mem.read_u8(a);
                (b != expected).then_some((a, b))
            })
            .collect()
    }

    #[test]
    fn dense_word_scan_matches_byte_scan_on_word_edges() {
        let mut mem = SparseStore::new(1 << 16);
        // Force a dense page, then plant flips straddling every kind of
        // word edge: offset 0, last byte of a word (7), first of the
        // next (8), an interior pair inside one word, the page's last
        // byte, and a run crossing a word boundary.
        let mut dense = Box::new([0x5au8; PAGE_SIZE as usize]);
        for off in [0usize, 7, 8, 1000, 1001, 4088, 4095] {
            dense[off] = 0xa5;
        }
        for off in 2045..2052usize {
            dense[off] = off as u8;
        }
        mem.write_page(Hpa::new(0), dense);

        for expected in [0x5a, 0xa5, 0x00] {
            let got = mem.find_mismatches(Hpa::new(0), PAGE_SIZE, expected);
            assert_eq!(
                got,
                naive_mismatches(&mem, Hpa::new(0), PAGE_SIZE, expected),
                "dense scan diverged for expected {expected:#x}"
            );
        }
        // Laziness across the fast path: the first hit must not require
        // draining the page, and resuming mid-word must not re-yield or
        // skip bytes.
        let mut it = mem.mismatches(Hpa::new(0), PAGE_SIZE, 0x5a);
        assert_eq!(it.next(), Some((Hpa::new(0), 0xa5)));
        assert_eq!(it.next(), Some((Hpa::new(7), 0xa5)));
        assert_eq!(it.next(), Some((Hpa::new(8), 0xa5)));
    }

    #[test]
    fn dense_word_scan_matches_byte_scan_across_page_boundaries() {
        let mut mem = SparseStore::new(1 << 16);
        // Page 0 dense with a flip in its final word, page 1 dense with
        // a flip in its first word: the per-page word cursors must not
        // leak across the page boundary.
        let mut lo = Box::new([0x77u8; PAGE_SIZE as usize]);
        lo[PAGE_SIZE as usize - 2] = 0x78;
        let mut hi = Box::new([0x77u8; PAGE_SIZE as usize]);
        hi[1] = 0x79;
        mem.write_page(Hpa::new(0), lo);
        mem.write_page(Hpa::new(PAGE_SIZE), hi);

        let got = mem.find_mismatches(Hpa::new(0), 2 * PAGE_SIZE, 0x77);
        assert_eq!(
            got,
            naive_mismatches(&mem, Hpa::new(0), 2 * PAGE_SIZE, 0x77)
        );
        assert_eq!(
            got,
            vec![
                (Hpa::new(PAGE_SIZE - 2), 0x78),
                (Hpa::new(PAGE_SIZE + 1), 0x79),
            ]
        );
    }

    #[test]
    fn dense_scan_agrees_with_patched_scan_for_same_contents() {
        // Identical page contents in Patched and Dense representation
        // must produce identical mismatch streams for every expected
        // byte (the representation is an implementation detail).
        let mut patched = SparseStore::new(1 << 16);
        let mut dense = SparseStore::new(1 << 16);
        patched.fill(Hpa::new(0), PAGE_SIZE, 0x33);
        let mut page = Box::new([0x33u8; PAGE_SIZE as usize]);
        for off in [0usize, 5, 8, 15, 16, 4090, 4095] {
            patched.write_u8(Hpa::new(off as u64), 0xcc);
            page[off] = 0xcc;
        }
        dense.write_page(Hpa::new(0), page);

        for expected in [0x33, 0xcc, 0x11] {
            let from_patched = patched.find_mismatches(Hpa::new(0), PAGE_SIZE, expected);
            let from_dense = dense.find_mismatches(Hpa::new(0), PAGE_SIZE, expected);
            assert_eq!(
                from_patched, from_dense,
                "representations diverged for expected {expected:#x}"
            );
            assert_eq!(
                from_dense,
                naive_mismatches(&dense, Hpa::new(0), PAGE_SIZE, expected)
            );
        }
    }

    #[test]
    fn densified_page_scan_stays_identical_after_threshold() {
        // Push a patched page over DENSE_THRESHOLD so it densifies, and
        // check the scan against the per-byte reference on both sides
        // of the switch.
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), PAGE_SIZE, 0x00);
        for i in 0..(DENSE_THRESHOLD as u64 + 8) {
            mem.write_u8(Hpa::new(i * 61 % PAGE_SIZE), 0xee);
            let got = mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x00);
            assert_eq!(got, naive_mismatches(&mem, Hpa::new(0), PAGE_SIZE, 0x00));
        }
    }

    #[test]
    fn clone_is_copy_on_write_at_page_level() {
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), 4 * PAGE_SIZE, 0x55);
        let mut fork = mem.clone();
        assert_eq!(fork.shared_pages(), 4, "a fresh fork shares every page");

        // Writing in the fork unshares exactly the touched page and
        // never disturbs the parent.
        fork.write_u8(Hpa::new(PAGE_SIZE + 1), 0x99);
        assert_eq!(fork.shared_pages(), 3);
        assert_eq!(mem.shared_pages(), 3);
        assert_eq!(mem.read_u8(Hpa::new(PAGE_SIZE + 1)), 0x55);
        assert_eq!(fork.read_u8(Hpa::new(PAGE_SIZE + 1)), 0x99);

        // Writes in the parent equally leave the fork alone.
        mem.write_u8(Hpa::new(2 * PAGE_SIZE), 0x01);
        assert_eq!(fork.read_u8(Hpa::new(2 * PAGE_SIZE)), 0x55);
    }

    #[test]
    fn snapshot_encoding_round_trips_every_representation() {
        let mut mem = SparseStore::new(1 << 16);
        // Page 0 untouched, page 1 uniform, page 2 patched, page 3 dense.
        mem.fill(Hpa::new(PAGE_SIZE), PAGE_SIZE, 0x55);
        mem.fill(Hpa::new(2 * PAGE_SIZE), PAGE_SIZE, 0xaa);
        mem.write_u8(Hpa::new(2 * PAGE_SIZE + 7), 0xab);
        let mut dense = Box::new([0u8; PAGE_SIZE as usize]);
        for (i, b) in dense.iter_mut().enumerate() {
            *b = i as u8;
        }
        mem.write_page(Hpa::new(3 * PAGE_SIZE), dense);

        let mut enc = Enc::new();
        mem.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let decoded = SparseStore::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(decoded, mem);
        assert_eq!(decoded.resident_pages(), mem.resident_pages());

        // Canonical: re-encoding reproduces the bytes.
        let mut enc2 = Enc::new();
        decoded.encode_into(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
    }

    #[test]
    fn corrupt_store_bytes_are_typed_errors_not_panics() {
        let mut mem = SparseStore::new(1 << 15);
        mem.fill(Hpa::new(0), PAGE_SIZE, 0x11);
        mem.write_u8(Hpa::new(3), 0x22);
        let mut enc = Enc::new();
        mem.encode_into(&mut enc);
        let bytes = enc.into_bytes();

        for len in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..len]);
            assert!(
                SparseStore::decode(&mut dec).is_err(),
                "truncation at {len} must fail"
            );
        }

        // A size prefix claiming an absurd page count must be rejected
        // before the slot vector is allocated.
        let mut enc = Enc::new();
        enc.u64(!(PAGE_SIZE - 1));
        let huge = enc.into_bytes();
        let mut dec = Dec::new(&huge);
        assert!(matches!(
            SparseStore::decode(&mut dec),
            Err(SnapError::Truncated { .. })
        ));

        // An unknown page tag is corrupt, not a panic.
        let mut evil = bytes.clone();
        evil[8] = 0xee; // first page tag
        let mut dec = Dec::new(&evil);
        assert_eq!(
            SparseStore::decode(&mut dec).err(),
            Some(SnapError::Corrupt("unknown page tag"))
        );
    }

    #[test]
    fn mismatch_scan_against_wrong_fill_reports_patches_once() {
        let mut mem = SparseStore::new(1 << 16);
        // A patched page scanned against a byte that is neither the fill
        // nor the patch: every byte mismatches, with patched values
        // reported (not the fill).
        mem.fill(Hpa::new(0), PAGE_SIZE, 0x55);
        mem.write_u8(Hpa::new(0x10), 0x99);
        let hits = mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x11);
        assert_eq!(hits.len(), PAGE_SIZE as usize);
        assert_eq!(hits[0x10], (Hpa::new(0x10), 0x99));
        assert_eq!(hits[0x11], (Hpa::new(0x11), 0x55));
        // A patch that happens to equal the scanned-for byte is *not* a
        // mismatch and punches a hole in the run.
        mem.write_u8(Hpa::new(0x20), 0x11);
        let hits = mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x11);
        assert_eq!(hits.len(), PAGE_SIZE as usize - 1);
        assert!(!hits.contains(&(Hpa::new(0x20), 0x11)));
    }
}

//! Sparse, pattern-compressed byte store for multi-GiB simulated DIMMs.
//!
//! The reproduction simulates hosts with 16 GiB of DRAM; materializing that
//! much memory is neither possible nor necessary. Almost all attack memory
//! is filled with uniform test patterns (0x55/0xAA stripes, magic-value
//! stamps), so pages are stored in one of three forms:
//!
//! * `Uniform(fill)` — every byte equals `fill` (1 byte of state);
//! * `Patched { fill, diffs }` — a uniform page with a few modified bytes
//!   (how Rowhammer flips on pattern-filled memory are stored);
//! * `Dense` — a fully materialized 4 KiB page (EPT pages, code pages).
//!
//! The store also powers fast "scan for corruption" operations: finding
//! bytes that differ from an expected fill is O(#diffs), not O(bytes) —
//! mirroring how a real attacker's linear scan is modelled as a clock cost
//! rather than an actual byte loop.

use std::fmt;

use hh_sim::addr::{Hpa, PAGE_SIZE};

const DENSE_THRESHOLD: usize = 64;

/// One 4 KiB page in its most compact faithful representation.
#[derive(Clone, PartialEq, Eq)]
enum Page {
    Uniform(u8),
    Patched { fill: u8, diffs: Vec<(u16, u8)> },
    Dense(Box<[u8; PAGE_SIZE as usize]>),
}

impl Page {
    fn read(&self, offset: u16) -> u8 {
        match self {
            Page::Uniform(fill) => *fill,
            Page::Patched { fill, diffs } => diffs
                .iter()
                .find(|(o, _)| *o == offset)
                .map_or(*fill, |(_, b)| *b),
            Page::Dense(bytes) => bytes[offset as usize],
        }
    }

    fn write(&mut self, offset: u16, value: u8) {
        match self {
            Page::Uniform(fill) => {
                if *fill != value {
                    *self = Page::Patched {
                        fill: *fill,
                        diffs: vec![(offset, value)],
                    };
                }
            }
            Page::Patched { fill, diffs } => {
                if let Some(slot) = diffs.iter_mut().find(|(o, _)| *o == offset) {
                    slot.1 = value;
                    if value == *fill {
                        diffs.retain(|(_, b)| *b != *fill);
                        if diffs.is_empty() {
                            *self = Page::Uniform(*fill);
                        }
                    }
                } else if value != *fill {
                    diffs.push((offset, value));
                    if diffs.len() > DENSE_THRESHOLD {
                        self.densify();
                    }
                }
            }
            Page::Dense(bytes) => bytes[offset as usize] = value,
        }
    }

    fn densify(&mut self) {
        let mut bytes = Box::new([0u8; PAGE_SIZE as usize]);
        match self {
            Page::Uniform(fill) => bytes.fill(*fill),
            Page::Patched { fill, diffs } => {
                bytes.fill(*fill);
                for &(o, b) in diffs.iter() {
                    bytes[o as usize] = b;
                }
            }
            Page::Dense(_) => return,
        }
        *self = Page::Dense(bytes);
    }

    /// Bytes that differ from `expected`, as (offset, actual) pairs.
    fn mismatches(&self, expected: u8) -> Vec<(u16, u8)> {
        match self {
            Page::Uniform(fill) => {
                if *fill == expected {
                    Vec::new()
                } else {
                    (0..PAGE_SIZE as u16).map(|o| (o, *fill)).collect()
                }
            }
            Page::Patched { fill, diffs } => {
                if *fill == expected {
                    diffs.clone()
                } else {
                    (0..PAGE_SIZE as u16)
                        .map(|o| (o, self.read(o)))
                        .filter(|&(_, b)| b != expected)
                        .collect()
                }
            }
            Page::Dense(bytes) => bytes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b != expected)
                .map(|(o, &b)| (o as u16, b))
                .collect(),
        }
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Page::Uniform(fill) => write!(f, "Uniform({fill:#x})"),
            Page::Patched { fill, diffs } => {
                write!(f, "Patched(fill={fill:#x}, {} diffs)", diffs.len())
            }
            Page::Dense(_) => write!(f, "Dense"),
        }
    }
}

/// A sparse byte-addressable memory of fixed size.
///
/// Unwritten memory reads as zero, matching freshly provisioned host DRAM
/// in the simulation.
///
/// # Examples
///
/// ```
/// use hh_dram::store::SparseStore;
/// use hh_sim::Hpa;
///
/// let mut mem = SparseStore::new(1 << 30);
/// mem.fill(Hpa::new(0x2000), 0x1000, 0xaa);
/// mem.write_u64(Hpa::new(0x2008), 0xdead_beef);
/// assert_eq!(mem.read_u64(Hpa::new(0x2008)), 0xdead_beef);
/// assert_eq!(mem.read_u8(Hpa::new(0x2000)), 0xaa);
/// assert_eq!(mem.read_u8(Hpa::new(0x9000)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SparseStore {
    /// Dense per-frame slots: `None` is an untouched (zero) page. A flat
    /// vector beats a hash map here because the attack stamps and scans
    /// millions of pages sequentially — locality is everything.
    pages: Vec<Option<Page>>,
    resident: usize,
    size: u64,
}

impl SparseStore {
    /// Creates a zero-filled store of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not page-aligned.
    pub fn new(size: u64) -> Self {
        assert_eq!(size % PAGE_SIZE, 0, "store size must be page-aligned");
        Self {
            pages: vec![None; (size / PAGE_SIZE) as usize],
            resident: 0,
            size,
        }
    }

    /// Returns the store size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    #[inline]
    fn check(&self, hpa: Hpa, len: u64) {
        assert!(
            hpa.raw()
                .checked_add(len)
                .is_some_and(|end| end <= self.size),
            "access at {hpa} (+{len}) beyond DRAM size {:#x}",
            self.size
        );
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the device.
    pub fn read_u8(&self, hpa: Hpa) -> u8 {
        self.check(hpa, 1);
        self.pages[hpa.pfn().index() as usize]
            .as_ref()
            .map_or(0, |p| p.read(hpa.page_offset() as u16))
    }

    /// Writes one byte.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the device.
    pub fn write_u8(&mut self, hpa: Hpa, value: u8) {
        self.check(hpa, 1);
        self.slot_mut(hpa.pfn().index())
            .write(hpa.page_offset() as u16, value);
    }

    /// Reads a little-endian `u64`. The access may straddle pages.
    pub fn read_u64(&self, hpa: Hpa) -> u64 {
        if hpa.page_offset() <= PAGE_SIZE - 8 {
            // Fast path: one page lookup, eight in-page reads.
            self.check(hpa, 8);
            let base = hpa.page_offset() as u16;
            return match &self.pages[hpa.pfn().index() as usize] {
                None => 0,
                Some(p) => {
                    let mut bytes = [0u8; 8];
                    for (i, b) in bytes.iter_mut().enumerate() {
                        *b = p.read(base + i as u16);
                    }
                    u64::from_le_bytes(bytes)
                }
            };
        }
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(hpa.add(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u64`. The access may straddle pages.
    pub fn write_u64(&mut self, hpa: Hpa, value: u64) {
        if hpa.page_offset() <= PAGE_SIZE - 8 {
            // Fast path: one page lookup, eight in-page writes.
            self.check(hpa, 8);
            let base = hpa.page_offset() as u16;
            let page = self.slot_mut(hpa.pfn().index());
            for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
                page.write(base + i as u16, byte);
            }
            return;
        }
        for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(hpa.add(i as u64), byte);
        }
    }

    /// Fills `[hpa, hpa + len)` with `value`, resetting page
    /// representations to the compact uniform form where whole pages are
    /// covered.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the device.
    pub fn fill(&mut self, hpa: Hpa, len: u64, value: u8) {
        self.check(hpa, len);
        let mut cur = hpa;
        let end = hpa.add(len);
        while cur < end {
            let page_end = cur.align_down(PAGE_SIZE).add(PAGE_SIZE);
            let chunk_end = page_end.min(end);
            if cur.page_offset() == 0 && chunk_end == page_end {
                self.set_slot(cur.pfn().index(), Page::Uniform(value));
            } else {
                for off in 0..chunk_end.offset_from(cur) {
                    self.write_u8(cur.add(off), value);
                }
            }
            cur = chunk_end;
        }
    }

    /// Replaces one whole 4 KiB page with the given contents in a single
    /// operation — the fast path for building page tables, which would
    /// otherwise transit the diff representation 512 times.
    ///
    /// # Panics
    ///
    /// Panics if `page_base` is not page-aligned or outside the device.
    pub fn write_page(&mut self, page_base: Hpa, bytes: Box<[u8; PAGE_SIZE as usize]>) {
        assert!(
            page_base.is_aligned(PAGE_SIZE),
            "write_page needs page alignment"
        );
        self.check(page_base, PAGE_SIZE);
        self.set_slot(page_base.pfn().index(), Page::Dense(bytes));
    }

    /// Resets one whole page to `fill` and writes a little-endian `u64`
    /// into its first eight bytes, in a single map operation — the
    /// magic-stamping fast path (one stamp per 4 KiB page over many GiB).
    ///
    /// # Panics
    ///
    /// Panics if `page_base` is not page-aligned or outside the device.
    pub fn reset_page_with_magic(&mut self, page_base: Hpa, fill: u8, magic: u64) {
        assert!(
            page_base.is_aligned(PAGE_SIZE),
            "stamp needs page alignment"
        );
        self.check(page_base, PAGE_SIZE);
        let diffs: Vec<(u16, u8)> = magic
            .to_le_bytes()
            .into_iter()
            .enumerate()
            .filter(|&(_, b)| b != fill)
            .map(|(i, b)| (i as u16, b))
            .collect();
        let page = if diffs.is_empty() {
            Page::Uniform(fill)
        } else {
            Page::Patched { fill, diffs }
        };
        self.set_slot(page_base.pfn().index(), page);
    }

    /// Copies `bytes` into memory starting at `hpa`.
    pub fn write_bytes(&mut self, hpa: Hpa, bytes: &[u8]) {
        self.check(hpa, bytes.len() as u64);
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(hpa.add(i as u64), b);
        }
    }

    /// Reads `len` bytes starting at `hpa`.
    pub fn read_bytes(&self, hpa: Hpa, len: usize) -> Vec<u8> {
        self.check(hpa, len as u64);
        (0..len).map(|i| self.read_u8(hpa.add(i as u64))).collect()
    }

    /// Returns every byte in `[hpa, hpa+len)` that differs from
    /// `expected`, as `(address, actual)` pairs.
    ///
    /// Cost is proportional to the number of *touched* pages and diffs,
    /// not to `len`, which is what makes simulated multi-GiB corruption
    /// scans tractable.
    pub fn find_mismatches(&self, hpa: Hpa, len: u64, expected: u8) -> Vec<(Hpa, u8)> {
        self.check(hpa, len);
        assert!(
            hpa.is_aligned(PAGE_SIZE) && len.is_multiple_of(PAGE_SIZE),
            "mismatch scan must be page-aligned"
        );
        let mut out = Vec::new();
        for pfn in hpa.pfn().index()..(hpa.raw() + len) / PAGE_SIZE {
            let base = Hpa::new(pfn * PAGE_SIZE);
            match &self.pages[pfn as usize] {
                None => {
                    if expected != 0 {
                        for o in 0..PAGE_SIZE {
                            out.push((base.add(o), 0));
                        }
                    }
                }
                Some(p) => {
                    for (o, b) in p.mismatches(expected) {
                        out.push((base.add(u64::from(o)), b));
                    }
                }
            }
        }
        out
    }

    /// Number of materialized (non-zero-default) pages, for memory
    /// accounting in tests.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Mutable access to a slot, materializing a zero page on first
    /// touch.
    fn slot_mut(&mut self, pfn: u64) -> &mut Page {
        let slot = &mut self.pages[pfn as usize];
        if slot.is_none() {
            *slot = Some(Page::Uniform(0));
            self.resident += 1;
        }
        slot.as_mut().expect("just materialized")
    }

    /// Replaces a slot wholesale.
    fn set_slot(&mut self, pfn: u64, page: Page) {
        let slot = &mut self.pages[pfn as usize];
        if slot.is_none() {
            self.resident += 1;
        }
        *slot = Some(page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let mem = SparseStore::new(1 << 20);
        assert_eq!(mem.read_u8(Hpa::new(0)), 0);
        assert_eq!(mem.read_u64(Hpa::new(0xff8)), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = SparseStore::new(1 << 20);
        mem.write_u64(Hpa::new(0x100), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(Hpa::new(0x100)), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(Hpa::new(0x100)), 0x08); // little endian
    }

    #[test]
    fn straddling_u64() {
        let mut mem = SparseStore::new(1 << 20);
        mem.write_u64(Hpa::new(0xffc), 0xaabb_ccdd_1122_3344);
        assert_eq!(mem.read_u64(Hpa::new(0xffc)), 0xaabb_ccdd_1122_3344);
    }

    #[test]
    fn fill_is_compact() {
        let mut mem = SparseStore::new(1 << 30);
        mem.fill(Hpa::new(0), 1 << 30, 0x55);
        // 256 Ki pages, each 1 byte of fill state + map overhead: resident
        // count equals page count but representation is Uniform.
        assert_eq!(mem.read_u8(Hpa::new(0x3fff_ffff)), 0x55);
        assert_eq!(mem.resident_pages(), (1 << 30) / PAGE_SIZE as usize);
    }

    #[test]
    fn partial_fill() {
        let mut mem = SparseStore::new(1 << 20);
        mem.fill(Hpa::new(0x800), 0x1000, 0xaa);
        assert_eq!(mem.read_u8(Hpa::new(0x7ff)), 0);
        assert_eq!(mem.read_u8(Hpa::new(0x800)), 0xaa);
        assert_eq!(mem.read_u8(Hpa::new(0x17ff)), 0xaa);
        assert_eq!(mem.read_u8(Hpa::new(0x1800)), 0);
    }

    #[test]
    fn mismatch_scan_finds_flips_only() {
        let mut mem = SparseStore::new(1 << 24);
        mem.fill(Hpa::new(0), 1 << 24, 0xff);
        mem.write_u8(Hpa::new(0x12345), 0xfe); // one "bit flip"
        let hits = mem.find_mismatches(Hpa::new(0), 1 << 24, 0xff);
        assert_eq!(hits, vec![(Hpa::new(0x12345), 0xfe)]);
    }

    #[test]
    fn mismatch_scan_on_untouched_zero_memory() {
        let mem = SparseStore::new(1 << 16);
        assert!(mem.find_mismatches(Hpa::new(0), 1 << 16, 0).is_empty());
        let hits = mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x11);
        assert_eq!(hits.len(), PAGE_SIZE as usize);
    }

    #[test]
    fn patched_page_densifies_under_heavy_writes() {
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), PAGE_SIZE, 0x00);
        for i in 0..200 {
            mem.write_u8(Hpa::new(i * 7 % PAGE_SIZE), (i % 251) as u8 + 1);
        }
        // Still readable after the representation switch.
        assert_eq!(mem.read_u8(Hpa::new(0)), {
            // last write to offset 0 was i=0: value 1... offset 0 hit when i*7%4096==0
            let mut v = 0u8;
            for i in 0..200u64 {
                if i * 7 % PAGE_SIZE == 0 {
                    v = (i % 251) as u8 + 1;
                }
            }
            v
        });
    }

    #[test]
    fn rewriting_fill_value_restores_uniform() {
        let mut mem = SparseStore::new(1 << 16);
        mem.fill(Hpa::new(0), PAGE_SIZE, 0x55);
        mem.write_u8(Hpa::new(0x10), 0x54);
        assert_eq!(mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x55).len(), 1);
        mem.write_u8(Hpa::new(0x10), 0x55);
        assert!(mem.find_mismatches(Hpa::new(0), PAGE_SIZE, 0x55).is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond DRAM size")]
    fn out_of_bounds_read_panics() {
        SparseStore::new(1 << 16).read_u8(Hpa::new(1 << 16));
    }

    #[test]
    fn write_and_read_bytes() {
        let mut mem = SparseStore::new(1 << 16);
        let data = [1u8, 2, 3, 4, 5];
        mem.write_bytes(Hpa::new(0xfff), &data);
        assert_eq!(mem.read_bytes(Hpa::new(0xfff), 5), data);
    }
}

//! A behavioural DRAM model with a Rowhammer fault engine.
//!
//! HyperHammer (ASPLOS '25) needs three properties of real DRAM:
//!
//! 1. **Address geometry** — which physical-address bits select the DRAM
//!    bank and row. The paper reverse-engineers its two test machines with
//!    DRAMDig and reports XOR bank functions over address bits below 21
//!    (preserved by 2 MiB hugepage mappings) and row bits 18–33.
//!    [`geometry`] implements exactly those functions, and [`dramdig`]
//!    re-derives them from a simulated row-buffer timing side channel.
//! 2. **Read disturbance** — repeatedly activating aggressor rows flips
//!    bits in physically adjacent victim rows. [`fault`] samples a
//!    deterministic per-DIMM vulnerability profile (which cells can flip,
//!    in which direction, how reliably, and at what activation count), and
//!    [`device`] applies it when a hammer pattern runs.
//! 3. **Contents** — the flips must corrupt real stored data so the layers
//!    above (the hypervisor's EPT pages) observe genuine corruption.
//!    [`store`] provides a sparse, pattern-compressed backing store that
//!    scales to multi-GiB simulated DIMMs.
//!
//! [`patterns`] adds a TRRespass-style search for hammer patterns that
//! defeat the optional Target-Row-Refresh mitigation model.
//!
//! # Example
//!
//! ```
//! use hh_dram::{DimmProfile, DramDevice, HammerPattern};
//! use hh_sim::Hpa;
//!
//! // A small DIMM with a dense fault profile for demonstration.
//! let profile = DimmProfile::test_profile(256 << 20);
//! let mut dram = DramDevice::new(profile, 42);
//!
//! // Fill a victim range and hammer its neighbours.
//! dram.fill(Hpa::new(0), 256 << 20, 0xff);
//! let mut flips = Vec::new();
//! for row in 1..dram.geometry().row_count() - 2 {
//!     for bank in 0..dram.geometry().bank_count() {
//!         let pattern = HammerPattern::single_sided_for(dram.geometry(), bank, row);
//!         flips.extend(dram.hammer(&pattern, 400_000).flips);
//!     }
//! }
//! assert!(!flips.is_empty(), "test profile is dense enough to flip");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod device;
pub mod dramdig;
pub mod fault;
pub mod geometry;
pub mod patterns;
pub mod plan;
pub mod store;
pub mod timing;

pub use device::{DramDevice, FlipEvent, HammerPattern, HammerResult};
pub use fault::{DimmProfile, FlipDirection, VulnerableCell};
pub use geometry::{BankFunction, DramGeometry};
pub use plan::{HammerPlan, PlanCacheStats, DEFAULT_PLAN_CACHE_CAPACITY};
pub use timing::{AccessTiming, TimingProbe};

//! TRRespass-style hammer-pattern search.
//!
//! The paper uses TRRespass (Frigo et al., S&P '20) to "identify an
//! effective hammer pattern for the DIMMs" (§5.1) and finds that plain
//! single-sided hammering works on its parts. This module reproduces that
//! step: it sweeps candidate patterns against a sacrificial victim region
//! and reports the cheapest one that produces reproducible flips — which
//! is single-sided on the paper's TRR-less DIMMs and an n-sided pattern
//! on parts with the TRR mitigation enabled.

use crate::device::{DramDevice, HammerPattern};
use crate::geometry::ROW_SPAN;

/// A pattern family the search can recommend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Two aggressors on one side of the victim (rows v+1, v+2).
    SingleSided,
    /// Aggressors on both sides of the victim (rows v−1, v+1).
    DoubleSided,
    /// `n` aggressors surrounding the victim, defeating TRR samplers.
    NSided(u8),
}

impl PatternKind {
    /// Materializes the pattern for a concrete victim location.
    ///
    /// # Panics
    ///
    /// Panics if the victim row is too close to the device edge for the
    /// pattern's aggressor placement.
    pub fn build(self, device: &DramDevice, bank: u32, victim_row: u64) -> HammerPattern {
        let geometry = device.geometry();
        match self {
            PatternKind::SingleSided => HammerPattern::single_sided_for(geometry, bank, victim_row),
            PatternKind::DoubleSided => HammerPattern::double_sided_for(geometry, bank, victim_row),
            PatternKind::NSided(n) => {
                let half = u64::from(n) / 2 + 1;
                let rows: Vec<u64> = (victim_row.saturating_sub(half)..=victim_row + half)
                    .filter(|&r| r != victim_row && r < geometry.row_count())
                    .take(usize::from(n))
                    .collect();
                HammerPattern::n_sided_for(geometry, bank, &rows)
            }
        }
    }

    /// Aggressor count of the pattern (cost is proportional to it).
    pub fn aggressor_count(self) -> u8 {
        match self {
            PatternKind::SingleSided | PatternKind::DoubleSided => 2,
            PatternKind::NSided(n) => n,
        }
    }
}

/// Outcome of the pattern search.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSearchResult {
    /// Cheapest effective pattern found.
    pub pattern: PatternKind,
    /// Flips observed while testing that pattern.
    pub flips_observed: usize,
    /// Total activations spent searching.
    pub activations_spent: u64,
}

/// Sweeps pattern families against `probe_rows` victim rows and returns
/// the cheapest one that flips at least one bit, or `None` if the DIMM
/// resists every candidate at the given round budget.
///
/// The victim region is filled with `0xff` and `0x00` stripes so both
/// flip directions are observable.
pub fn find_effective_pattern(
    device: &mut DramDevice,
    rounds: u64,
    probe_rows: u64,
) -> Option<PatternSearchResult> {
    let candidates = [
        PatternKind::SingleSided,
        PatternKind::DoubleSided,
        PatternKind::NSided(4),
        PatternKind::NSided(6),
        PatternKind::NSided(9),
        PatternKind::NSided(12),
    ];
    let row_count = device.geometry().row_count();
    let bank_count = device.geometry().bank_count();
    let mut activations_spent = 0u64;

    for pattern in candidates {
        let mut flips = 0usize;
        for victim_row in (8..row_count.saturating_sub(8)).take(probe_rows as usize) {
            // Arm the victim row for both directions (checkerboard halves).
            let base = device.geometry().row_base(victim_row);
            device.fill(base, ROW_SPAN / 2, 0xff);
            device.fill(base.add(ROW_SPAN / 2), ROW_SPAN / 2, 0x00);
            for bank in 0..bank_count {
                let hp = pattern.build(device, bank, victim_row);
                let result = device.hammer(&hp, rounds);
                activations_spent += result.activations;
                flips += result.flips.iter().filter(|f| f.row == victim_row).count();
            }
            if flips > 0 {
                break;
            }
        }
        if flips > 0 {
            return Some(PatternSearchResult {
                pattern,
                flips_observed: flips,
                activations_spent,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DimmProfile, TrrConfig};

    #[test]
    fn trr_less_dimm_yields_single_sided() {
        let mut dev = DramDevice::new(DimmProfile::test_profile(64 << 20), 42);
        let res = find_effective_pattern(&mut dev, 400_000, 32).expect("dense profile flips");
        assert_eq!(res.pattern, PatternKind::SingleSided);
        assert!(res.flips_observed > 0);
    }

    #[test]
    fn trr_dimm_needs_many_sided() {
        let profile = DimmProfile::test_profile(64 << 20).with_trr(TrrConfig::production());
        let mut dev = DramDevice::new(profile, 42);
        let res = find_effective_pattern(&mut dev, 400_000, 32).expect("TRR is bypassable");
        match res.pattern {
            PatternKind::NSided(n) => assert!(n >= 4),
            other => panic!("expected an n-sided pattern, got {other:?}"),
        }
    }

    #[test]
    fn pattern_build_shapes() {
        let dev = DramDevice::new(DimmProfile::test_profile(64 << 20), 1);
        let ss = PatternKind::SingleSided.build(&dev, 0, 10);
        assert_eq!(ss.aggressors().len(), 2);
        let ns = PatternKind::NSided(6).build(&dev, 0, 10);
        assert_eq!(ns.aggressors().len(), 6);
        assert_eq!(PatternKind::NSided(9).aggressor_count(), 9);
    }

    #[test]
    fn invulnerable_rounds_budget_returns_none() {
        let mut dev = DramDevice::new(DimmProfile::test_profile(32 << 20), 42);
        // 10 rounds is far below every threshold.
        assert!(find_effective_pattern(&mut dev, 10, 4).is_none());
    }
}

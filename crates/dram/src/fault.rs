//! The Rowhammer vulnerability profile of a simulated DIMM.
//!
//! Real Rowhammer susceptibility is a manufacturing artefact: a sparse,
//! fixed set of weak cells, each of which flips in one direction only
//! (§4.3: "Rowhammer flips tend to be unidirectional"), some reliably
//! ("stable" in Table 1) and some intermittently, once the disturbance
//! from adjacent-row activations inside one refresh window crosses the
//! cell's threshold.
//!
//! The simulated profile reproduces exactly those observables. Cells are
//! sampled **lazily and deterministically**: the set of weak cells in row
//! *r* is a pure function of `(profile_seed, r)`, so a 16 GiB DIMM costs
//! nothing until rows are actually hammered, and repeated runs (or
//! repeated hammering of the same row) always see the same cells.

use hh_sim::addr::Hpa;
use hh_sim::rng::SplitMix64;

use crate::geometry::{BankFunction, DramGeometry, ROW_SPAN};

/// Direction of a unidirectional bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipDirection {
    /// The cell can discharge: a stored 1 reads back as 0.
    OneToZero,
    /// The cell can charge: a stored 0 reads back as 1.
    ZeroToOne,
}

impl FlipDirection {
    /// The bit value the cell must currently hold for the flip to occur.
    pub fn source_bit(self) -> u8 {
        match self {
            FlipDirection::OneToZero => 1,
            FlipDirection::ZeroToOne => 0,
        }
    }

    /// The bit value after the flip.
    pub fn target_bit(self) -> u8 {
        1 - self.source_bit()
    }
}

/// One Rowhammer-vulnerable DRAM cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VulnerableCell {
    /// Byte address of the cell.
    pub hpa: Hpa,
    /// Bit index within the byte (0–7).
    pub bit: u8,
    /// The only direction this cell flips.
    pub direction: FlipDirection,
    /// Effective adjacent-row activations required within one refresh
    /// window before the cell can flip.
    pub threshold: u64,
    /// Probability that the cell actually flips once the threshold is
    /// exceeded, per hammer burst. Stable cells are near 1.0.
    pub flip_probability: f64,
}

impl VulnerableCell {
    /// Bit index of this cell within its little-endian 64-bit word —
    /// the position that decides whether a flip lands in the PFN field of
    /// an EPT entry (§4.1).
    pub fn bit_in_word(&self) -> u32 {
        (self.hpa.raw() % 8) as u32 * 8 + u32::from(self.bit)
    }
}

/// Tuning knobs for sampling a DIMM's vulnerability profile.
///
/// Densities are calibrated per machine preset so the profiling stage
/// reproduces the order of magnitude of Table 1 (hundreds of flips across
/// 12 GiB with single-sided hammering at 250 k rounds).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultParams {
    /// Expected number of vulnerable cells per 256 KiB row.
    pub cells_per_row: f64,
    /// Probability that a vulnerable cell is stable (flips ~always once
    /// past threshold) rather than intermittent.
    pub stable_fraction: f64,
    /// Inclusive range of activation thresholds sampled per cell.
    pub threshold_range: (u64, u64),
    /// Flip probability of intermittent (non-stable) cells.
    pub unstable_probability_range: (f64, f64),
}

impl FaultParams {
    /// Parameters matching machine S1 (Table 1: 395 flips / 12 GiB,
    /// 62 % stable).
    pub fn s1_apacer_ddr4() -> Self {
        Self {
            cells_per_row: 0.085,
            stable_fraction: 0.40,
            threshold_range: (140_000, 500_000),
            unstable_probability_range: (0.05, 0.55),
        }
    }

    /// Parameters matching machine S2 (Table 1: 650 flips / 12 GiB,
    /// only 6 % stable).
    pub fn s2_apacer_ddr4() -> Self {
        Self {
            cells_per_row: 0.35,
            stable_fraction: 0.015,
            threshold_range: (140_000, 500_000),
            unstable_probability_range: (0.03, 0.40),
        }
    }

    /// A dense profile for fast unit tests: every row has a handful of
    /// weak cells.
    pub fn dense_test() -> Self {
        Self {
            cells_per_row: 4.0,
            stable_fraction: 0.7,
            threshold_range: (100_000, 300_000),
            unstable_probability_range: (0.2, 0.6),
        }
    }
}

/// A complete DIMM description: geometry plus fault parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DimmProfile {
    /// Address geometry of the part.
    pub geometry: DramGeometry,
    /// Vulnerability sampling parameters.
    pub fault: FaultParams,
    /// Target-Row-Refresh mitigation, if the part implements one.
    pub trr: Option<TrrConfig>,
}

impl DimmProfile {
    /// The S1 configuration: Core i3-10100 addressing, Apacer DDR4-2666.
    pub fn s1(size_bytes: u64) -> Self {
        Self {
            geometry: DramGeometry::new(BankFunction::core_i3_10100(), size_bytes),
            fault: FaultParams::s1_apacer_ddr4(),
            trr: None,
        }
    }

    /// The S2 configuration: Xeon E-2124 addressing, Apacer DDR4-2666.
    pub fn s2(size_bytes: u64) -> Self {
        Self {
            geometry: DramGeometry::new(BankFunction::xeon_e2124(), size_bytes),
            fault: FaultParams::s2_apacer_ddr4(),
            trr: None,
        }
    }

    /// A small, densely vulnerable DIMM for tests and examples.
    pub fn test_profile(size_bytes: u64) -> Self {
        Self {
            geometry: DramGeometry::new(BankFunction::core_i3_10100(), size_bytes),
            fault: FaultParams::dense_test(),
            trr: None,
        }
    }

    /// Returns a copy with a TRR mitigation enabled.
    pub fn with_trr(mut self, trr: TrrConfig) -> Self {
        self.trr = Some(trr);
        self
    }
}

/// A simple Target-Row-Refresh model: the device tracks up to
/// `tracker_capacity` heavily activated rows per bank per refresh window
/// and refreshes their neighbours, suppressing their disturbance.
///
/// TRRespass-style many-sided patterns defeat it by hammering more
/// distinct rows than the tracker can hold ([`crate::patterns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrrConfig {
    /// Number of aggressor rows the in-DRAM sampler can track per bank.
    pub tracker_capacity: usize,
    /// Activation count at which a row is considered for tracking.
    pub detection_threshold: u64,
}

impl TrrConfig {
    /// A typical production configuration able to stop 1–2 aggressors.
    pub fn production() -> Self {
        Self {
            tracker_capacity: 2,
            detection_threshold: 40_000,
        }
    }

    /// An undersized sampler that tracks a single aggressor per bank, so
    /// even a plain double-sided pair half-defeats it: one aggressor is
    /// refreshed away per window while the other hammers through. Used by
    /// the `tiny` demo scenario to exercise TRR accounting without
    /// neutralizing the attack.
    pub fn undersized() -> Self {
        Self {
            tracker_capacity: 1,
            detection_threshold: 40_000,
        }
    }
}

/// Lazily samples the weak cells of one row.
///
/// Pure function of `(seed, row)` — the backbone of reproducibility.
pub(crate) fn sample_row_cells(
    seed: u64,
    row: u64,
    params: &FaultParams,
    geometry: &DramGeometry,
) -> Vec<VulnerableCell> {
    let mut rng = SplitMix64::new(seed ^ row.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17));
    // Burn a few outputs so adjacent rows decorrelate fully.
    rng.next();
    rng.next();

    // Poisson(λ) via inversion; λ is small (≤ a few cells).
    let lambda = params.cells_per_row;
    let mut count = 0usize;
    let mut acc = (-lambda).exp();
    let mut cum = acc;
    let u = uniform(&mut rng);
    while u > cum && count < 64 {
        count += 1;
        acc *= lambda / count as f64;
        cum += acc;
    }

    let row_base = geometry.row_base(row);
    (0..count)
        .map(|_| {
            let offset = rng.next() % ROW_SPAN;
            let bit = (rng.next() % 8) as u8;
            let direction = if rng.next() & 1 == 0 {
                FlipDirection::OneToZero
            } else {
                FlipDirection::ZeroToOne
            };
            let (lo, hi) = params.threshold_range;
            let threshold = lo + rng.next() % (hi - lo + 1);
            let stable = uniform(&mut rng) < params.stable_fraction;
            let flip_probability = if stable {
                0.98
            } else {
                let (plo, phi) = params.unstable_probability_range;
                plo + uniform(&mut rng) * (phi - plo)
            };
            VulnerableCell {
                hpa: row_base.add(offset),
                bit,
                direction,
                threshold,
                flip_probability,
            }
        })
        .collect()
}

fn uniform(rng: &mut SplitMix64) -> f64 {
    (rng.next() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> DramGeometry {
        DramGeometry::new(BankFunction::core_i3_10100(), 1 << 30)
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = geom();
        let p = FaultParams::dense_test();
        let a = sample_row_cells(7, 42, &p, &g);
        let b = sample_row_cells(7, 42, &p, &g);
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "dense profile should have cells in most rows"
        );
    }

    #[test]
    fn different_rows_differ() {
        let g = geom();
        let p = FaultParams::dense_test();
        let a = sample_row_cells(7, 42, &p, &g);
        let b = sample_row_cells(7, 43, &p, &g);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = geom();
        let p = FaultParams::dense_test();
        let a = sample_row_cells(1, 42, &p, &g);
        let b = sample_row_cells(2, 42, &p, &g);
        assert_ne!(a, b);
    }

    #[test]
    fn cells_live_inside_their_row() {
        let g = geom();
        let p = FaultParams::dense_test();
        for row in 0..64 {
            for cell in sample_row_cells(3, row, &p, &g) {
                assert_eq!(g.row_of(cell.hpa), row);
                assert!(cell.bit < 8);
                assert!(cell.threshold >= p.threshold_range.0);
                assert!(cell.threshold <= p.threshold_range.1);
                assert!((0.0..=1.0).contains(&cell.flip_probability));
            }
        }
    }

    #[test]
    fn calibrated_density_matches_table1_order_of_magnitude() {
        // 12 GiB = 49 152 rows; S1 expects ~0.048 cells/row ≈ 2 350 weak
        // cells in total, of which profiling (250 k rounds × 1.5 weight =
        // 375 k effective, ~65 % of thresholds) finds several hundred in
        // the *border* rows it can actually attack.
        let g = DramGeometry::new(BankFunction::core_i3_10100(), 12 << 30);
        let p = FaultParams::s1_apacer_ddr4();
        let total: usize = (0..g.row_count())
            .map(|r| sample_row_cells(99, r, &p, &g).len())
            .sum();
        let expected = (g.row_count() as f64 * p.cells_per_row) as usize;
        assert!(
            (expected as f64 * 0.8..expected as f64 * 1.2).contains(&(total as f64)),
            "sampled {total}, expected ≈{expected}"
        );
    }

    #[test]
    fn bit_in_word_spans_0_to_63() {
        let g = geom();
        let p = FaultParams::dense_test();
        let mut seen = [false; 64];
        for row in 0..512 {
            for cell in sample_row_cells(5, row, &p, &g) {
                seen[cell.bit_in_word() as usize] = true;
            }
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(
            covered > 48,
            "bit positions should be ~uniform, got {covered}"
        );
    }

    #[test]
    fn directions_are_roughly_balanced() {
        let g = geom();
        let p = FaultParams::dense_test();
        let mut one_to_zero = 0;
        let mut total = 0;
        for row in 0..1024 {
            for cell in sample_row_cells(11, row, &p, &g) {
                total += 1;
                if cell.direction == FlipDirection::OneToZero {
                    one_to_zero += 1;
                }
            }
        }
        let frac = one_to_zero as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "direction fraction {frac}");
    }

    #[test]
    fn direction_bit_values() {
        assert_eq!(FlipDirection::OneToZero.source_bit(), 1);
        assert_eq!(FlipDirection::OneToZero.target_bit(), 0);
        assert_eq!(FlipDirection::ZeroToOne.source_bit(), 0);
        assert_eq!(FlipDirection::ZeroToOne.target_bit(), 1);
    }
}

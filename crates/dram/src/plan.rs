//! Compiled hammer plans and the per-device plan cache.
//!
//! [`DramDevice::hammer`](crate::DramDevice::hammer) used to re-derive
//! the per-bank aggressor grouping, the victim-row set and the distance
//! weights on **every** burst, even though all of them are a pure
//! function of the pattern and the geometry. A [`HammerPlan`] resolves
//! that work once — flat, sorted vectors instead of per-call `HashMap`s
//! — and additionally embeds each victim row's bank-filtered
//! [`VulnerableCell`]s, so executing a burst touches no hash table and
//! allocates nothing on the hot path.
//!
//! Plans are immutable and rounds-independent: the stochastic parts of a
//! burst (TRR sampler overflow picks, per-cell flip draws) still happen
//! at execution time against the device RNG, so a burst executed from a
//! cached plan is **bit-identical** to one executed from a freshly
//! compiled plan — `tests/plan_props.rs` proves it, trace events
//! included.
//!
//! [`PlanCache`] is a small LRU keyed by an FNV-1a hash of the aggressor
//! addresses; entries verify the full address list on lookup, so a hash
//! collision costs a recompile, never a wrong plan. The profiling loop's
//! characterize/stability re-hammers, the steering stage and the exploit
//! stage all replay recent patterns, which is exactly the reuse an LRU
//! captures.

use std::sync::Arc;

use hh_sim::addr::Hpa;

use crate::fault::VulnerableCell;

/// Disturbance contribution of one aggressor to one victim row: the
/// index of the aggressor within the bank's sorted row list (so TRR
/// verdicts can gate it) and its distance weight.
type Contribution = (u32, f64);

/// One victim row of a bank plan: which aggressors disturb it, at what
/// weight, and which of the device's weak cells sit in it (pre-filtered
/// to the plan's bank).
#[derive(Debug, Clone, PartialEq)]
pub struct VictimPlan {
    row: u64,
    contribs: Vec<Contribution>,
    cells: Vec<VulnerableCell>,
}

impl VictimPlan {
    pub(crate) fn new(row: u64, contribs: Vec<Contribution>, cells: Vec<VulnerableCell>) -> Self {
        Self {
            row,
            contribs,
            cells,
        }
    }

    /// The victim row index.
    pub fn row(&self) -> u64 {
        self.row
    }

    /// `(aggressor index, weight)` pairs, in compile order.
    pub(crate) fn contribs(&self) -> &[Contribution] {
        &self.contribs
    }

    /// The victim row's vulnerable cells within the plan's bank.
    pub fn cells(&self) -> &[VulnerableCell] {
        &self.cells
    }
}

/// The per-bank slice of a plan: sorted unique aggressor rows plus the
/// victim rows they disturb, sorted by row.
#[derive(Debug, Clone, PartialEq)]
pub struct BankPlan {
    bank: u32,
    rows: Vec<u64>,
    victims: Vec<VictimPlan>,
}

impl BankPlan {
    pub(crate) fn new(bank: u32, rows: Vec<u64>, victims: Vec<VictimPlan>) -> Self {
        Self {
            bank,
            rows,
            victims,
        }
    }

    /// The DRAM bank this slice hammers.
    pub fn bank(&self) -> u32 {
        self.bank
    }

    /// Sorted unique aggressor rows (the TRR sampler's view).
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Victim rows in ascending order.
    pub fn victims(&self) -> &[VictimPlan] {
        &self.victims
    }
}

/// A hammer pattern compiled against one device's geometry and fault
/// profile: everything about a burst that does not depend on `rounds`
/// or the RNG, resolved once into flat sorted vectors.
///
/// Compile with [`DramDevice::plan_for`](crate::DramDevice::plan_for)
/// (cached) or [`DramDevice::compile_plan`](crate::DramDevice::compile_plan)
/// (always fresh); execute with
/// [`DramDevice::hammer_planned`](crate::DramDevice::hammer_planned) or
/// implicitly through [`DramDevice::hammer`](crate::DramDevice::hammer).
#[derive(Debug, Clone, PartialEq)]
pub struct HammerPlan {
    aggressors: Vec<Hpa>,
    device_token: u64,
    banks: Vec<BankPlan>,
}

impl HammerPlan {
    pub(crate) fn new(aggressors: Vec<Hpa>, device_token: u64, banks: Vec<BankPlan>) -> Self {
        Self {
            aggressors,
            device_token,
            banks,
        }
    }

    /// The aggressor addresses the plan was compiled from.
    pub fn aggressors(&self) -> &[Hpa] {
        &self.aggressors
    }

    /// Token binding the plan to the device (seed + geometry) it was
    /// compiled for; executing it elsewhere panics.
    pub(crate) fn device_token(&self) -> u64 {
        self.device_token
    }

    /// Per-bank execution slices, in ascending bank order.
    pub fn banks(&self) -> &[BankPlan] {
        &self.banks
    }

    /// Total victim rows across all banks (diagnostics / tests).
    pub fn victim_count(&self) -> usize {
        self.banks.iter().map(|b| b.victims.len()).sum()
    }
}

/// FNV-1a over the aggressor address list — the plan-cache key. Stable
/// across processes (unlike `RandomState`), so cache behaviour is as
/// deterministic as everything else in the simulator.
pub fn hash_aggressors(aggressors: &[Hpa]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for a in aggressors {
        for byte in a.raw().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Point-in-time counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that forced a compile.
    pub misses: u64,
    /// Plans currently resident.
    pub len: usize,
    /// Maximum resident plans before LRU eviction.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Hit fraction over all lookups (0.0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    hash: u64,
    last_use: u64,
    plan: Arc<HammerPlan>,
}

/// A least-recently-used cache of compiled plans.
///
/// Capacity is small (default 128) and lookups verify the full aggressor
/// list, so a linear scan beats a hash map here — no rehashing, no
/// allocation on hit, deterministic iteration.
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    entries: Vec<CacheEntry>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

/// Default number of resident plans: comfortably covers the 64 pattern
/// classes the profiler sweeps per hugepage plus the exploit stage's
/// working set.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache needs room for at least one plan");
        Self {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            entries: Vec::new(),
        }
    }

    /// The maximum number of resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the plan for `aggressors`, refreshing its LRU position.
    /// Counts a miss when absent.
    pub fn get(&mut self, aggressors: &[Hpa]) -> Option<Arc<HammerPlan>> {
        let hash = hash_aggressors(aggressors);
        self.tick += 1;
        let found = self
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && e.plan.aggressors() == aggressors);
        match found {
            Some(entry) => {
                entry.last_use = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a plan, evicting the least recently used entry when full.
    /// An existing entry for the same aggressors is replaced in place.
    pub fn insert(&mut self, plan: Arc<HammerPlan>) {
        let hash = hash_aggressors(plan.aggressors());
        self.tick += 1;
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && e.plan.aggressors() == plan.aggressors())
        {
            entry.plan = plan;
            entry.last_use = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("capacity > 0 so a full cache has entries");
            self.entries.swap_remove(oldest);
        }
        self.entries.push(CacheEntry {
            hash,
            last_use: self.tick,
            plan,
        });
    }

    /// Drops every cached plan (stats are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_for(addrs: &[u64]) -> Arc<HammerPlan> {
        Arc::new(HammerPlan::new(
            addrs.iter().map(|&a| Hpa::new(a)).collect(),
            7,
            Vec::new(),
        ))
    }

    fn aggs(addrs: &[u64]) -> Vec<Hpa> {
        addrs.iter().map(|&a| Hpa::new(a)).collect()
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let mut cache = PlanCache::with_capacity(4);
        assert!(cache.get(&aggs(&[0x40000])).is_none());
        cache.insert(plan_for(&[0x40000]));
        let hit = cache.get(&aggs(&[0x40000])).expect("cached");
        assert_eq!(hit.aggressors(), aggs(&[0x40000]).as_slice());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = PlanCache::with_capacity(2);
        cache.insert(plan_for(&[1 << 18]));
        cache.insert(plan_for(&[2 << 18]));
        // Touch the first entry so the second becomes LRU.
        assert!(cache.get(&aggs(&[1 << 18])).is_some());
        cache.insert(plan_for(&[3 << 18]));
        assert_eq!(cache.stats().len, 2);
        assert!(cache.get(&aggs(&[1 << 18])).is_some(), "recently used kept");
        assert!(cache.get(&aggs(&[2 << 18])).is_none(), "LRU entry evicted");
        assert!(cache.get(&aggs(&[3 << 18])).is_some(), "new entry resident");
    }

    #[test]
    fn reinsert_replaces_in_place_without_eviction() {
        let mut cache = PlanCache::with_capacity(2);
        cache.insert(plan_for(&[1 << 18]));
        cache.insert(plan_for(&[2 << 18]));
        cache.insert(plan_for(&[1 << 18]));
        assert_eq!(cache.stats().len, 2);
        assert!(cache.get(&aggs(&[2 << 18])).is_some());
    }

    #[test]
    fn different_patterns_do_not_alias() {
        let mut cache = PlanCache::with_capacity(8);
        cache.insert(plan_for(&[1 << 18, 2 << 18]));
        assert!(cache.get(&aggs(&[2 << 18, 1 << 18])).is_none());
        assert!(cache.get(&aggs(&[1 << 18])).is_none());
        assert!(cache.get(&aggs(&[1 << 18, 2 << 18])).is_some());
    }

    #[test]
    fn clear_drops_plans_but_keeps_counters() {
        let mut cache = PlanCache::with_capacity(4);
        cache.insert(plan_for(&[1 << 18]));
        assert!(cache.get(&aggs(&[1 << 18])).is_some());
        cache.clear();
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.get(&aggs(&[1 << 18])).is_none());
    }

    #[test]
    fn hash_is_stable_and_order_sensitive() {
        let a = hash_aggressors(&aggs(&[0x40000, 0x80000]));
        let b = hash_aggressors(&aggs(&[0x40000, 0x80000]));
        let c = hash_aggressors(&aggs(&[0x80000, 0x40000]));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one plan")]
    fn zero_capacity_is_rejected() {
        PlanCache::with_capacity(0);
    }
}

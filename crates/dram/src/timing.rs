//! Row-buffer timing side channel.
//!
//! DRAMDig (Wang et al., DAC '20) — the tool the paper uses in §5.1 to
//! reverse engineer the DRAM address functions — only needs one physical
//! observable: accessing two addresses in the *same bank but different
//! rows* forces a row-buffer conflict (precharge + activate), which is
//! measurably slower than a row-buffer hit or an access pair that lands
//! in different banks. This module models that observable.

use hh_sim::addr::Hpa;

use crate::geometry::DramGeometry;

/// Latencies (in simulated nanoseconds) of the three access-pair classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Alternating accesses to the same bank, same row: row-buffer hits.
    pub same_bank_same_row: u64,
    /// Alternating accesses to different banks: pipelined, fast.
    pub different_bank: u64,
    /// Alternating accesses to the same bank, different rows: every access
    /// is a row-buffer conflict.
    pub same_bank_conflict: u64,
}

impl AccessTiming {
    /// DDR4-2666-ish latencies; the absolute values are irrelevant, only
    /// the conflict/no-conflict gap matters.
    pub fn ddr4_2666() -> Self {
        Self {
            same_bank_same_row: 150,
            different_bank: 250,
            same_bank_conflict: 380,
        }
    }

    /// A latency threshold separating conflict pairs from the rest.
    pub fn conflict_threshold(&self) -> u64 {
        (self.same_bank_conflict + self.different_bank) / 2
    }
}

impl Default for AccessTiming {
    fn default() -> Self {
        Self::ddr4_2666()
    }
}

/// A timing probe over a DRAM geometry: measures the average latency of
/// alternately accessing an address pair, with a small deterministic
/// jitter so classifiers cannot rely on exact equality.
///
/// # Examples
///
/// ```
/// use hh_dram::geometry::{BankFunction, DramGeometry};
/// use hh_dram::timing::{AccessTiming, TimingProbe};
/// use hh_sim::Hpa;
///
/// let geom = DramGeometry::new(BankFunction::core_i3_10100(), 1 << 30);
/// let probe = TimingProbe::new(geom, AccessTiming::ddr4_2666());
/// let a = Hpa::new(0);
/// let conflict = probe.find_conflict_partner(a, 4096).expect("partner exists");
/// assert!(probe.measure_pair(a, conflict) > probe.timing().conflict_threshold());
/// ```
#[derive(Debug, Clone)]
pub struct TimingProbe {
    geometry: DramGeometry,
    timing: AccessTiming,
    /// Count of pair measurements, for cost accounting by callers.
    measurements: std::cell::Cell<u64>,
}

impl TimingProbe {
    /// Creates a probe over `geometry` with the given timings.
    pub fn new(geometry: DramGeometry, timing: AccessTiming) -> Self {
        Self {
            geometry,
            timing,
            measurements: std::cell::Cell::new(0),
        }
    }

    /// Returns the timing parameters.
    pub fn timing(&self) -> &AccessTiming {
        &self.timing
    }

    /// Returns the geometry under test (not consulted by solvers — they
    /// must recover it from timing alone).
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Number of pair measurements taken so far.
    pub fn measurement_count(&self) -> u64 {
        self.measurements.get()
    }

    /// Measures the average alternating-access latency of `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if either address is outside the device.
    pub fn measure_pair(&self, a: Hpa, b: Hpa) -> u64 {
        assert!(self.geometry.contains(a) && self.geometry.contains(b));
        self.measurements.set(self.measurements.get() + 1);
        let base = if self.geometry.bank_of(a) != self.geometry.bank_of(b) {
            self.timing.different_bank
        } else if self.geometry.row_of(a) == self.geometry.row_of(b) {
            self.timing.same_bank_same_row
        } else {
            self.timing.same_bank_conflict
        };
        // Deterministic sub-threshold jitter derived from the addresses.
        let jitter = (a.raw() ^ b.raw().rotate_left(13)).wrapping_mul(0x2545_f491_4f6c_dd1d) >> 59;
        base + jitter // 0..=31 ns of noise
    }

    /// Returns `true` if the pair shows a row-buffer conflict (same bank,
    /// different row) according to the measured latency.
    pub fn is_conflict(&self, a: Hpa, b: Hpa) -> bool {
        self.measure_pair(a, b) > self.timing.conflict_threshold()
    }

    /// Scans forward from `a + step` for the first address that conflicts
    /// with `a`, up to the end of the device.
    pub fn find_conflict_partner(&self, a: Hpa, step: u64) -> Option<Hpa> {
        let mut cur = a.add(step);
        while self.geometry.contains(cur) {
            if self.is_conflict(a, cur) {
                return Some(cur);
            }
            cur = cur.add(step);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankFunction;

    fn probe() -> TimingProbe {
        TimingProbe::new(
            DramGeometry::new(BankFunction::core_i3_10100(), 1 << 30),
            AccessTiming::ddr4_2666(),
        )
    }

    #[test]
    fn classes_are_separable() {
        let p = probe();
        let g = p.geometry().clone();
        let a = g.addr_in(7, 10).unwrap();
        let same_row = g
            .slice_addrs(7, 10)
            .find(|&x| x != a)
            .expect("row slice has >1 line");
        let conflict = g.addr_in(7, 11).unwrap();
        let other_bank = g.addr_in(8, 10).unwrap();

        let t = p.timing().conflict_threshold();
        assert!(p.measure_pair(a, same_row) < t);
        assert!(p.measure_pair(a, other_bank) < t);
        assert!(p.measure_pair(a, conflict) > t);
    }

    #[test]
    fn jitter_stays_below_the_gap() {
        let p = probe();
        let g = p.geometry().clone();
        // Measure many conflicting and non-conflicting pairs; none may
        // cross the threshold.
        for row in 0..50 {
            let a = g.addr_in(3, row).unwrap();
            let c = g.addr_in(3, row + 1).unwrap();
            let o = g.addr_in((3 + row as u32) % 32, row).unwrap();
            assert!(p.is_conflict(a, c));
            if g.bank_of(o) != g.bank_of(a) {
                assert!(!p.is_conflict(a, o));
            }
        }
    }

    #[test]
    fn measurement_counting() {
        let p = probe();
        let a = Hpa::new(0);
        let b = Hpa::new(1 << 20);
        p.measure_pair(a, b);
        p.is_conflict(a, b);
        assert_eq!(p.measurement_count(), 2);
    }

    #[test]
    fn conflict_partner_is_found_quickly() {
        let p = probe();
        let a = Hpa::new(0);
        let partner = p.find_conflict_partner(a, 4096).expect("exists");
        assert!(p.is_conflict(a, partner));
    }
}

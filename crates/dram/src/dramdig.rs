//! DRAMDig-style reverse engineering of DRAM address functions.
//!
//! The paper (§5.1) uses DRAMDig [Wang et al., DAC '20] to recover each
//! machine's XOR bank function and row bits before profiling. This module
//! reimplements the recovery against the simulated row-buffer timing
//! side channel ([`crate::timing`]).
//!
//! # Method
//!
//! The bank function is a linear map `f : GF(2)^n → GF(2)^k` over address
//! bits. A timing probe answers one question: do two addresses *conflict*
//! (same bank, different row)? By linearity, for a fixed reference address
//! `rep` and a delta `d` whose row bits are non-zero,
//! `conflict(rep, rep ^ d) ⇔ f(d) = 0`. Deltas without row content are
//! first XOR-ed with a known bank-kernel row delta `r0`, which leaves
//! `f(d)` unchanged while forcing a row difference.
//!
//! With kernel membership decidable, the solver learns the image of every
//! unit address bit by a pivot construction: units whose images are
//! linearly independent become *pivots*; every other unit's image is
//! expressed as the XOR of a subset of pivot images (found by testing
//! `e_i ⊕ Σ_{j∈S} p_j ∈ ker f` over the ≤ 2^k subsets). The mask for
//! recombined output bit *j* is then the sum of all units whose
//! coordinates include pivot *j*. This recovers `f` up to an invertible
//! recombination of its output bits — the information-theoretic limit of
//! the conflict side channel — and recovers the paper's mask lists
//! *exactly* when no address bit participates in two masks (true for S1;
//! S2's bits 18–19 overlap two masks, so S2 is recovered up to
//! recombination). The result is validated against fresh random conflict
//! measurements before being returned.

use std::fmt;

use hh_sim::addr::Hpa;
use hh_sim::rng::SimRng;

use crate::geometry::{BankFunction, ROW_SHIFT};
use crate::timing::TimingProbe;

/// Lowest address bit considered by the solver. Bits 0–5 address bytes
/// within a cache line and never feed DRAM functions.
const MIN_BIT: u32 = 6;

/// Result of a successful address-map recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredMap {
    /// The recovered bank function (equivalent to the true one up to
    /// output-bit recombination; here recovered exactly for
    /// non-overlapping masks).
    pub bank_fn: BankFunction,
    /// Address bits proven to select the DRAM row (bank-kernel bits whose
    /// toggling causes a row-buffer conflict).
    pub definite_row_bits: Vec<u32>,
    /// Address bits proven to address within a row (bank-kernel bits whose
    /// toggling keeps row-buffer hits).
    pub column_bits: Vec<u32>,
    /// Number of timing measurements consumed.
    pub measurements: u64,
}

/// Errors the solver can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// No row delta in the bank kernel was found; the device is too small
    /// to exercise row bits.
    NoRowKernelDelta,
    /// The recovered function failed validation against fresh
    /// measurements, i.e. masks overlap in ways the class method cannot
    /// express.
    ValidationFailed {
        /// Number of mispredicted validation pairs.
        mispredictions: usize,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::NoRowKernelDelta => {
                write!(f, "device too small: no bank-kernel row delta found")
            }
            RecoverError::ValidationFailed { mispredictions } => {
                write!(
                    f,
                    "recovered function mispredicted {mispredictions} validation pairs"
                )
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// Recovers the DRAM address map from timing alone.
///
/// # Errors
///
/// Returns [`RecoverError::NoRowKernelDelta`] for devices smaller than two
/// rows, and [`RecoverError::ValidationFailed`] if the class-based method
/// cannot express the true function (overlapping masks).
///
/// # Examples
///
/// ```
/// use hh_dram::geometry::{BankFunction, DramGeometry};
/// use hh_dram::timing::{AccessTiming, TimingProbe};
/// use hh_dram::dramdig::recover;
///
/// let geom = DramGeometry::new(BankFunction::xeon_e2124(), 1 << 30);
/// let probe = TimingProbe::new(geom, AccessTiming::ddr4_2666());
/// let map = recover(&probe)?;
/// assert!(map.bank_fn.equivalent_to(&BankFunction::xeon_e2124()));
/// # Ok::<(), hh_dram::dramdig::RecoverError>(())
/// ```
pub fn recover(probe: &TimingProbe) -> Result<RecoveredMap, RecoverError> {
    let size = probe.geometry().size_bytes();
    let max_bit = 63 - size.leading_zeros() - 1; // highest addressable bit
    let rep = Hpa::new(0);

    // 1. Find a bank-kernel delta with row content: toggling it conflicts.
    let r0 = (ROW_SHIFT..=max_bit)
        .map(|i| 1u64 << i)
        .find(|&d| probe.is_conflict(rep, Hpa::new(d)))
        .ok_or(RecoverError::NoRowKernelDelta)?;

    let in_kernel = |d: u64| -> bool {
        // Ensure the tested delta changes the row so conflicts are
        // observable; XOR-ing r0 (kernel) keeps f(d) intact.
        let probe_delta = if d >> ROW_SHIFT == 0 { d ^ r0 } else { d };
        probe.is_conflict(rep, Hpa::new(probe_delta))
    };

    // 2. Classify unit bits and learn each unit's image coordinates.
    let mut kernel_units: Vec<u32> = Vec::new();
    let mut pivots: Vec<u32> = Vec::new();
    // Coordinates of every non-kernel unit in the pivot-image basis,
    // stored as a bitmask over `pivots` indices.
    let mut coords: Vec<(u32, u32)> = Vec::new();
    'units: for i in MIN_BIT..=max_bit {
        let e_i = 1u64 << i;
        if in_kernel(e_i) {
            kernel_units.push(i);
            continue;
        }
        // Find a pivot subset S with f(e_i) = Σ_{j∈S} f(p_j); subsets are
        // tested smallest-first so minimal representations win.
        let mut subsets: Vec<u32> = (1u32..(1 << pivots.len())).collect();
        subsets.sort_unstable_by_key(|s| s.count_ones());
        for subset in subsets {
            let mut d = e_i;
            for (j, &p) in pivots.iter().enumerate() {
                if subset & (1 << j) != 0 {
                    d ^= 1u64 << p;
                }
            }
            if in_kernel(d) {
                coords.push((i, subset));
                continue 'units;
            }
        }
        // Image independent of all pivots so far: new pivot.
        coords.push((i, 1 << pivots.len()));
        pivots.push(i);
    }

    // 3. Assemble masks: output bit j is the parity over every unit whose
    // coordinates include pivot j.
    let masks: Vec<u64> = (0..pivots.len())
        .map(|j| {
            coords
                .iter()
                .filter(|&&(_, c)| c & (1 << j) != 0)
                .fold(0u64, |m, &(bit, _)| m | (1u64 << bit))
        })
        .collect();
    let bank_fn = BankFunction::new(masks);

    // 4. Split kernel units into row and column bits by hit/conflict.
    let hit_threshold = (probe.timing().same_bank_same_row + probe.timing().different_bank) / 2;
    let mut definite_row_bits = Vec::new();
    let mut column_bits = Vec::new();
    for &i in &kernel_units {
        let lat = probe.measure_pair(rep, Hpa::new(1u64 << i));
        if lat > probe.timing().conflict_threshold() {
            definite_row_bits.push(i);
        } else if lat < hit_threshold {
            column_bits.push(i);
        }
        // Latencies between the two thresholds would indicate a
        // different-bank pair, impossible for kernel units; ignore.
    }

    // 5. Validate on fresh random deltas with guaranteed row content.
    let mut rng = SimRng::seed_from(0xd1a6);
    let mut mispredictions = 0usize;
    for _ in 0..256 {
        let d = (rng.next_u64() & (size - 1) & !((1 << MIN_BIT) - 1)) | r0;
        let predicted = bank_fn.bank_of(d) == 0;
        if in_kernel(d) != predicted {
            mispredictions += 1;
        }
    }
    if mispredictions > 0 {
        return Err(RecoverError::ValidationFailed { mispredictions });
    }

    Ok(RecoveredMap {
        bank_fn,
        definite_row_bits,
        column_bits,
        measurements: probe.measurement_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DramGeometry;
    use crate::timing::AccessTiming;

    fn probe_for(f: BankFunction, size: u64) -> TimingProbe {
        TimingProbe::new(DramGeometry::new(f, size), AccessTiming::ddr4_2666())
    }

    #[test]
    fn recovers_s1_function_exactly() {
        let map = recover(&probe_for(BankFunction::core_i3_10100(), 16 << 30)).unwrap();
        let truth = BankFunction::core_i3_10100();
        assert!(map.bank_fn.equivalent_to(&truth));
        // Non-overlapping masks: the exact mask set is recovered, in some order.
        let mut got = map.bank_fn.masks().to_vec();
        let mut want = truth.masks().to_vec();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn recovers_s2_function_exactly() {
        let map = recover(&probe_for(BankFunction::xeon_e2124(), 16 << 30)).unwrap();
        assert!(map.bank_fn.equivalent_to(&BankFunction::xeon_e2124()));
        assert_eq!(map.bank_fn.bank_count(), 32);
    }

    #[test]
    fn row_and_column_bits_are_classified() {
        let map = recover(&probe_for(BankFunction::core_i3_10100(), 16 << 30)).unwrap();
        // Bits 22..33 are bank-kernel row bits on S1 (16 GiB → max bit 33).
        for b in 22..=33 {
            assert!(
                map.definite_row_bits.contains(&b),
                "bit {b} should be a row bit"
            );
        }
        // Bits 7..12 are bank-kernel column bits on S1.
        for b in 7..=12 {
            assert!(
                map.column_bits.contains(&b),
                "bit {b} should be a column bit"
            );
        }
        // No overlap.
        assert!(map
            .definite_row_bits
            .iter()
            .all(|b| !map.column_bits.contains(b)));
    }

    #[test]
    fn works_on_small_devices() {
        // 1 GiB: bits up to 29 only; the recovered function must still be
        // equivalent on the restricted domain (all masks < 2^22 anyway).
        let map = recover(&probe_for(BankFunction::xeon_e2124(), 1 << 30)).unwrap();
        assert!(map.bank_fn.equivalent_to(&BankFunction::xeon_e2124()));
    }

    #[test]
    fn measurement_budget_is_modest() {
        let probe = probe_for(BankFunction::core_i3_10100(), 16 << 30);
        let map = recover(&probe).unwrap();
        // Tens of units + pairs + 256 validations: well under 2 000.
        assert!(map.measurements < 2_000, "used {}", map.measurements);
    }

    #[test]
    fn single_mask_function() {
        let f = BankFunction::new(vec![BankFunction::mask_from_bits(&[14, 17])]);
        let map = recover(&probe_for(f.clone(), 1 << 30)).unwrap();
        assert!(map.bank_fn.equivalent_to(&f));
        assert_eq!(map.bank_fn.bank_count(), 2);
    }
}

//! DRAM address geometry: bank functions and row addressing.
//!
//! Modern Intel memory controllers compute the DRAM bank of a physical
//! address as a vector of XOR-parities over selected address bits, and the
//! row as a contiguous bit field. HyperHammer's evaluation machines
//! (§5.1 of the paper) use:
//!
//! * **S1, Core i3-10100**: bank bits = parities of address-bit sets
//!   (17,21), (16,20), (15,19), (14,18), (6,13); rows in bits 18–33.
//! * **S2, Xeon E-2124**: bank bits = (17,20), (16,19), (15,18), (7,14),
//!   (8,9,12,13,18,19); rows in bits 18–33.
//!
//! Each row therefore spans 256 KiB of the physical address space, a 2 MiB
//! hugepage contains eight rows, and with 32 banks each (row, bank) pair
//! holds an 8 KiB slice.

use std::fmt;

use hh_sim::addr::{Hpa, HUGE_PAGE_SIZE};

/// Row field location shared by both evaluated microarchitectures:
/// bits 18–33 of the physical address.
pub const ROW_SHIFT: u32 = 18;

/// Number of row bits (rows are bits 18–33 inclusive).
pub const ROW_BITS: u32 = 16;

/// Bytes covered by one row across all banks (256 KiB).
pub const ROW_SPAN: u64 = 1 << ROW_SHIFT;

/// Rows contained in one 2 MiB hugepage (eight).
pub const ROWS_PER_HUGE_PAGE: u64 = HUGE_PAGE_SIZE / ROW_SPAN;

/// An XOR-parity bank-address function.
///
/// Each element of `masks` contributes one bank-index bit: bit *i* of the
/// bank number is the parity of `addr & masks[i]`.
///
/// # Examples
///
/// ```
/// use hh_dram::geometry::BankFunction;
///
/// // A two-bit function: bank = parity(a & 0b110) << 0 | parity(a & 0b01) << 1
/// let f = BankFunction::new(vec![0b110, 0b001]);
/// assert_eq!(f.bank_of(0b010), 0b01);
/// assert_eq!(f.bank_of(0b011), 0b11);
/// assert_eq!(f.bank_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BankFunction {
    masks: Vec<u64>,
}

impl BankFunction {
    /// Creates a bank function from per-bit XOR masks.
    ///
    /// # Panics
    ///
    /// Panics if `masks` is empty, contains a zero mask, or has more than
    /// 16 entries (65 536 banks), which no commodity part approaches.
    pub fn new(masks: Vec<u64>) -> Self {
        assert!(!masks.is_empty(), "bank function needs at least one mask");
        assert!(masks.len() <= 16, "implausible bank count");
        assert!(masks.iter().all(|&m| m != 0), "zero mask in bank function");
        Self { masks }
    }

    /// Builds a mask from a list of address-bit positions, matching how the
    /// paper writes functions, e.g. `(17, 21)`.
    pub fn mask_from_bits(bits: &[u32]) -> u64 {
        bits.iter().fold(0u64, |m, &b| {
            assert!(b < 64, "address bit out of range");
            m | (1u64 << b)
        })
    }

    /// The Core i3-10100 (machine S1) bank function from §5.1.
    pub fn core_i3_10100() -> Self {
        Self::new(vec![
            Self::mask_from_bits(&[17, 21]),
            Self::mask_from_bits(&[16, 20]),
            Self::mask_from_bits(&[15, 19]),
            Self::mask_from_bits(&[14, 18]),
            Self::mask_from_bits(&[6, 13]),
        ])
    }

    /// The Xeon E-2124 (machine S2) bank function from §5.1.
    pub fn xeon_e2124() -> Self {
        Self::new(vec![
            Self::mask_from_bits(&[17, 20]),
            Self::mask_from_bits(&[16, 19]),
            Self::mask_from_bits(&[15, 18]),
            Self::mask_from_bits(&[7, 14]),
            Self::mask_from_bits(&[8, 9, 12, 13, 18, 19]),
        ])
    }

    /// Returns the bank number of a raw physical address.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> u32 {
        let mut bank = 0u32;
        for (i, &mask) in self.masks.iter().enumerate() {
            bank |= ((addr & mask).count_ones() & 1) << i;
        }
        bank
    }

    /// Returns the number of banks this function addresses.
    pub fn bank_count(&self) -> u32 {
        1 << self.masks.len()
    }

    /// Returns the per-bit XOR masks.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// Returns `true` if every mask only uses address bits strictly below
    /// `bit` — the property that lets a THP-backed guest compute banks from
    /// guest-physical addresses (§4.1: bits below 21 are preserved).
    pub fn uses_only_bits_below(&self, bit: u32) -> bool {
        let limit = if bit >= 64 {
            u64::MAX
        } else {
            (1u64 << bit) - 1
        };
        self.masks.iter().all(|&m| m & !limit == 0)
    }

    /// Returns `true` if `other` computes an equivalent partition of the
    /// address space, i.e. the GF(2) row spans of the two mask sets match.
    ///
    /// DRAMDig-style recovery can only identify the bank function up to an
    /// invertible linear recombination of its output bits, so equivalence
    /// — not mask-list equality — is the meaningful comparison.
    pub fn equivalent_to(&self, other: &BankFunction) -> bool {
        span_basis(&self.masks) == span_basis(&other.masks)
    }
}

impl fmt::Display for BankFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, mask) in self.masks.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            let bits: Vec<String> = (0..64)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| b.to_string())
                .collect();
            write!(f, "({})", bits.join(","))?;
        }
        Ok(())
    }
}

/// Computes a canonical (reduced row-echelon) basis of the GF(2) span of
/// the given masks.
pub(crate) fn span_basis(masks: &[u64]) -> Vec<u64> {
    let mut basis: Vec<u64> = Vec::new();
    for &m in masks {
        let mut v = m;
        for &b in &basis {
            let pivot = 1u64 << (63 - b.leading_zeros());
            if v & pivot != 0 {
                v ^= b;
            }
        }
        if v != 0 {
            basis.push(v);
        }
    }
    // Back-substitute so the basis is canonical.
    basis.sort_unstable_by(|a, b| b.cmp(a));
    for i in 0..basis.len() {
        for j in 0..i {
            let pivot = 1u64 << (63 - basis[i].leading_zeros());
            if basis[j] & pivot != 0 {
                basis[j] ^= basis[i];
            }
        }
    }
    basis.sort_unstable_by(|a, b| b.cmp(a));
    basis
}

/// Full DRAM geometry: a bank function plus device size.
///
/// # Examples
///
/// ```
/// use hh_dram::geometry::{BankFunction, DramGeometry};
/// use hh_sim::Hpa;
///
/// let geom = DramGeometry::new(BankFunction::core_i3_10100(), 16 << 30);
/// assert_eq!(geom.bank_count(), 32);
/// assert_eq!(geom.row_of(Hpa::new(0x40000)), 1); // bit 18 set
/// assert_eq!(geom.rows_per_huge_page(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramGeometry {
    bank_fn: BankFunction,
    size_bytes: u64,
}

impl DramGeometry {
    /// Creates a geometry for `size_bytes` of DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a positive multiple of the row span.
    pub fn new(bank_fn: BankFunction, size_bytes: u64) -> Self {
        assert!(size_bytes > 0, "empty DRAM");
        assert_eq!(size_bytes % ROW_SPAN, 0, "size must be row-aligned");
        Self {
            bank_fn,
            size_bytes,
        }
    }

    /// Returns the device size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Returns the bank function.
    pub fn bank_fn(&self) -> &BankFunction {
        &self.bank_fn
    }

    /// Returns the number of banks.
    pub fn bank_count(&self) -> u32 {
        self.bank_fn.bank_count()
    }

    /// Returns the number of rows in the device.
    pub fn row_count(&self) -> u64 {
        self.size_bytes / ROW_SPAN
    }

    /// Returns the number of rows a 2 MiB hugepage spans (eight).
    pub fn rows_per_huge_page(&self) -> u64 {
        ROWS_PER_HUGE_PAGE
    }

    /// Returns the bank of a host-physical address.
    #[inline]
    pub fn bank_of(&self, hpa: Hpa) -> u32 {
        self.bank_fn.bank_of(hpa.raw())
    }

    /// Returns the row index of a host-physical address (bits 18–33).
    #[inline]
    pub fn row_of(&self, hpa: Hpa) -> u64 {
        (hpa.raw() >> ROW_SHIFT) & ((1 << ROW_BITS) - 1)
            | (hpa.raw() >> (ROW_SHIFT + ROW_BITS) << ROW_BITS)
    }

    /// Returns the first byte address of a row.
    #[inline]
    pub fn row_base(&self, row: u64) -> Hpa {
        Hpa::new(row << ROW_SHIFT)
    }

    /// Returns `true` if `hpa` is inside the device.
    #[inline]
    pub fn contains(&self, hpa: Hpa) -> bool {
        hpa.raw() < self.size_bytes
    }

    /// Finds an address in row `row` that maps to `bank`, scanning the
    /// row's 256 KiB span at cache-line (64 B) granularity.
    ///
    /// Returns `None` if the row is outside the device or no cache line of
    /// the row maps to the bank (cannot happen for surjective functions,
    /// but recovered functions may be partial).
    pub fn addr_in(&self, bank: u32, row: u64) -> Option<Hpa> {
        if row >= self.row_count() {
            return None;
        }
        let base = self.row_base(row);
        (0..ROW_SPAN)
            .step_by(64)
            .map(|off| base.add(off))
            .find(|&a| self.bank_of(a) == bank)
    }

    /// Iterates over the cache-line addresses of `(bank, row)` — the 8 KiB
    /// slice of the row stored in that bank.
    pub fn slice_addrs(&self, bank: u32, row: u64) -> impl Iterator<Item = Hpa> + '_ {
        let base = self.row_base(row);
        (0..ROW_SPAN)
            .step_by(64)
            .map(move |off| base.add(off))
            .filter(move |&a| self.bank_of(a) == bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bank_functions_have_32_banks() {
        assert_eq!(BankFunction::core_i3_10100().bank_count(), 32);
        assert_eq!(BankFunction::xeon_e2124().bank_count(), 32);
    }

    #[test]
    fn s1_bank_function_matches_paper_examples() {
        let f = BankFunction::core_i3_10100();
        // Bank bit 4 of S1 is parity of bits 6 and 13.
        assert_eq!(f.bank_of(1 << 6) >> 4, 1);
        assert_eq!(f.bank_of((1 << 6) | (1 << 13)) >> 4, 0);
        // Bank bit 0 is parity of bits 17 and 21.
        assert_eq!(f.bank_of(1 << 17) & 1, 1);
        assert_eq!(f.bank_of((1 << 17) | (1 << 21)) & 1, 0);
    }

    #[test]
    fn bank_function_is_linear() {
        let f = BankFunction::xeon_e2124();
        for (a, b) in [(0x1234u64, 0xabcd00u64), (0x40000, 0x193c0), (0x7, 0x70)] {
            assert_eq!(f.bank_of(a) ^ f.bank_of(b), f.bank_of(a ^ b));
        }
    }

    #[test]
    fn hugepage_bit_preservation() {
        // S1 uses bit 21, so it is NOT fully computable from hugepage
        // offsets alone; S2 is not either (bits 18, 19 are fine but the
        // function is still below 21 except... bits 18/19 < 21, S2 IS).
        assert!(!BankFunction::core_i3_10100().uses_only_bits_below(21));
        assert!(BankFunction::xeon_e2124().uses_only_bits_below(21));
        // Both are computable once bit 21 of the frame is fixed: within a
        // 2 MiB hugepage, bank *differences* depend only on bits < 21.
        let f = BankFunction::core_i3_10100();
        let base = 7u64 << 21;
        let d = f.bank_of(base + 0x100) ^ f.bank_of(base + 0x40100);
        let d2 = f.bank_of(0x100) ^ f.bank_of(0x40100);
        assert_eq!(d, d2);
    }

    #[test]
    fn rows_are_256k_and_8_per_hugepage() {
        let g = DramGeometry::new(BankFunction::core_i3_10100(), 1 << 30);
        assert_eq!(g.row_of(Hpa::new(0)), 0);
        assert_eq!(g.row_of(Hpa::new(ROW_SPAN)), 1);
        assert_eq!(g.row_of(Hpa::new(HUGE_PAGE_SIZE)), 8);
        assert_eq!(g.rows_per_huge_page(), 8);
        assert_eq!(g.row_count(), (1 << 30) / ROW_SPAN);
    }

    #[test]
    fn addr_in_round_trips() {
        let g = DramGeometry::new(BankFunction::xeon_e2124(), 256 << 20);
        for bank in [0u32, 5, 17, 31] {
            for row in [0u64, 3, 100] {
                let a = g.addr_in(bank, row).expect("bank present in row");
                assert_eq!(g.bank_of(a), bank);
                assert_eq!(g.row_of(a), row);
            }
        }
    }

    #[test]
    fn slice_is_8k_per_bank() {
        let g = DramGeometry::new(BankFunction::core_i3_10100(), 256 << 20);
        // 256 KiB row / 32 banks = 8 KiB = 128 cache lines per bank.
        for bank in [0u32, 31] {
            assert_eq!(g.slice_addrs(bank, 2).count(), 128);
        }
    }

    #[test]
    fn span_equivalence_detects_recombination() {
        let f = BankFunction::core_i3_10100();
        let m = f.masks();
        // Recombine: replace mask[0] with mask[0]^mask[1].
        let mut rm = m.to_vec();
        rm[0] ^= rm[1];
        let g = BankFunction::new(rm);
        assert!(f.equivalent_to(&g));
        assert!(!f.equivalent_to(&BankFunction::xeon_e2124()));
    }

    #[test]
    fn display_lists_bits() {
        let f = BankFunction::new(vec![BankFunction::mask_from_bits(&[6, 13])]);
        assert_eq!(f.to_string(), "(6,13)");
    }

    #[test]
    #[should_panic(expected = "row-aligned")]
    fn geometry_rejects_unaligned_size() {
        DramGeometry::new(BankFunction::core_i3_10100(), 1234);
    }
}

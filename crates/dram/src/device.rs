//! The simulated DRAM device: contents + fault engine + mitigations.
//!
//! [`DramDevice`] glues the sparse [`store`](crate::store), the lazy
//! [`fault`](crate::fault) profile and the optional TRR mitigation into
//! one behavioural model. Hammering is expressed as bursts: the caller
//! names the aggressor addresses and an activation count per aggressor
//! (all within one refresh window), and the device computes which
//! vulnerable cells in adjacent rows of the same bank cross their
//! disturbance threshold and flips them **in the backing store**, so
//! corruption propagates to every layer reading that memory.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use hh_sim::addr::Hpa;
use hh_sim::rng::SimRng;
use hh_sim::snap::{Dec, Enc, SnapError};
use hh_trace::Tracer;

use crate::fault::{sample_row_cells, DimmProfile, FlipDirection, VulnerableCell};
use crate::geometry::DramGeometry;
use crate::plan::{BankPlan, HammerPlan, PlanCache, PlanCacheStats, VictimPlan};
use crate::store::SparseStore;

/// Disturbance weight of an aggressor at row distance 1 (immediate
/// neighbour).
const WEIGHT_DISTANCE_1: f64 = 1.0;
/// Disturbance weight at row distance 2 (the "Half-Double" effect —
/// Kogler et al., USENIX Sec '22 — is weaker but real).
const WEIGHT_DISTANCE_2: f64 = 0.5;

/// A hammer access pattern: aggressor byte addresses, all expected to sit
/// in the same bank.
///
/// # Examples
///
/// ```
/// use hh_dram::{DimmProfile, HammerPattern};
///
/// let profile = DimmProfile::test_profile(64 << 20);
/// // Single-sided pair in bank 3 using rows 10 and 11 (victim: row 9).
/// let p = HammerPattern::single_sided_for(&profile.geometry, 3, 9);
/// assert_eq!(p.aggressors().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HammerPattern {
    aggressors: Vec<Hpa>,
}

impl HammerPattern {
    /// Creates a pattern from explicit aggressor addresses.
    ///
    /// # Panics
    ///
    /// Panics if no aggressors are given.
    pub fn new(aggressors: Vec<Hpa>) -> Self {
        assert!(!aggressors.is_empty(), "hammer pattern needs aggressors");
        Self { aggressors }
    }

    /// Single-sided pattern for `victim_row`: activates the two rows
    /// directly above it in the same bank (§4.1: "the attacker uses the
    /// two rows above or below the victim row").
    ///
    /// # Panics
    ///
    /// Panics if the rows do not exist in the geometry.
    pub fn single_sided_for(geometry: &DramGeometry, bank: u32, victim_row: u64) -> Self {
        let a1 = geometry
            .addr_in(bank, victim_row + 1)
            .expect("aggressor row 1 out of device");
        let a2 = geometry
            .addr_in(bank, victim_row + 2)
            .expect("aggressor row 2 out of device");
        Self::new(vec![a1, a2])
    }

    /// Double-sided pattern for `victim_row`: activates the rows directly
    /// above and below it.
    ///
    /// # Panics
    ///
    /// Panics if `victim_row` is 0 or the rows do not exist.
    pub fn double_sided_for(geometry: &DramGeometry, bank: u32, victim_row: u64) -> Self {
        assert!(victim_row > 0, "double-sided needs a row below the victim");
        let lo = geometry
            .addr_in(bank, victim_row - 1)
            .expect("aggressor below victim out of device");
        let hi = geometry
            .addr_in(bank, victim_row + 1)
            .expect("aggressor above victim out of device");
        Self::new(vec![lo, hi])
    }

    /// N-sided pattern: aggressors in `rows`, one address per row, all in
    /// `bank`. Used by the TRRespass-style pattern search.
    pub fn n_sided_for(geometry: &DramGeometry, bank: u32, rows: &[u64]) -> Self {
        Self::new(
            rows.iter()
                .map(|&r| {
                    geometry
                        .addr_in(bank, r)
                        .expect("aggressor row out of device")
                })
                .collect(),
        )
    }

    /// The aggressor addresses.
    pub fn aggressors(&self) -> &[Hpa] {
        &self.aggressors
    }
}

/// A bit flip that the device applied to its backing store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipEvent {
    /// Byte address of the flipped cell.
    pub hpa: Hpa,
    /// Bit within the byte.
    pub bit: u8,
    /// Direction the bit moved.
    pub direction: FlipDirection,
    /// DRAM bank of the cell.
    pub bank: u32,
    /// DRAM row of the cell.
    pub row: u64,
}

/// Result of one hammer burst.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HammerResult {
    /// Flips applied during this burst.
    pub flips: Vec<FlipEvent>,
    /// Total row activations issued (for cost accounting).
    pub activations: u64,
    /// Number of aggressor rows whose disturbance was suppressed by TRR.
    pub trr_refreshes: u64,
}

/// The simulated DRAM device.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct DramDevice {
    profile: DimmProfile,
    store: SparseStore,
    fault_seed: u64,
    rng: SimRng,
    /// Monotonic journal of every flip ever applied, used by upper layers
    /// to implement observationally-equivalent fast corruption scans.
    journal: Vec<FlipEvent>,
    /// Cache of sampled row fault profiles.
    row_cache: HashMap<u64, Vec<VulnerableCell>>,
    /// LRU cache of compiled hammer plans, keyed by aggressor list.
    plan_cache: PlanCache,
    total_activations: u64,
    tracer: Tracer,
}

impl DramDevice {
    /// Creates a device with the given profile; `seed` fixes both the
    /// vulnerability profile and the stochastic flip outcomes.
    pub fn new(profile: DimmProfile, seed: u64) -> Self {
        let mut root = SimRng::seed_from(seed);
        let fault_seed = root.next_u64();
        Self {
            store: SparseStore::new(profile.geometry.size_bytes()),
            profile,
            fault_seed,
            rng: root,
            journal: Vec::new(),
            row_cache: HashMap::new(),
            plan_cache: PlanCache::default(),
            total_activations: 0,
            tracer: Tracer::off(),
        }
    }

    /// Attaches an instrumentation handle; hammer bursts and bit flips
    /// are reported to it from now on.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Returns the address geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.profile.geometry
    }

    /// Returns the DIMM profile.
    pub fn profile(&self) -> &DimmProfile {
        &self.profile
    }

    /// Immutable access to memory contents.
    pub fn store(&self) -> &SparseStore {
        &self.store
    }

    /// Mutable access to memory contents.
    pub fn store_mut(&mut self) -> &mut SparseStore {
        &mut self.store
    }

    /// Convenience: fills `[hpa, hpa+len)` with `value`.
    pub fn fill(&mut self, hpa: Hpa, len: u64, value: u8) {
        self.store.fill(hpa, len, value);
    }

    /// Total row activations issued over the device lifetime.
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// The journal of all flips applied so far. Index it with the length
    /// captured before an operation to see what that operation changed.
    pub fn flip_journal(&self) -> &[FlipEvent] {
        &self.journal
    }

    /// Serializes the device's mutable state into a snapshot stream:
    /// memory contents, RNG position, flip journal, and the activation
    /// counter. The vulnerability profile and both caches are pure
    /// functions of the construction `(profile, seed)` pair and are
    /// rebuilt lazily after [`restore_state`](Self::restore_state).
    pub fn encode_state_into(&self, enc: &mut Enc) {
        self.store.encode_into(enc);
        for w in self.rng.state() {
            enc.u64(w);
        }
        enc.u64(self.journal.len() as u64);
        for f in &self.journal {
            enc.u64(f.hpa.raw());
            enc.u8(f.bit);
            enc.u8(match f.direction {
                FlipDirection::OneToZero => 0,
                FlipDirection::ZeroToOne => 1,
            });
            enc.u32(f.bank);
            enc.u64(f.row);
        }
        enc.u64(self.total_activations);
    }

    /// Restores state captured by [`encode_state_into`](Self::encode_state_into)
    /// onto a device constructed with the **same** profile and seed.
    /// On success the device is bit-identical to the one that was
    /// snapshotted (the caches refill deterministically on demand); on
    /// error the device is left unchanged.
    pub fn restore_state(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapError> {
        let store = SparseStore::decode(dec)?;
        if store.size() != self.profile.geometry.size_bytes() {
            return Err(SnapError::Corrupt("store size does not match geometry"));
        }
        let mut state = [0u64; 4];
        for w in &mut state {
            *w = dec.u64()?;
        }
        if state.iter().all(|&w| w == 0) {
            return Err(SnapError::Corrupt("all-zero rng state"));
        }
        // hpa u64 + bit u8 + direction u8 + bank u32 + row u64 = 22 bytes.
        let flips = dec.count(22)?;
        let mut journal = Vec::with_capacity(flips);
        for _ in 0..flips {
            let hpa = Hpa::new(dec.u64()?);
            if !self.profile.geometry.contains(hpa) {
                return Err(SnapError::Corrupt("flip event outside device"));
            }
            let bit = dec.u8()?;
            if bit > 7 {
                return Err(SnapError::Corrupt("flip bit beyond byte"));
            }
            let direction = match dec.u8()? {
                0 => FlipDirection::OneToZero,
                1 => FlipDirection::ZeroToOne,
                _ => return Err(SnapError::Corrupt("unknown flip direction")),
            };
            journal.push(FlipEvent {
                hpa,
                bit,
                direction,
                bank: dec.u32()?,
                row: dec.u64()?,
            });
        }
        let total_activations = dec.u64()?;
        self.store = store;
        self.rng = SimRng::from_state(state);
        self.journal = journal;
        self.total_activations = total_activations;
        self.row_cache.clear();
        self.plan_cache = PlanCache::with_capacity(self.plan_cache.capacity());
        Ok(())
    }

    /// A copy-on-write clone for machine forking: the backing store
    /// shares untouched pages with `self` (they unshare on first write),
    /// the RNG and journal continue from the current position, and the
    /// fork gets its own cold plan cache and a detached tracer.
    pub fn fork(&self) -> Self {
        Self {
            profile: self.profile.clone(),
            store: self.store.clone(),
            fault_seed: self.fault_seed,
            rng: self.rng.clone(),
            journal: self.journal.clone(),
            row_cache: self.row_cache.clone(),
            plan_cache: PlanCache::with_capacity(self.plan_cache.capacity()),
            total_activations: self.total_activations,
            tracer: Tracer::off(),
        }
    }

    /// The vulnerable cells of `row` (sampled lazily, cached).
    pub fn row_cells(&mut self, row: u64) -> &[VulnerableCell] {
        let seed = self.fault_seed;
        let params = self.profile.fault.clone();
        let geometry = self.profile.geometry.clone();
        self.row_cache
            .entry(row)
            .or_insert_with(|| sample_row_cells(seed, row, &params, &geometry))
    }

    /// Executes one hammer burst: every aggressor row is activated
    /// `rounds` times within a single refresh window.
    ///
    /// Returns the flips applied. Aggressors in different banks are
    /// legal but useless to an attacker (each disturbs only its own
    /// bank's neighbours).
    ///
    /// # Panics
    ///
    /// Panics if any aggressor address is outside the device.
    pub fn hammer(&mut self, pattern: &HammerPattern, rounds: u64) -> HammerResult {
        let result = self.hammer_untraced(pattern, rounds);
        self.trace_burst(&result);
        result
    }

    /// Reports one finished burst to the attached tracer (flips first,
    /// then the burst summary, all at the same simulated instant).
    fn trace_burst(&self, result: &HammerResult) {
        if !self.tracer.is_on() {
            return;
        }
        for f in &result.flips {
            self.tracer.bit_flip(
                f.hpa.raw(),
                f.bit,
                f.direction == crate::fault::FlipDirection::OneToZero,
            );
        }
        self.tracer.hammer(
            result.activations,
            result.trr_refreshes,
            result.flips.len() as u64,
        );
    }

    fn hammer_untraced(&mut self, pattern: &HammerPattern, rounds: u64) -> HammerResult {
        let plan = self.plan_for(pattern);
        self.execute_plan(&plan, rounds)
    }

    /// Executes a precompiled plan and reports to the tracer, exactly
    /// like [`hammer`](Self::hammer) but skipping the plan-cache lookup.
    /// Useful when the caller holds the plan across many bursts (the
    /// bench harness and the profiler's characterize loop do).
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a different device (seed or
    /// geometry mismatch).
    pub fn hammer_planned(&mut self, plan: &HammerPlan, rounds: u64) -> HammerResult {
        let result = self.execute_plan(plan, rounds);
        self.trace_burst(&result);
        result
    }

    /// Returns the cached plan for `pattern`, compiling and caching it on
    /// a miss. Cache traffic is reported to the tracer as counters only,
    /// so event streams are identical whether a burst hit or missed.
    pub fn plan_for(&mut self, pattern: &HammerPattern) -> Arc<HammerPlan> {
        if let Some(plan) = self.plan_cache.get(pattern.aggressors()) {
            self.tracer.plan_lookup(true);
            return plan;
        }
        let plan = Arc::new(self.compile_plan(pattern));
        self.plan_cache.insert(Arc::clone(&plan));
        self.tracer.plan_lookup(false);
        plan
    }

    /// Precompiles `pattern` into the plan cache without hammering, so a
    /// later [`hammer`](Self::hammer) is a guaranteed cache hit. Compiling
    /// draws no randomness, which makes warmed and cold bursts
    /// bit-identical (see `tests/plan_props.rs`).
    pub fn warm_plan(&mut self, pattern: &HammerPattern) {
        let _ = self.plan_for(pattern);
    }

    /// Compiles `pattern` into a fresh [`HammerPlan`] against this
    /// device's geometry and fault profile, bypassing the cache.
    ///
    /// Everything about a burst that does not depend on `rounds` or the
    /// RNG is resolved here: aggressors grouped per bank into sorted
    /// unique row lists, victim rows within distance 2 collected with
    /// their distance weights, and each victim's bank-local vulnerable
    /// cells embedded.
    ///
    /// # Panics
    ///
    /// Panics if any aggressor address is outside the device.
    pub fn compile_plan(&mut self, pattern: &HammerPattern) -> HammerPlan {
        let geometry = self.profile.geometry.clone();
        for &a in pattern.aggressors() {
            assert!(geometry.contains(a), "aggressor {a} outside device");
        }

        // Group aggressors by (bank, row); multiple addresses in the same
        // row of a bank are one aggressor. Banks in ascending order so
        // execution (and therefore RNG consumption) is deterministic.
        let mut per_bank_rows: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for &a in pattern.aggressors() {
            let rows = per_bank_rows.entry(geometry.bank_of(a)).or_default();
            let row = geometry.row_of(a);
            if !rows.contains(&row) {
                rows.push(row);
            }
        }

        let mut banks = Vec::with_capacity(per_bank_rows.len());
        for (bank, mut rows) in per_bank_rows {
            rows.sort_unstable();

            // Victim rows within distance 2 of any aggressor, ascending,
            // each with its (aggressor index, weight) contributions. The
            // TRR verdict gates contributions at execution time.
            let mut disturbance: BTreeMap<u64, Vec<(u32, f64)>> = BTreeMap::new();
            for (i, &row) in rows.iter().enumerate() {
                for (dist, weight) in [(1u64, WEIGHT_DISTANCE_1), (2, WEIGHT_DISTANCE_2)] {
                    for victim in [row.checked_sub(dist), Some(row + dist)]
                        .into_iter()
                        .flatten()
                    {
                        if victim >= geometry.row_count() || rows.contains(&victim) {
                            continue;
                        }
                        disturbance
                            .entry(victim)
                            .or_default()
                            .push((i as u32, weight));
                    }
                }
            }

            let victims = disturbance
                .into_iter()
                .map(|(row, contribs)| {
                    let cells: Vec<VulnerableCell> = self
                        .row_cells(row)
                        .iter()
                        .copied()
                        .filter(|c| geometry.bank_of(c.hpa) == bank)
                        .collect();
                    VictimPlan::new(row, contribs, cells)
                })
                .collect();
            banks.push(BankPlan::new(bank, rows, victims));
        }

        HammerPlan::new(pattern.aggressors().to_vec(), self.device_token(), banks)
    }

    /// Identifies the (seed, geometry) a plan is valid for.
    fn device_token(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let g = &self.profile.geometry;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [
            self.fault_seed,
            g.size_bytes(),
            g.row_count(),
            u64::from(g.bank_count()),
        ] {
            h = (h ^ word).wrapping_mul(PRIME);
        }
        h
    }

    /// Plan-cache counters (hits, misses, occupancy).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Replaces the plan cache with an empty one holding `capacity`
    /// plans. Existing plans are dropped; stats reset.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.plan_cache = PlanCache::with_capacity(capacity);
    }

    /// Runs one burst from a compiled plan. The stochastic parts (TRR
    /// sampler overflow, per-cell flip draws) happen here against the
    /// device RNG, in the same order the uncompiled path used, so plan
    /// reuse never changes outcomes.
    fn execute_plan(&mut self, plan: &HammerPlan, rounds: u64) -> HammerResult {
        assert_eq!(
            plan.device_token(),
            self.device_token(),
            "hammer plan was compiled for a different device"
        );
        let activations = rounds * plan.aggressors().len() as u64;
        self.total_activations += activations;

        let mut result = HammerResult {
            activations,
            ..HammerResult::default()
        };

        for bank_plan in plan.banks() {
            let suppressed = self.trr_suppressed(bank_plan.rows(), rounds);
            result.trr_refreshes += suppressed.iter().filter(|&&s| s).count() as u64;

            for victim in bank_plan.victims() {
                let mut effective = 0.0;
                for &(idx, weight) in victim.contribs() {
                    if !suppressed[idx as usize] {
                        effective += rounds as f64 * weight;
                    }
                }
                // All contributing aggressors refreshed away: the old
                // path never visited this victim, so no RNG draws.
                if effective == 0.0 {
                    continue;
                }
                self.disturb_cells(bank_plan.bank(), victim, effective, &mut result);
            }
        }

        result
    }

    /// Per-aggressor TRR verdicts: `true` means the mitigation caught and
    /// neutralized that aggressor this window.
    fn trr_suppressed(&mut self, rows: &[u64], rounds: u64) -> Vec<bool> {
        match self.profile.trr {
            None => vec![false; rows.len()],
            Some(trr) => {
                if rounds < trr.detection_threshold {
                    return vec![false; rows.len()];
                }
                if rows.len() <= trr.tracker_capacity {
                    // All aggressors tracked and refreshed away.
                    vec![true; rows.len()]
                } else {
                    // Sampler overflows: a random subset of capacity-many
                    // rows is tracked; the rest hammer through.
                    let mut verdicts = vec![false; rows.len()];
                    let mut remaining = trr.tracker_capacity;
                    let mut candidates: Vec<usize> = (0..rows.len()).collect();
                    while remaining > 0 && !candidates.is_empty() {
                        let pick = self.rng.gen_range(0..candidates.len());
                        verdicts[candidates.swap_remove(pick)] = true;
                        remaining -= 1;
                    }
                    verdicts
                }
            }
        }
    }

    fn disturb_cells(
        &mut self,
        bank: u32,
        victim: &VictimPlan,
        effective: f64,
        result: &mut HammerResult,
    ) {
        let row = victim.row();
        for cell in victim.cells() {
            if (effective as u64) < cell.threshold {
                continue;
            }
            if !self.rng.gen_bool(cell.flip_probability) {
                continue;
            }
            let byte = self.store.read_u8(cell.hpa);
            let current_bit = (byte >> cell.bit) & 1;
            if current_bit != cell.direction.source_bit() {
                continue; // unidirectional: wrong stored value, no flip
            }
            let flipped = byte ^ (1 << cell.bit);
            self.store.write_u8(cell.hpa, flipped);
            let event = FlipEvent {
                hpa: cell.hpa,
                bit: cell.bit,
                direction: cell.direction,
                bank,
                row,
            };
            self.journal.push(event);
            result.flips.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TrrConfig;

    fn device() -> DramDevice {
        DramDevice::new(DimmProfile::test_profile(64 << 20), 1234)
    }

    /// Finds a (bank, victim_row, cell) with a stable cell for tests.
    fn find_stable_victim(dev: &mut DramDevice) -> (u32, u64, VulnerableCell) {
        let rows = dev.geometry().row_count();
        for row in 1..rows - 2 {
            let cells: Vec<_> = dev.row_cells(row).to_vec();
            for c in cells {
                if c.flip_probability > 0.9 && c.threshold < 350_000 {
                    let bank = dev.geometry().bank_of(c.hpa);
                    return (bank, row, c);
                }
            }
        }
        panic!("dense test profile should contain a stable cell");
    }

    #[test]
    fn single_sided_flips_a_prepared_victim() {
        let mut dev = device();
        let (bank, row, cell) = find_stable_victim(&mut dev);
        // Store the source value at the cell.
        let source_byte = if cell.direction.source_bit() == 1 {
            0xff
        } else {
            0x00
        };
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            source_byte,
        );
        let pattern = HammerPattern::single_sided_for(dev.geometry(), bank, row);
        let result = dev.hammer(&pattern, 400_000);
        assert!(
            result
                .flips
                .iter()
                .any(|f| f.hpa == cell.hpa && f.bit == cell.bit),
            "expected flip at {cell:?}, got {:?}",
            result.flips
        );
        // The flip is visible in memory.
        let byte = dev.store().read_u8(cell.hpa);
        assert_eq!((byte >> cell.bit) & 1, cell.direction.target_bit());
    }

    #[test]
    fn flips_are_unidirectional() {
        let mut dev = device();
        let (bank, row, cell) = find_stable_victim(&mut dev);
        // Store the TARGET value: the cell must NOT flip.
        let target_byte = if cell.direction.target_bit() == 1 {
            0xff
        } else {
            0x00
        };
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            target_byte,
        );
        let pattern = HammerPattern::single_sided_for(dev.geometry(), bank, row);
        let result = dev.hammer(&pattern, 400_000);
        assert!(
            !result
                .flips
                .iter()
                .any(|f| f.hpa == cell.hpa && f.bit == cell.bit),
            "cell flipped against its direction"
        );
    }

    #[test]
    fn insufficient_rounds_do_not_flip() {
        let mut dev = device();
        let (bank, row, cell) = find_stable_victim(&mut dev);
        let source_byte = if cell.direction.source_bit() == 1 {
            0xff
        } else {
            0x00
        };
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            source_byte,
        );
        let pattern = HammerPattern::single_sided_for(dev.geometry(), bank, row);
        // Far below any threshold (min 100k, single-sided weight 1.5).
        let result = dev.hammer(&pattern, 1_000);
        assert!(result.flips.is_empty());
    }

    #[test]
    fn double_sided_is_stronger_than_single_sided() {
        // A cell with threshold T flips double-sided at rounds T/2 but
        // needs T/1.5 single-sided.
        let mut dev = device();
        let (bank, row, cell) = find_stable_victim(&mut dev);
        let source_byte = if cell.direction.source_bit() == 1 {
            0xff
        } else {
            0x00
        };
        let rounds = cell.threshold / 2 + 1_000;
        // Single-sided at these rounds: effective = 1.5 × rounds < T when
        // rounds < 2T/3. Pick rounds between T/2 and 2T/3.
        assert!(rounds < cell.threshold * 2 / 3);
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            source_byte,
        );
        let ss = dev.hammer(
            &HammerPattern::single_sided_for(dev.geometry(), bank, row),
            rounds,
        );
        assert!(!ss
            .flips
            .iter()
            .any(|f| f.hpa == cell.hpa && f.bit == cell.bit));
        let ds = dev.hammer(
            &HammerPattern::double_sided_for(dev.geometry(), bank, row),
            rounds,
        );
        assert!(ds
            .flips
            .iter()
            .any(|f| f.hpa == cell.hpa && f.bit == cell.bit));
    }

    #[test]
    fn wrong_bank_does_not_flip() {
        let mut dev = device();
        let (bank, row, cell) = find_stable_victim(&mut dev);
        let source_byte = if cell.direction.source_bit() == 1 {
            0xff
        } else {
            0x00
        };
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            source_byte,
        );
        let other_bank = (bank + 1) % dev.geometry().bank_count();
        let pattern = HammerPattern::single_sided_for(dev.geometry(), other_bank, row);
        let result = dev.hammer(&pattern, 400_000);
        assert!(!result
            .flips
            .iter()
            .any(|f| f.hpa == cell.hpa && f.bit == cell.bit));
    }

    #[test]
    fn trr_blocks_double_sided_but_not_nine_sided() {
        let profile = DimmProfile::test_profile(64 << 20).with_trr(TrrConfig::production());
        let mut dev = DramDevice::new(profile, 1234);
        let (bank, row, cell) = find_stable_victim(&mut dev);
        let source_byte = if cell.direction.source_bit() == 1 {
            0xff
        } else {
            0x00
        };
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            source_byte,
        );

        let ds = dev.hammer(
            &HammerPattern::double_sided_for(dev.geometry(), bank, row),
            400_000,
        );
        assert!(ds.flips.is_empty(), "TRR should stop a 2-sided pattern");
        assert!(ds.trr_refreshes > 0);

        // Nine aggressors overflow the 2-entry tracker; with 9 rows and 2
        // tracked, the immediate neighbours of the victim usually survive.
        let rows: Vec<u64> = (row.saturating_sub(5)..row + 6)
            .filter(|&r| r != row)
            .take(9)
            .collect();
        let mut flipped = false;
        for _ in 0..8 {
            let ns = dev.hammer(
                &HammerPattern::n_sided_for(dev.geometry(), bank, &rows),
                400_000,
            );
            if ns
                .flips
                .iter()
                .any(|f| f.hpa == cell.hpa && f.bit == cell.bit)
            {
                flipped = true;
                break;
            }
            // Re-arm the victim in case some other cell flipped the byte.
            dev.fill(
                dev.geometry().row_base(row),
                crate::geometry::ROW_SPAN,
                source_byte,
            );
        }
        assert!(flipped, "many-sided pattern should eventually bypass TRR");
    }

    #[test]
    fn journal_accumulates() {
        let mut dev = device();
        let (bank, row, cell) = find_stable_victim(&mut dev);
        let source_byte = if cell.direction.source_bit() == 1 {
            0xff
        } else {
            0x00
        };
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            source_byte,
        );
        let before = dev.flip_journal().len();
        let pattern = HammerPattern::single_sided_for(dev.geometry(), bank, row);
        let res = dev.hammer(&pattern, 400_000);
        assert_eq!(dev.flip_journal().len(), before + res.flips.len());
    }

    #[test]
    fn activations_are_accounted() {
        let mut dev = device();
        let pattern = HammerPattern::single_sided_for(dev.geometry(), 0, 5);
        let res = dev.hammer(&pattern, 1_000);
        assert_eq!(res.activations, 2_000);
        assert_eq!(dev.total_activations(), 2_000);
    }

    #[test]
    fn hammer_reports_to_an_attached_tracer() {
        use hh_trace::{Counter, TraceMode, Tracer};
        let mut dev = device();
        let (bank, row, cell) = find_stable_victim(&mut dev);
        let source_byte = if cell.direction.source_bit() == 1 {
            0xff
        } else {
            0x00
        };
        dev.fill(
            dev.geometry().row_base(row),
            crate::geometry::ROW_SPAN,
            source_byte,
        );
        let tracer = Tracer::new(TraceMode::Full);
        dev.set_tracer(tracer.clone());
        let pattern = HammerPattern::single_sided_for(dev.geometry(), bank, row);
        let result = dev.hammer(&pattern, 400_000);
        let sink = tracer.take_sink().expect("tracer attached");
        let m = sink.metrics();
        assert_eq!(m.get(Counter::DramHammerCalls), 1);
        assert_eq!(m.get(Counter::DramActivations), result.activations);
        assert_eq!(m.get(Counter::DramBitFlips), result.flips.len() as u64);
        // One bit_flip event per flip plus the burst summary.
        assert_eq!(sink.events().len(), result.flips.len() + 1);
        assert_eq!(
            sink.events().last().expect("summary event").event.kind(),
            "hammer"
        );
    }

    #[test]
    fn repeated_bursts_hit_the_plan_cache() {
        let mut dev = device();
        let pattern = HammerPattern::single_sided_for(dev.geometry(), 2, 30);
        dev.hammer(&pattern, 1_000);
        dev.hammer(&pattern, 2_000);
        dev.hammer(&pattern, 3_000);
        let stats = dev.plan_stats();
        assert_eq!(stats.misses, 1, "one compile for three bursts");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn plan_cache_traffic_is_traced_as_counters() {
        use hh_trace::{Counter, TraceMode, Tracer};
        let mut dev = device();
        let tracer = Tracer::new(TraceMode::Metrics);
        dev.set_tracer(tracer.clone());
        let pattern = HammerPattern::single_sided_for(dev.geometry(), 2, 30);
        dev.hammer(&pattern, 1_000);
        dev.hammer(&pattern, 1_000);
        let sink = tracer.take_sink().expect("tracer attached");
        assert_eq!(sink.metrics().get(Counter::DramPlanCompiles), 1);
        assert_eq!(sink.metrics().get(Counter::DramPlanHits), 1);
    }

    #[test]
    fn hammer_planned_matches_hammer() {
        let mk = || {
            let mut dev = device();
            dev.fill(Hpa::new(0), 64 << 20, 0xff);
            dev
        };
        let mut via_pattern = mk();
        let mut via_plan = mk();
        let pattern = HammerPattern::double_sided_for(via_pattern.geometry(), 1, 40);
        let plan = via_plan.compile_plan(&pattern);
        let a = via_pattern.hammer(&pattern, 400_000);
        let b = via_plan.hammer_planned(&plan, 400_000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different device")]
    fn plans_do_not_transfer_across_devices() {
        let mut dev_a = DramDevice::new(DimmProfile::test_profile(64 << 20), 1);
        let mut dev_b = DramDevice::new(DimmProfile::test_profile(64 << 20), 2);
        let pattern = HammerPattern::single_sided_for(dev_a.geometry(), 0, 10);
        let plan = dev_a.compile_plan(&pattern);
        dev_b.hammer_planned(&plan, 1_000);
    }

    #[test]
    fn same_seed_same_flips() {
        let run = || {
            let mut dev = DramDevice::new(DimmProfile::test_profile(64 << 20), 777);
            dev.fill(Hpa::new(0), 64 << 20, 0xff);
            let pattern = HammerPattern::single_sided_for(dev.geometry(), 4, 10);
            dev.hammer(&pattern, 400_000).flips
        };
        assert_eq!(run(), run());
    }

    /// A device with accumulated state: filled memory, flips in the
    /// journal, RNG advanced past its seed position.
    fn hammered_device() -> DramDevice {
        let mut dev = DramDevice::new(DimmProfile::test_profile(64 << 20), 777);
        dev.fill(Hpa::new(0), 64 << 20, 0xff);
        let pattern = HammerPattern::single_sided_for(dev.geometry(), 4, 10);
        dev.hammer(&pattern, 400_000);
        dev
    }

    #[test]
    fn snapshot_restores_a_bit_identical_device() {
        let mut original = hammered_device();
        let mut enc = Enc::new();
        original.encode_state_into(&mut enc);
        let bytes = enc.into_bytes();

        let mut restored = DramDevice::new(DimmProfile::test_profile(64 << 20), 777);
        let mut dec = Dec::new(&bytes);
        restored.restore_state(&mut dec).expect("valid snapshot");
        dec.finish().expect("no trailing bytes");

        assert_eq!(restored.store(), original.store());
        assert_eq!(restored.flip_journal(), original.flip_journal());
        assert_eq!(restored.total_activations(), original.total_activations());

        // The RNG must continue on the same stream: hammering both
        // devices from here yields identical stochastic outcomes.
        let pattern = HammerPattern::single_sided_for(original.geometry(), 2, 20);
        for _ in 0..4 {
            assert_eq!(
                original.hammer(&pattern, 400_000),
                restored.hammer(&pattern, 400_000)
            );
        }
        assert_eq!(restored.store(), original.store());
    }

    #[test]
    fn fork_shares_pages_and_then_diverges() {
        let mut parent = hammered_device();
        let mut child = parent.fork();
        assert_eq!(child.store(), parent.store());
        assert!(child.store().shared_pages() > 0, "fork should be CoW");

        // Divergent hammering after the fork affects only one side.
        let pattern = HammerPattern::single_sided_for(parent.geometry(), 5, 30);
        let parent_before = parent.store().clone();
        child.hammer(&pattern, 400_000);
        assert_eq!(parent.store(), &parent_before);

        // Both sides inherit the same RNG position, so the same bursts
        // produce the same flips.
        let mut twin = parent.fork();
        assert_eq!(
            parent.hammer(&pattern, 400_000),
            twin.hammer(&pattern, 400_000)
        );
    }

    #[test]
    fn corrupt_device_bytes_are_typed_errors_not_panics() {
        let original = hammered_device();
        let mut enc = Enc::new();
        original.encode_state_into(&mut enc);
        let bytes = enc.into_bytes();

        // Sample truncation points (every length would be quadratic in
        // the multi-KiB snapshot); always include both edges.
        let pristine = DramDevice::new(DimmProfile::test_profile(64 << 20), 777);
        let lens = (0..bytes.len())
            .step_by(97)
            .chain([bytes.len().saturating_sub(1)]);
        for len in lens {
            let mut dev = DramDevice::new(DimmProfile::test_profile(64 << 20), 777);
            let mut dec = Dec::new(&bytes[..len]);
            let err = dev
                .restore_state(&mut dec)
                .expect_err("truncated snapshot must fail");
            let _ = err.to_string();
            // A failed restore leaves the device untouched.
            assert_eq!(dev.store(), pristine.store());
        }

        // A snapshot from a differently sized device is rejected.
        let mut small = DramDevice::new(DimmProfile::test_profile(32 << 20), 777);
        let mut dec = Dec::new(&bytes);
        assert_eq!(
            small.restore_state(&mut dec).err(),
            Some(SnapError::Corrupt("store size does not match geometry"))
        );
    }
}

impl DramDevice {
    /// RowPress-style disturbance (Luo et al., ISCA '23): keeping an
    /// aggressor row *open* for an extended time amplifies read
    /// disturbance, so far fewer activations are needed than classic
    /// Rowhammer. `open_amplification` models the ratio of row-open time
    /// to the minimum (tRAS): each activation counts that many times
    /// toward victims' thresholds, capped at 128× (the order of magnitude
    /// the paper reports for maximum tAggON).
    ///
    /// This is an extension beyond HyperHammer (which only cites
    /// RowPress); it shares the fault model, so mitigations tested
    /// against one apply to both.
    ///
    /// # Panics
    ///
    /// Panics if `open_amplification` is not ≥ 1.
    pub fn rowpress(
        &mut self,
        pattern: &HammerPattern,
        rounds: u64,
        open_amplification: u64,
    ) -> HammerResult {
        assert!(open_amplification >= 1, "amplification must be >= 1");
        let amp = open_amplification.min(128);
        let mut result = self.hammer_untraced(pattern, rounds.saturating_mul(amp));
        // Physical activations issued are the *un*amplified count; the
        // amplification came from time, not from extra ACT commands.
        result.activations = rounds * pattern.aggressors().len() as u64;
        self.total_activations -= rounds * (amp - 1) * pattern.aggressors().len() as u64;
        self.trace_burst(&result);
        result
    }
}

#[cfg(test)]
mod rowpress_tests {
    use super::*;
    use crate::fault::DimmProfile;

    #[test]
    fn rowpress_flips_with_far_fewer_activations() {
        let mut dev = DramDevice::new(DimmProfile::test_profile(64 << 20), 1234);
        dev.fill(hh_sim::Hpa::new(0), 64 << 20, 0xff);
        // 4 000 activations: hopeless for classic hammering (min
        // threshold 100 k)...
        let pattern = HammerPattern::single_sided_for(dev.geometry(), 3, 20);
        let classic = dev.hammer(&pattern, 4_000);
        assert!(classic.flips.is_empty());
        // ...but with 100× row-open amplification the same activation
        // budget flips.
        let mut flipped = false;
        for row in 4..60 {
            for bank in 0..8 {
                let p = HammerPattern::single_sided_for(dev.geometry(), bank, row);
                if !dev.rowpress(&p, 4_000, 100).flips.is_empty() {
                    flipped = true;
                }
            }
        }
        assert!(flipped, "amplified disturbance must cross thresholds");
    }

    #[test]
    fn rowpress_accounts_physical_activations_only() {
        let mut dev = DramDevice::new(DimmProfile::test_profile(32 << 20), 7);
        let pattern = HammerPattern::single_sided_for(dev.geometry(), 0, 10);
        let before = dev.total_activations();
        let result = dev.rowpress(&pattern, 1_000, 64);
        assert_eq!(result.activations, 2_000);
        assert_eq!(dev.total_activations(), before + 2_000);
    }

    #[test]
    #[should_panic(expected = "amplification")]
    fn rowpress_rejects_zero_amplification() {
        let mut dev = DramDevice::new(DimmProfile::test_profile(32 << 20), 7);
        let pattern = HammerPattern::single_sided_for(dev.geometry(), 0, 10);
        dev.rowpress(&pattern, 1_000, 0);
    }
}

//! Plan-cache determinism properties.
//!
//! The compiled-plan layer is only allowed to make bursts *faster*, never
//! *different*: a burst executed from a cached plan, a warmed plan or a
//! caller-held plan must be bit-identical to one whose plan was compiled
//! cold inside the call — flips, journal, trace events and all. These
//! properties run over randomized patterns (including multi-bank ones),
//! geometries and TRR configurations via the workspace's deterministic
//! `check::cases` harness.

use hh_dram::device::{DramDevice, HammerPattern};
use hh_dram::fault::{DimmProfile, TrrConfig};
use hh_sim::check;
use hh_sim::rng::SimRng;
use hh_sim::Hpa;
use hh_trace::{Counter, TraceMode, Tracer};

/// Draws a random device profile: one of a few DIMM sizes, TRR on or off.
fn random_profile(rng: &mut SimRng) -> DimmProfile {
    let size = [32u64 << 20, 64 << 20, 128 << 20][rng.gen_range(0u64..3) as usize];
    let profile = DimmProfile::test_profile(size);
    if rng.gen_bool(0.5) {
        profile.with_trr(TrrConfig::production())
    } else {
        profile
    }
}

/// Draws a random pattern: 1–8 aggressors spread over 1–3 banks, rows
/// close enough together that victims overlap sometimes.
fn random_pattern(rng: &mut SimRng, dev: &DramDevice) -> HammerPattern {
    let geometry = dev.geometry();
    let n = rng.gen_range(1u64..9) as usize;
    let bank_count = u64::from(geometry.bank_count());
    let base_bank = rng.gen_range(0..bank_count) as u32;
    let bank_spread = rng.gen_range(1u64..4) as u32;
    let base_row = rng.gen_range(1..geometry.row_count() - 16);
    let aggressors: Vec<Hpa> = (0..n)
        .map(|_| {
            let bank = (base_bank + rng.gen_range(0..u64::from(bank_spread)) as u32)
                % geometry.bank_count();
            let row = base_row + rng.gen_range(0u64..12);
            geometry.addr_in(bank, row).expect("row in range")
        })
        .collect();
    HammerPattern::new(aggressors)
}

fn traced_device(profile: DimmProfile, seed: u64) -> (DramDevice, Tracer) {
    let mut dev = DramDevice::new(profile, seed);
    dev.fill(Hpa::new(0), dev.geometry().size_bytes(), 0xff);
    let tracer = Tracer::new(TraceMode::Full);
    dev.set_tracer(tracer.clone());
    (dev, tracer)
}

/// Cold compile inside `hammer` vs a pre-warmed cache: identical results,
/// journals and trace event streams.
#[test]
fn warmed_plan_bursts_are_bit_identical_to_cold_bursts() {
    check::cases(0x9a57_0001, 48, |rng| {
        let profile = random_profile(rng);
        let seed = rng.next_u64();
        let rounds = rng.gen_range(1_000..450_000);

        let (mut cold, cold_tracer) = traced_device(profile.clone(), seed);
        let (mut warm, warm_tracer) = traced_device(profile, seed);
        let pattern = random_pattern(rng, &cold);

        warm.warm_plan(&pattern);
        assert_eq!(warm.plan_stats().misses, 1);

        let cold_result = cold.hammer(&pattern, rounds);
        let warm_result = warm.hammer(&pattern, rounds);
        assert_eq!(warm.plan_stats().hits, 1, "warmed burst must hit");

        assert_eq!(cold_result, warm_result);
        assert_eq!(cold.flip_journal(), warm.flip_journal());

        let cold_sink = cold_tracer.take_sink().expect("tracer attached");
        let warm_sink = warm_tracer.take_sink().expect("tracer attached");
        assert_eq!(
            format!("{:?}", cold_sink.events()),
            format!("{:?}", warm_sink.events()),
            "event streams must not reveal cache state"
        );
        for c in [
            Counter::DramHammerCalls,
            Counter::DramActivations,
            Counter::DramBitFlips,
            Counter::DramTrrRefreshes,
        ] {
            assert_eq!(cold_sink.metrics().get(c), warm_sink.metrics().get(c));
        }
        // Only the plan counters may differ: one compile either way, but
        // the warmed device served the burst from cache.
        assert_eq!(cold_sink.metrics().get(Counter::DramPlanCompiles), 1);
        assert_eq!(warm_sink.metrics().get(Counter::DramPlanCompiles), 1);
        assert_eq!(cold_sink.metrics().get(Counter::DramPlanHits), 0);
        assert_eq!(warm_sink.metrics().get(Counter::DramPlanHits), 1);
    });
}

/// A caller-held plan driven through `hammer_planned` behaves exactly
/// like re-presenting the pattern, burst after burst.
#[test]
fn caller_held_plans_match_pattern_resubmission() {
    check::cases(0x9a57_0002, 32, |rng| {
        let profile = random_profile(rng);
        let seed = rng.next_u64();
        let rounds = rng.gen_range(1_000..450_000);

        let (mut by_pattern, _) = traced_device(profile.clone(), seed);
        let (mut by_plan, _) = traced_device(profile, seed);
        let pattern = random_pattern(rng, &by_pattern);
        let plan = by_plan.plan_for(&pattern);

        for _ in 0..3 {
            let a = by_pattern.hammer(&pattern, rounds);
            let b = by_plan.hammer_planned(&plan, rounds);
            assert_eq!(a, b);
        }
        assert_eq!(by_pattern.flip_journal(), by_plan.flip_journal());
        assert_eq!(by_pattern.total_activations(), by_plan.total_activations());
    });
}

/// Cache evictions only cost a recompile — results are unchanged even
/// when the working set overflows a tiny cache.
#[test]
fn eviction_churn_does_not_change_outcomes() {
    check::cases(0x9a57_0003, 16, |rng| {
        let profile = random_profile(rng);
        let seed = rng.next_u64();
        let rounds = rng.gen_range(1_000..300_000);

        let (mut big, _) = traced_device(profile.clone(), seed);
        let (mut tiny, _) = traced_device(profile, seed);
        tiny.set_plan_cache_capacity(2);

        let patterns: Vec<HammerPattern> = (0..6).map(|_| random_pattern(rng, &big)).collect();
        // Two sweeps: the second is all hits for `big`, mostly misses
        // for `tiny` (working set 6 > capacity 2).
        for _ in 0..2 {
            for p in &patterns {
                assert_eq!(big.hammer(p, rounds), tiny.hammer(p, rounds));
            }
        }
        assert_eq!(big.flip_journal(), tiny.flip_journal());
        assert!(tiny.plan_stats().misses > big.plan_stats().misses);
        assert_eq!(tiny.plan_stats().len, 2);
    });
}

//! Property-based tests on the DRAM model's invariants, driven by the
//! deterministic `hh_sim::check` harness.

use hh_dram::geometry::{BankFunction, DramGeometry, ROW_SPAN};
use hh_dram::store::SparseStore;
use hh_dram::{DimmProfile, DramDevice, HammerPattern};
use hh_sim::check;
use hh_sim::Hpa;

/// (bank, row, column-within-slice) is a faithful decomposition:
/// distinct addresses never collide on all three coordinates.
#[test]
fn address_decomposition_is_injective() {
    check::cases(0xd4a1, check::DEFAULT_CASES, |rng| {
        let a = rng.gen_range(0u64..32 << 20) & !63;
        let b = rng.gen_range(0u64..32 << 20) & !63;
        if a == b {
            return;
        }
        let g = DramGeometry::new(BankFunction::xeon_e2124(), 32 << 20);
        let (ha, hb) = (Hpa::new(a), Hpa::new(b));
        let same_all = g.bank_of(ha) == g.bank_of(hb)
            && g.row_of(ha) == g.row_of(hb)
            && a % ROW_SPAN != b % ROW_SPAN; // same row+bank, different line: fine
                                             // Only assert true injectivity at identical in-row offsets.
        if g.row_of(ha) == g.row_of(hb) && a % ROW_SPAN == b % ROW_SPAN {
            panic!("same row and offset implies same address");
        }
        let _ = same_all;
    });
}

/// Each row slice for a bank has the same size: the row span divided
/// evenly by the bank count.
#[test]
fn slices_partition_rows() {
    check::cases(0xd4a2, 64, |rng| {
        let row = rng.gen_range(0u64..64);
        let g = DramGeometry::new(BankFunction::core_i3_10100(), 32 << 20);
        let per_bank = (ROW_SPAN / 64) / u64::from(g.bank_count());
        let mut total = 0usize;
        for bank in 0..g.bank_count() {
            let n = g.slice_addrs(bank, row).count();
            assert_eq!(n as u64, per_bank, "bank {bank} row {row}");
            total += n;
        }
        assert_eq!(total as u64, ROW_SPAN / 64);
    });
}

/// Hammering never flips a bit in the aggressor rows themselves, and
/// every flip lands within two rows of an aggressor, in its bank.
#[test]
fn flips_are_local_to_victim_rows() {
    check::cases(0xd4a3, 24, |rng| {
        let seed = rng.gen_range(0u64..64);
        let victim_row = rng.gen_range(4u64..60);
        let mut dev = DramDevice::new(DimmProfile::test_profile(32 << 20), seed);
        dev.fill(Hpa::new(0), 32 << 20, 0xff);
        for bank in 0..4 {
            let pattern = HammerPattern::single_sided_for(dev.geometry(), bank, victim_row);
            let aggressor_rows: Vec<u64> = pattern
                .aggressors()
                .iter()
                .map(|&a| dev.geometry().row_of(a))
                .collect();
            let result = dev.hammer(&pattern, 500_000);
            for flip in &result.flips {
                assert!(!aggressor_rows.contains(&flip.row), "flip in aggressor row");
                assert!(
                    aggressor_rows.iter().any(|&r| flip.row.abs_diff(r) <= 2),
                    "flip {} rows away",
                    aggressor_rows
                        .iter()
                        .map(|&r| flip.row.abs_diff(r))
                        .min()
                        .unwrap()
                );
                assert_eq!(flip.bank, bank);
            }
        }
    });
}

/// The flip journal and the backing store agree: every journaled flip
/// is visible in memory at the recorded location with the recorded
/// direction (until something overwrites it).
#[test]
fn journal_matches_store() {
    check::cases(0xd4a4, 8, |rng| {
        let seed = rng.gen_range(0u64..32);
        let mut dev = DramDevice::new(DimmProfile::test_profile(16 << 20), seed);
        dev.fill(Hpa::new(0), 16 << 20, 0xff);
        for row in (3..40).step_by(7) {
            for bank in 0..8 {
                let p = HammerPattern::single_sided_for(dev.geometry(), bank, row);
                dev.hammer(&p, 450_000);
            }
        }
        // Journal entries whose cell was not hit twice must match memory.
        let mut seen = std::collections::HashSet::new();
        let journal: Vec<_> = dev.flip_journal().to_vec();
        for f in journal.iter().rev() {
            if !seen.insert((f.hpa, f.bit)) {
                continue; // earlier flip at same cell was overwritten
            }
            let byte = dev.store().read_u8(f.hpa);
            assert_eq!((byte >> f.bit) & 1, f.direction.target_bit());
        }
    });
}

/// Store `fill` is equivalent to writing every byte.
#[test]
fn fill_equals_bytewise_writes() {
    check::cases(0xd4a5, 64, |rng| {
        let start = rng.gen_range(0u64..0x2000);
        let len = rng.gen_range(1u64..0x1000);
        let value = rng.gen_range(0u64..256) as u8;
        let mut a = SparseStore::new(0x4000);
        let mut b = SparseStore::new(0x4000);
        let len = len.min(0x4000 - start);
        a.fill(Hpa::new(start), len, value);
        for i in 0..len {
            b.write_u8(Hpa::new(start + i), value);
        }
        for i in 0..0x4000u64 {
            assert_eq!(a.read_u8(Hpa::new(i)), b.read_u8(Hpa::new(i)));
        }
    });
}

/// u64 accessors agree with byte accessors at every alignment.
#[test]
fn u64_accessors_match_bytes() {
    check::cases(0xd4a6, check::DEFAULT_CASES, |rng| {
        let addr = rng.gen_range(0u64..0x3ff8);
        let value = rng.next_u64();
        let mut s = SparseStore::new(0x4000);
        s.write_u64(Hpa::new(addr), value);
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = s.read_u8(Hpa::new(addr + i as u64));
        }
        assert_eq!(u64::from_le_bytes(bytes), value);
        assert_eq!(s.read_u64(Hpa::new(addr)), value);
    });
}

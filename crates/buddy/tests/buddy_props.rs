//! Allocator-specific property tests (beyond the cross-crate suite):
//! PCP interactions, stealing discipline, and metric consistency.

use hh_buddy::{BuddyAllocator, MigrateType, PcpConfig};
use hh_sim::addr::Pfn;
use hh_sim::check;

const FRAMES: u64 = 16 << 20 >> 12; // 16 MiB zone

/// The noise-page metric always equals the pagetypeinfo-derived
/// small-order population plus the PCP occupancy.
#[test]
fn noise_metric_matches_pagetypeinfo() {
    check::cases(0xb001, 64, |rng| {
        let ops = check::vec_of(rng, 1, 200, |r| (r.gen_bool(0.5), r.gen_bool(0.5)));
        let mut buddy = BuddyAllocator::new(FRAMES);
        let mut held: Vec<Pfn> = Vec::new();
        for (alloc, unmovable) in ops {
            let mt = if unmovable {
                MigrateType::Unmovable
            } else {
                MigrateType::Movable
            };
            if alloc || held.is_empty() {
                if let Ok(p) = buddy.alloc_page(mt) {
                    held.push(p);
                }
            } else {
                buddy.free_page(held.pop().expect("non-empty"));
            }
            let info = buddy.pagetypeinfo();
            let expected = info.unmovable.pages_below_order(9) + info.pcp_pages[0];
            assert_eq!(
                buddy.small_order_free_pages(MigrateType::Unmovable),
                expected
            );
        }
        for p in held {
            buddy.free_page(p);
        }
        assert_eq!(buddy.free_pages(), FRAMES);
    });
}

/// Stealing happens only when the requested type cannot be served
/// from its own lists.
#[test]
fn steal_only_on_exhaustion() {
    check::cases(0xb002, 64, |rng| {
        let orders = check::vec_of(rng, 1, 60, |r| r.gen_range(0u8..4));
        let mut buddy = BuddyAllocator::with_pcp(FRAMES, PcpConfig::disabled());
        // First unmovable alloc must steal (movable-only boot state).
        let p0 = buddy.alloc(0, MigrateType::Unmovable).unwrap();
        let steals_after_first = buddy.stats().steals;
        assert_eq!(steals_after_first, 1);
        // Subsequent small unmovable allocs are served from the stolen
        // block's remainders without further stealing, until those run
        // out (they cannot here: the remainder holds >1000 pages).
        let mut held = vec![(p0, 0u8)];
        for order in orders {
            let p = buddy.alloc(order, MigrateType::Unmovable).unwrap();
            held.push((p, order));
        }
        assert_eq!(
            buddy.stats().steals,
            1,
            "no second steal while remainders last"
        );
        for (p, order) in held {
            buddy.free(p, order);
        }
    });
}

/// PCP high watermark bounds its occupancy.
#[test]
fn pcp_occupancy_bounded() {
    check::cases(0xb003, 32, |rng| {
        let frees = rng.gen_range(1usize..900);
        let config = PcpConfig {
            high: 128,
            batch: 16,
        };
        let mut buddy = BuddyAllocator::with_pcp(FRAMES, config);
        let mut held = Vec::new();
        for _ in 0..frees {
            held.push(buddy.alloc_page(MigrateType::Movable).unwrap());
        }
        for p in held {
            buddy.free_page(p);
            let info = buddy.pagetypeinfo();
            assert!(
                info.pcp_pages[1] <= 128 + 1,
                "pcp {} beyond watermark",
                info.pcp_pages[1]
            );
        }
        assert_eq!(buddy.free_pages(), FRAMES);
    });
}

/// Re-typing an allocated block changes only which list it joins on
/// free, never the total.
#[test]
fn set_migrate_type_conserves() {
    check::cases(0xb004, 32, |rng| {
        let order = rng.gen_range(0u8..10);
        let mut buddy = BuddyAllocator::new(FRAMES);
        let p = buddy.alloc(order, MigrateType::Movable).unwrap();
        buddy.set_migrate_type(p, order, MigrateType::Unmovable);
        buddy.free(p, order);
        assert_eq!(buddy.free_pages(), FRAMES);
        let info = buddy.pagetypeinfo();
        assert!(info.unmovable.total_pages() >= 1u64 << order);
    });
}

//! A behavioural model of the Linux buddy page allocator.
//!
//! HyperHammer's *Page Steering* (§4.2 of the paper) is entirely an
//! attack on allocator behaviour:
//!
//! * EPT and IOPT pages are **order-0 `MIGRATE_UNMOVABLE`** allocations;
//! * freed virtio-mem sub-blocks enter the free lists as **order-9
//!   blocks**;
//! * the allocator prefers the **smallest block** that satisfies a
//!   request, so the attacker must exhaust small-order blocks ("noise
//!   pages") before its released order-9 blocks are split for EPT pages;
//! * order-0 traffic flows through the **per-CPU pageset (PCP)** cache
//!   first, which is one of the noise sources the paper's spraying step
//!   must drown out (§4.2.3);
//! * when a migration type's lists are exhausted the kernel **steals**
//!   from the other type, largest block first.
//!
//! This crate implements those mechanics faithfully (single-zone,
//! single-node) so the paper's reuse ratios (Table 2) and noise-page
//! dynamics (Figure 3) *emerge* from allocator behaviour instead of being
//! scripted.
//!
//! # Example
//!
//! ```
//! use hh_buddy::{BuddyAllocator, MigrateType};
//!
//! // 64 MiB zone.
//! let mut buddy = BuddyAllocator::new(64 << 20 >> 12);
//! let ept_page = buddy.alloc(0, MigrateType::Unmovable)?;
//! let thp = buddy.alloc(9, MigrateType::Movable)?;
//! buddy.free(ept_page, 0);
//! buddy.free(thp, 9);
//! assert_eq!(buddy.free_pages(), 64 << 20 >> 12);
//! # Ok::<(), hh_buddy::AllocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod allocator;
mod free_list;
mod pcp;
mod report;

pub use allocator::{
    AllocError, AllocJitter, AllocStats, BuddyAllocator, BuddySnapshot, FreeError, MAX_ORDER,
};
pub use pcp::PcpConfig;
pub use report::{OrderCounts, PageTypeInfo};

/// Page migration types the paper's attack distinguishes (§2.4).
///
/// Linux has more (RECLAIMABLE, CMA, ISOLATE…); the attack only depends
/// on the UNMOVABLE/MOVABLE split: EPT/IOPT pages are unmovable, guest
/// RAM is movable until VFIO pins it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrateType {
    /// `MIGRATE_UNMOVABLE`: kernel allocations that cannot relocate
    /// (page tables, IOPTs, EPTs, pinned DMA buffers).
    Unmovable,
    /// `MIGRATE_MOVABLE`: regular anonymous/file memory.
    Movable,
}

impl MigrateType {
    /// Both migration types, in free-list index order.
    pub const ALL: [MigrateType; 2] = [MigrateType::Unmovable, MigrateType::Movable];

    /// Free-list index of the type.
    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            MigrateType::Unmovable => 0,
            MigrateType::Movable => 1,
        }
    }

    /// The fallback type the kernel steals from when this type's lists
    /// are exhausted.
    pub fn fallback(self) -> MigrateType {
        match self {
            MigrateType::Unmovable => MigrateType::Movable,
            MigrateType::Movable => MigrateType::Unmovable,
        }
    }
}

impl std::fmt::Display for MigrateType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateType::Unmovable => write!(f, "Unmovable"),
            MigrateType::Movable => write!(f, "Movable"),
        }
    }
}

//! The per-CPU pageset (PCP) cache model.
//!
//! Order-0 allocations and frees in Linux flow through a per-CPU cache of
//! free pages in front of the buddy lists. §4.2.3 of the paper names the
//! PCP as one of the noise sources the EPT-spraying step must drain
//! before released sub-blocks are reused, so the cache is modelled
//! explicitly (single CPU — the paper's attack pins one vCPU anyway).

use crate::free_list::FreeList;
use crate::MigrateType;

/// PCP sizing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcpConfig {
    /// High watermark: pages cached beyond this are drained to the buddy
    /// lists in `batch`-sized chunks.
    pub high: usize,
    /// Refill/drain chunk size.
    pub batch: usize,
}

impl PcpConfig {
    /// Typical values for a desktop zone.
    pub fn standard() -> Self {
        Self {
            high: 512,
            batch: 64,
        }
    }

    /// Disables the cache entirely (ablation `ablation_pcp`).
    pub fn disabled() -> Self {
        Self { high: 0, batch: 0 }
    }
}

impl Default for PcpConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// The cache itself: one LIFO list per migration type.
#[derive(Debug, Clone)]
pub(crate) struct PcpCache {
    config: PcpConfig,
    lists: [FreeList; 2],
}

impl PcpCache {
    pub fn new(config: PcpConfig) -> Self {
        Self {
            config,
            lists: Default::default(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.config.batch > 0
    }

    /// The sizing parameters the cache was built with (snapshot hook).
    pub fn config(&self) -> PcpConfig {
        self.config
    }

    /// Whether `base` is parked in the given lane (snapshot decoding
    /// rejects duplicate entries before pushing them).
    pub fn contains(&self, mt: MigrateType, base: u64) -> bool {
        self.lists[mt.index()].contains(base)
    }

    pub fn batch(&self) -> usize {
        self.config.batch
    }

    pub fn pop(&mut self, mt: MigrateType) -> Option<u64> {
        self.lists[mt.index()].pop()
    }

    pub fn push_free(&mut self, mt: MigrateType, base: u64) {
        self.lists[mt.index()].push(base);
    }

    /// Pages to return to the buddy lists once the high watermark is
    /// crossed.
    pub fn drain_overflow(&mut self, mt: MigrateType) -> Vec<u64> {
        let list = &mut self.lists[mt.index()];
        let mut out = Vec::new();
        if list.len() > self.config.high {
            for _ in 0..self.config.batch.min(list.len()) {
                if let Some(b) = list.pop() {
                    out.push(b);
                }
            }
        }
        out
    }

    /// The cached pages of one migratetype lane, head-to-tail — the
    /// order [`free_state_digest`](crate::BuddyAllocator::free_state_digest)
    /// folds them in.
    pub fn lane_iter(&self, mt: MigrateType) -> impl Iterator<Item = u64> + '_ {
        self.lists[mt.index()].iter()
    }

    pub fn pages(&self, mt: MigrateType) -> u64 {
        self.lists[mt.index()].len() as u64
    }

    pub fn total_pages(&self) -> u64 {
        self.lists.iter().map(|l| l.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_reports_disabled() {
        assert!(!PcpCache::new(PcpConfig::disabled()).enabled());
        assert!(PcpCache::new(PcpConfig::standard()).enabled());
    }

    #[test]
    fn overflow_drains_in_batches() {
        let mut pcp = PcpCache::new(PcpConfig { high: 4, batch: 2 });
        for i in 0..5 {
            pcp.push_free(MigrateType::Movable, i);
        }
        let drained = pcp.drain_overflow(MigrateType::Movable);
        assert_eq!(drained.len(), 2);
        assert_eq!(pcp.pages(MigrateType::Movable), 3);
        assert!(pcp.drain_overflow(MigrateType::Movable).is_empty());
    }

    #[test]
    fn types_are_separate() {
        let mut pcp = PcpCache::new(PcpConfig::standard());
        pcp.push_free(MigrateType::Unmovable, 1);
        assert_eq!(pcp.pop(MigrateType::Movable), None);
        assert_eq!(pcp.pop(MigrateType::Unmovable), Some(1));
    }
}

//! The buddy allocator core: split, coalesce, steal.

use std::collections::HashMap;
use std::fmt;

use hh_sim::addr::Pfn;
use hh_sim::snap::{Dec, Enc, SnapError};
use hh_trace::Tracer;

use crate::free_list::FreeList;
use crate::pcp::{PcpCache, PcpConfig};
use crate::report::{OrderCounts, PageTypeInfo};
use crate::MigrateType;

/// `MAX_ORDER` on x86-64: orders 0..=10 exist, the largest block is
/// 2^10 pages = 4 MiB (§2.3 of the paper).
pub const MAX_ORDER: u8 = 11;

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No block of sufficient order in any migration type.
    OutOfMemory {
        /// The order that could not be satisfied.
        order: u8,
    },
    /// Requested order ≥ [`MAX_ORDER`].
    OrderTooLarge {
        /// The requested order.
        order: u8,
    },
    /// A transient failure injected by [`AllocJitter`]. The allocator
    /// state is untouched; the caller may simply retry.
    Transient,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { order } => {
                write!(f, "out of memory allocating an order-{order} block")
            }
            AllocError::OrderTooLarge { order } => {
                write!(f, "order {order} exceeds MAX_ORDER ({MAX_ORDER})")
            }
            AllocError::Transient => write!(f, "transient allocation jitter"),
        }
    }
}

/// Deterministic allocation jitter: fails a configurable fraction of
/// [`BuddyAllocator::alloc_page`] calls with [`AllocError::Transient`]
/// before any allocator state changes.
///
/// The decision for call `n` is a pure function of `(seed, n)`, so a
/// jittered allocator remains bit-reproducible: the same seed and the
/// same call sequence always fail the same calls, independent of worker
/// count or wall-clock time.
#[derive(Debug, Clone)]
pub struct AllocJitter {
    seed: u64,
    rate: f64,
    calls: u64,
}

impl AllocJitter {
    /// Creates a jitter source failing ~`rate` of page allocations.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "jitter rate {rate} out of range"
        );
        Self {
            seed,
            rate,
            calls: 0,
        }
    }

    /// The number of jitter decisions drawn so far. Part of a machine
    /// snapshot: the decision for call `n` is pure in `(seed, n)`, so
    /// restoring the call counter resumes the fault stream exactly.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Restores the decision counter captured by [`AllocJitter::calls`].
    pub fn set_calls(&mut self, calls: u64) {
        self.calls = calls;
    }

    /// Draws the next decision: `true` means this call fails.
    fn trips(&mut self) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        self.calls += 1;
        let x = hh_sim::rng::SplitMix64::new(
            self.seed ^ self.calls.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
        .next();
        // 53 uniform mantissa bits, the same construction SimRng uses.
        ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.rate
    }
}

impl std::error::Error for AllocError {}

/// Free failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// The block was not allocated (double free or bad base/order).
    NotAllocated {
        /// Base frame of the rejected block.
        base: Pfn,
    },
    /// The block was allocated with a different order.
    WrongOrder {
        /// Base frame of the rejected block.
        base: Pfn,
        /// The order it was allocated with.
        allocated_order: u8,
    },
}

impl fmt::Display for FreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreeError::NotAllocated { base } => {
                write!(f, "freeing unallocated block at frame {base}")
            }
            FreeError::WrongOrder {
                base,
                allocated_order,
            } => {
                write!(
                    f,
                    "block at frame {base} was allocated at order {allocated_order}"
                )
            }
        }
    }
}

impl std::error::Error for FreeError {}

/// Lifetime counters, exposed for experiments and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Block splits performed while allocating.
    pub splits: u64,
    /// Buddy merges performed while freeing.
    pub merges: u64,
    /// Allocations served by stealing from the fallback migration type.
    pub steals: u64,
    /// Order-0 allocations served from the PCP cache without touching
    /// the buddy lists.
    pub pcp_hits: u64,
    /// PCP refills from the buddy lists.
    pub pcp_refills: u64,
}

/// A plain-data image of a [`BuddyAllocator`]'s state: frames, free
/// lists, block indices, the allocated map, the PCP cache and lifetime
/// stats — everything except the tracer handle and jitter source, which
/// are per-instantiation concerns.
///
/// Snapshots exist so campaign grids can pay for boot-time noise once
/// per scenario and stamp out per-cell allocators with
/// [`BuddyAllocator::from_snapshot`] instead of replaying the whole
/// allocation sequence for every cell. Unlike the allocator itself
/// (whose tracer holds an `Rc`), a snapshot is `Send + Sync`, so one
/// snapshot can seed allocators on many worker threads.
#[derive(Debug, Clone)]
pub struct BuddySnapshot {
    frames: u64,
    free: [[FreeList; MAX_ORDER as usize]; 2],
    free_index: HashMap<u64, (u8, MigrateType)>,
    allocated: HashMap<u64, (u8, MigrateType)>,
    pcp: PcpCache,
    stats: AllocStats,
}

impl BuddySnapshot {
    /// Total frames the snapshotted zone manages.
    pub fn total_frames(&self) -> u64 {
        self.frames
    }

    /// Serializes the snapshot into the machine-snapshot byte stream.
    ///
    /// Free lists are written in stack order (bottom→top) so the LIFO
    /// reuse order — the property hammer-plan physical layout depends
    /// on — survives the round trip. The two block indexes are hash
    /// maps; their entries are sorted by base PFN so identical states
    /// always produce identical bytes.
    pub fn encode_into(&self, enc: &mut Enc) {
        enc.u64(self.frames);
        for per_order in &self.free {
            for list in per_order {
                enc.u64(list.len() as u64);
                for pfn in list.iter() {
                    enc.u64(pfn);
                }
            }
        }
        for map in [&self.free_index, &self.allocated] {
            let mut entries: Vec<(u64, u8, MigrateType)> = map
                .iter()
                .map(|(&pfn, &(order, mt))| (pfn, order, mt))
                .collect();
            entries.sort_unstable_by_key(|e| e.0);
            enc.u64(entries.len() as u64);
            for (pfn, order, mt) in entries {
                enc.u64(pfn);
                enc.u8(order);
                enc.u8(mt.index() as u8);
            }
        }
        let pcp_config = self.pcp.config();
        enc.u64(pcp_config.high as u64);
        enc.u64(pcp_config.batch as u64);
        for mt in MigrateType::ALL {
            enc.u64(self.pcp.lane_iter(mt).count() as u64);
            for pfn in self.pcp.lane_iter(mt) {
                enc.u64(pfn);
            }
        }
        let s = self.stats;
        for v in [
            s.allocs,
            s.frees,
            s.splits,
            s.merges,
            s.steals,
            s.pcp_hits,
            s.pcp_refills,
        ] {
            enc.u64(v);
        }
    }

    /// Decodes a snapshot written by [`BuddySnapshot::encode_into`].
    ///
    /// # Errors
    ///
    /// Typed [`SnapError`]s for truncation and structural corruption
    /// (PFNs beyond the zone, duplicate free-list entries, unsorted
    /// index keys, unknown migrate-type tags). Never panics on corrupt
    /// input.
    pub fn decode(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let frames = dec.u64()?;
        if frames == 0 {
            return Err(SnapError::Corrupt("zero-frame buddy zone"));
        }
        let mut free: [[FreeList; MAX_ORDER as usize]; 2] = Default::default();
        for per_order in free.iter_mut() {
            for list in per_order.iter_mut() {
                let count = dec.count(8)?;
                for _ in 0..count {
                    let pfn = dec.u64()?;
                    if pfn >= frames {
                        return Err(SnapError::Corrupt("free-list pfn beyond zone"));
                    }
                    if list.contains(pfn) {
                        return Err(SnapError::Corrupt("duplicate pfn on free list"));
                    }
                    list.push(pfn);
                }
            }
        }
        let mut maps = [HashMap::new(), HashMap::new()];
        for map in maps.iter_mut() {
            let count = dec.count(10)?;
            let mut last: Option<u64> = None;
            for _ in 0..count {
                let pfn = dec.u64()?;
                let order = dec.u8()?;
                let mt = mt_from_tag(dec.u8()?)?;
                if order >= MAX_ORDER {
                    return Err(SnapError::Corrupt("block order beyond MAX_ORDER"));
                }
                if last.is_some_and(|prev| prev >= pfn) {
                    return Err(SnapError::Corrupt(
                        "block index keys not strictly increasing",
                    ));
                }
                last = Some(pfn);
                map.insert(pfn, (order, mt));
            }
        }
        let [free_index, allocated] = maps;
        let high = dec.u64()?;
        let batch = dec.u64()?;
        let mut pcp = PcpCache::new(PcpConfig {
            high: usize::try_from(high).map_err(|_| SnapError::Corrupt("pcp high overflow"))?,
            batch: usize::try_from(batch).map_err(|_| SnapError::Corrupt("pcp batch overflow"))?,
        });
        for mt in MigrateType::ALL {
            let count = dec.count(8)?;
            for _ in 0..count {
                let pfn = dec.u64()?;
                if pfn >= frames {
                    return Err(SnapError::Corrupt("pcp pfn beyond zone"));
                }
                if pcp.contains(mt, pfn) {
                    return Err(SnapError::Corrupt("duplicate pfn in pcp lane"));
                }
                pcp.push_free(mt, pfn);
            }
        }
        let mut scalars = [0u64; 7];
        for slot in scalars.iter_mut() {
            *slot = dec.u64()?;
        }
        let stats = AllocStats {
            allocs: scalars[0],
            frees: scalars[1],
            splits: scalars[2],
            merges: scalars[3],
            steals: scalars[4],
            pcp_hits: scalars[5],
            pcp_refills: scalars[6],
        };
        Ok(Self {
            frames,
            free,
            free_index,
            allocated,
            pcp,
            stats,
        })
    }
}

fn mt_from_tag(tag: u8) -> Result<MigrateType, SnapError> {
    match tag {
        0 => Ok(MigrateType::Unmovable),
        1 => Ok(MigrateType::Movable),
        _ => Err(SnapError::Corrupt("unknown migrate-type tag")),
    }
}

/// A single-zone buddy allocator with two migration types and a per-CPU
/// pageset cache.
///
/// See the [crate documentation](crate) for the modelled behaviours.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    frames: u64,
    /// `free[migratetype][order]`.
    free: [[FreeList; MAX_ORDER as usize]; 2],
    /// Base PFN → (order, migratetype) of every free block, for O(1)
    /// buddy lookup during coalescing.
    free_index: HashMap<u64, (u8, MigrateType)>,
    /// Base PFN → (order, migratetype) of every allocated block, for
    /// double-free detection and pinned-type accounting.
    allocated: HashMap<u64, (u8, MigrateType)>,
    pcp: PcpCache,
    stats: AllocStats,
    tracer: Tracer,
    jitter: Option<AllocJitter>,
}

impl BuddyAllocator {
    /// Creates an allocator managing `frames` page frames, all initially
    /// free and `Movable` (boot-time pageblocks default to movable).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(frames: u64) -> Self {
        Self::with_pcp(frames, PcpConfig::default())
    }

    /// Creates an allocator with an explicit PCP configuration (use
    /// [`PcpConfig::disabled`] for the ablation without the cache).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn with_pcp(frames: u64, pcp: PcpConfig) -> Self {
        assert!(frames > 0, "empty zone");
        let mut this = Self {
            frames,
            free: Default::default(),
            free_index: HashMap::new(),
            allocated: HashMap::new(),
            pcp: PcpCache::new(pcp),
            stats: AllocStats::default(),
            tracer: Tracer::off(),
            jitter: None,
        };
        // Seed the free lists with maximal aligned blocks.
        let mut base = 0u64;
        while base < frames {
            let mut order = MAX_ORDER - 1;
            loop {
                let size = 1u64 << order;
                if base.is_multiple_of(size) && base + size <= frames {
                    break;
                }
                order -= 1;
            }
            this.insert_free(base, order, MigrateType::Movable);
            base += 1u64 << order;
        }
        this
    }

    /// Captures the allocator's current state as a thread-shareable
    /// [`BuddySnapshot`]. The tracer and jitter source are not part of
    /// the snapshot.
    pub fn snapshot(&self) -> BuddySnapshot {
        BuddySnapshot {
            frames: self.frames,
            free: self.free.clone(),
            free_index: self.free_index.clone(),
            allocated: self.allocated.clone(),
            pcp: self.pcp.clone(),
            stats: self.stats,
        }
    }

    /// Rebuilds an allocator from a snapshot, bit-identical to the
    /// snapshotted one apart from instrumentation: the restored
    /// allocator starts with [`Tracer::off`] and no jitter — attach
    /// both afterwards if needed.
    pub fn from_snapshot(snap: &BuddySnapshot) -> Self {
        Self {
            frames: snap.frames,
            free: snap.free.clone(),
            free_index: snap.free_index.clone(),
            allocated: snap.allocated.clone(),
            pcp: snap.pcp.clone(),
            stats: snap.stats,
            tracer: Tracer::off(),
            jitter: None,
        }
    }

    /// Restores the allocator's page state — free lists (including
    /// their LIFO order), the free/allocated indexes and the per-CPU
    /// caches — to `snap`, keeping the live instrumentation (stats,
    /// tracer, jitter) untouched.
    ///
    /// This is the abort-rollback primitive: an abandoned attack
    /// attempt frees every page it took, so the *count* comes back on
    /// its own, but interleaved split/coalesce traffic leaves the free
    /// lists in a different LIFO order — and buddy allocation order is
    /// exactly what hammer-plan physical layout depends on. Restoring
    /// the snapshot makes a later attempt's allocations independent of
    /// the aborted attempt's fault stream.
    ///
    /// # Panics
    ///
    /// If `snap` came from a zone of a different size.
    pub fn restore_free_state(&mut self, snap: &BuddySnapshot) {
        assert_eq!(
            self.frames, snap.frames,
            "free-state snapshot is from a different zone"
        );
        self.free = snap.free.clone();
        self.free_index = snap.free_index.clone();
        self.allocated = snap.allocated.clone();
        self.pcp = snap.pcp.clone();
    }

    /// An order-sensitive digest of the free state: every free list's
    /// PFN sequence (per migratetype and order) and every per-CPU cache
    /// list, folded in iteration order. Two allocators with the same
    /// free pages in a different LIFO order digest differently — the
    /// property [`restore_free_state`](Self::restore_free_state) exists
    /// to protect.
    pub fn free_state_digest(&self) -> u64 {
        // FNV-1a over (tag, pfn) words; tags separate list boundaries
        // so moving a page between lists always changes the digest.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (mt, per_order) in self.free.iter().enumerate() {
            for (order, list) in per_order.iter().enumerate() {
                fold(0x1000_0000 | (mt as u64) << 8 | order as u64);
                for pfn in list.iter() {
                    fold(pfn);
                }
            }
        }
        for mt in MigrateType::ALL {
            fold(0x2000_0000 | mt.index() as u64);
            for pfn in self.pcp.lane_iter(mt) {
                fold(pfn);
            }
        }
        h
    }

    /// Attaches an instrumentation handle; allocations, frees, splits,
    /// merges and exhaustions are reported to it from now on. Clones of
    /// a traced allocator share the same sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs (or clears) deterministic allocation jitter on the
    /// [`alloc_page`](Self::alloc_page) path — the page-table/EPT/IOPT
    /// allocations the paper's steering stages lean on. Bulk block
    /// allocations (`alloc`) are never jittered, so VM provisioning
    /// stays reliable.
    pub fn set_alloc_jitter(&mut self, jitter: Option<AllocJitter>) {
        self.jitter = jitter;
    }

    /// The installed jitter source, if any. Its draw counter is part of
    /// a machine snapshot (decisions are pure in `(seed, call index)`).
    pub fn alloc_jitter(&self) -> Option<&AllocJitter> {
        self.jitter.as_ref()
    }

    /// Mutable access to the installed jitter source (snapshot restore
    /// puts the draw counter back).
    pub fn alloc_jitter_mut(&mut self) -> Option<&mut AllocJitter> {
        self.jitter.as_mut()
    }

    /// A clone for machine forking: all page state, stats and the
    /// jitter stream position carry over; the fork gets a detached
    /// tracer so its churn reports nowhere until one is attached.
    pub fn fork(&self) -> Self {
        Self {
            frames: self.frames,
            free: self.free.clone(),
            free_index: self.free_index.clone(),
            allocated: self.allocated.clone(),
            pcp: self.pcp.clone(),
            stats: self.stats,
            tracer: Tracer::off(),
            jitter: self.jitter.clone(),
        }
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.frames
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Total free pages, including pages parked in the PCP cache.
    pub fn free_pages(&self) -> u64 {
        let buddy: u64 = self
            .free_index
            .iter()
            .map(|(_, &(order, _))| 1u64 << order)
            .sum();
        buddy + self.pcp.total_pages()
    }

    /// Allocates a block of `2^order` contiguous, aligned frames of the
    /// given migration type.
    ///
    /// Follows the kernel's path: smallest sufficient block of the
    /// requested type first (splitting as needed), then stealing from the
    /// fallback type, largest block first.
    ///
    /// # Errors
    ///
    /// [`AllocError::OrderTooLarge`] for orders ≥ [`MAX_ORDER`];
    /// [`AllocError::OutOfMemory`] when both types are exhausted.
    pub fn alloc(&mut self, order: u8, mt: MigrateType) -> Result<Pfn, AllocError> {
        if order >= MAX_ORDER {
            return Err(AllocError::OrderTooLarge { order });
        }
        let base = self.rmqueue(order, mt)?;
        self.allocated.insert(base, (order, mt));
        self.stats.allocs += 1;
        self.tracer.buddy_alloc(order);
        Ok(Pfn::new(base))
    }

    /// Allocates one order-0 page through the PCP cache, the path kernel
    /// page-table (and so EPT/IOPT) allocations take.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the cache cannot be refilled.
    pub fn alloc_page(&mut self, mt: MigrateType) -> Result<Pfn, AllocError> {
        if let Some(jitter) = &mut self.jitter {
            if jitter.trips() {
                self.tracer
                    .fault_injected("buddy_alloc", "allocation jitter");
                return Err(AllocError::Transient);
            }
        }
        if let Some(base) = self.pcp.pop(mt) {
            self.stats.pcp_hits += 1;
            self.allocated.insert(base, (0, mt));
            self.stats.allocs += 1;
            self.tracer.buddy_alloc(0);
            return Ok(Pfn::new(base));
        }
        // Refill a batch, then retry once.
        let batch = self.pcp.batch();
        if batch > 0 {
            let mut refilled = 0;
            for _ in 0..batch {
                match self.rmqueue(0, mt) {
                    Ok(base) => {
                        self.pcp.push_free(mt, base);
                        refilled += 1;
                    }
                    Err(_) => break,
                }
            }
            if refilled > 0 {
                self.stats.pcp_refills += 1;
            }
            if let Some(base) = self.pcp.pop(mt) {
                self.stats.pcp_hits += 1;
                self.allocated.insert(base, (0, mt));
                self.stats.allocs += 1;
                self.tracer.buddy_alloc(0);
                return Ok(Pfn::new(base));
            }
        }
        // PCP disabled or empty zone: direct path.
        self.alloc(0, mt)
    }

    /// Frees a block previously returned by [`Self::alloc`] (or
    /// [`Self::alloc_page`] when freeing at order 0 without the cache).
    ///
    /// # Panics
    ///
    /// Panics on double free or order mismatch — allocator-contract
    /// violations are simulation bugs, not recoverable conditions. Use
    /// [`Self::try_free`] for a checked variant.
    pub fn free(&mut self, base: Pfn, order: u8) {
        if let Err(e) = self.try_free(base, order) {
            panic!("{e}");
        }
    }

    /// Checked variant of [`Self::free`].
    ///
    /// # Errors
    ///
    /// [`FreeError::NotAllocated`] or [`FreeError::WrongOrder`] on
    /// contract violations.
    pub fn try_free(&mut self, base: Pfn, order: u8) -> Result<(), FreeError> {
        let Some(&(allocated_order, mt)) = self.allocated.get(&base.index()) else {
            return Err(FreeError::NotAllocated { base });
        };
        if allocated_order != order {
            return Err(FreeError::WrongOrder {
                base,
                allocated_order,
            });
        }
        self.allocated.remove(&base.index());
        self.stats.frees += 1;
        self.tracer.buddy_free(order);
        self.coalesce_and_insert(base.index(), order, mt);
        Ok(())
    }

    /// Frees one order-0 page through the PCP cache.
    ///
    /// # Panics
    ///
    /// Panics on double free or if the page was not allocated at order 0.
    pub fn free_page(&mut self, base: Pfn) {
        let Some(&(allocated_order, mt)) = self.allocated.get(&base.index()) else {
            panic!("freeing unallocated page at frame {base}");
        };
        assert_eq!(
            allocated_order, 0,
            "free_page on an order-{allocated_order} block"
        );
        self.allocated.remove(&base.index());
        self.stats.frees += 1;
        self.tracer.buddy_free(0);
        if self.pcp.enabled() {
            self.pcp.push_free(mt, base.index());
            // Drain overflow back into the buddy lists.
            let overflow = self.pcp.drain_overflow(mt);
            for page in overflow {
                self.coalesce_and_insert(page, 0, mt);
            }
        } else {
            self.coalesce_and_insert(base.index(), 0, mt);
        }
    }

    /// Re-types an *allocated* block, modelling VFIO pinning guest memory
    /// as `MIGRATE_UNMOVABLE` (§2.6). Affects which list the block joins
    /// when freed.
    ///
    /// # Panics
    ///
    /// Panics if the block is not allocated at `order`.
    pub fn set_migrate_type(&mut self, base: Pfn, order: u8, mt: MigrateType) {
        let entry = self
            .allocated
            .get_mut(&base.index())
            .unwrap_or_else(|| panic!("set_migrate_type on unallocated frame {base}"));
        assert_eq!(entry.0, order, "order mismatch in set_migrate_type");
        entry.1 = mt;
    }

    /// Splits an *allocated* block into `2^order` individually allocated
    /// order-0 pages, modelling a THP split: the memory stays owned, but
    /// each 4 KiB page can now be freed independently (the virtio-balloon
    /// path, §6).
    ///
    /// # Panics
    ///
    /// Panics if the block is not allocated at `order`.
    pub fn split_allocated(&mut self, base: Pfn, order: u8) {
        let Some(&(allocated_order, mt)) = self.allocated.get(&base.index()) else {
            panic!("split_allocated on unallocated frame {base}");
        };
        assert_eq!(allocated_order, order, "order mismatch in split_allocated");
        self.allocated.remove(&base.index());
        for i in 0..1u64 << order {
            self.allocated.insert(base.index() + i, (0, mt));
        }
    }

    /// A `/proc/pagetypeinfo`-style snapshot of the free lists.
    ///
    /// The PCP cache is reported separately, mirroring how the real file
    /// shows buddy lists only.
    pub fn pagetypeinfo(&self) -> PageTypeInfo {
        let mut info = PageTypeInfo::default();
        for mt in MigrateType::ALL {
            let counts = OrderCounts {
                counts: std::array::from_fn(|order| self.free[mt.index()][order].len() as u64),
            };
            match mt {
                MigrateType::Unmovable => info.unmovable = counts,
                MigrateType::Movable => info.movable = counts,
            }
        }
        info.pcp_pages[0] = self.pcp.pages(MigrateType::Unmovable);
        info.pcp_pages[1] = self.pcp.pages(MigrateType::Movable);
        info
    }

    /// The paper's "noise pages" metric: free pages sitting in
    /// small-order (order < 9) blocks of the given migration type,
    /// including PCP-cached pages. These are the pages an EPT allocation
    /// would consume *before* touching a released order-9 sub-block.
    pub fn small_order_free_pages(&self, mt: MigrateType) -> u64 {
        let buddy: u64 = (0..9)
            .map(|order| (self.free[mt.index()][order].len() as u64) << order)
            .sum();
        buddy + self.pcp.pages(mt)
    }

    /// Returns `true` if a free block of exactly (base, order) exists.
    pub fn is_free_block(&self, base: Pfn, order: u8) -> bool {
        self.free_index
            .get(&base.index())
            .is_some_and(|&(o, _)| o == order)
    }

    /// Internal: smallest-first allocation with fallback stealing.
    fn rmqueue(&mut self, order: u8, mt: MigrateType) -> Result<u64, AllocError> {
        // 1. Own lists, smallest sufficient order first.
        for o in order..MAX_ORDER {
            if let Some(base) = self.take_from_list(mt, o) {
                self.expand(base, o, order, mt);
                return Ok(base);
            }
        }
        // 2. Steal from the fallback type, LARGEST block first (the
        //    kernel steals big to reduce future fallbacks).
        let fb = mt.fallback();
        for o in (order..MAX_ORDER).rev() {
            if let Some(base) = self.take_from_list(fb, o) {
                self.stats.steals += 1;
                // Stolen remainder joins the requesting type's lists.
                self.expand(base, o, order, mt);
                return Ok(base);
            }
        }
        self.tracer.buddy_exhausted(order);
        Err(AllocError::OutOfMemory { order })
    }

    /// Pops a block from a specific (mt, order) list, maintaining the
    /// index.
    fn take_from_list(&mut self, mt: MigrateType, order: u8) -> Option<u64> {
        let base = self.free[mt.index()][order as usize].pop()?;
        self.free_index.remove(&base);
        Some(base)
    }

    /// Splits `base` (a block of `from_order`) down to `to_order`,
    /// returning the upper halves to `mt`'s free lists.
    fn expand(&mut self, base: u64, from_order: u8, to_order: u8, mt: MigrateType) {
        let mut order = from_order;
        while order > to_order {
            order -= 1;
            self.stats.splits += 1;
            self.tracer.buddy_split(order + 1);
            let upper = base + (1u64 << order);
            self.insert_free(upper, order, mt);
        }
    }

    /// Frees with maximal buddy coalescing.
    fn coalesce_and_insert(&mut self, mut base: u64, mut order: u8, mt: MigrateType) {
        while order < MAX_ORDER - 1 {
            let buddy = base ^ (1u64 << order);
            let Some(&(buddy_order, buddy_mt)) = self.free_index.get(&buddy) else {
                break;
            };
            // The kernel merges across migration types (the merged block
            // takes the type of the page being freed); requiring equal
            // order is the buddy invariant.
            if buddy_order != order {
                break;
            }
            self.free_index.remove(&buddy);
            self.free[buddy_mt.index()][order as usize].remove(buddy);
            self.stats.merges += 1;
            self.tracer.buddy_merge(order + 1);
            base &= !(1u64 << order);
            order += 1;
        }
        self.insert_free(base, order, mt);
    }

    fn insert_free(&mut self, base: u64, order: u8, mt: MigrateType) {
        self.free[mt.index()][order as usize].push(base);
        self.free_index.insert(base, (order, mt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(mib: u64) -> u64 {
        mib << 20 >> 12
    }

    #[test]
    fn fresh_zone_is_all_free_and_movable() {
        let b = BuddyAllocator::new(frames(64));
        assert_eq!(b.free_pages(), frames(64));
        let info = b.pagetypeinfo();
        assert_eq!(info.unmovable.total_pages(), 0);
        assert_eq!(info.movable.total_pages(), frames(64));
        // 64 MiB / 4 MiB max blocks = 16 order-10 blocks.
        assert_eq!(info.movable.counts[10], 16);
    }

    #[test]
    fn alloc_free_roundtrip_restores_state() {
        let mut b = BuddyAllocator::new(frames(16));
        let before = b.pagetypeinfo();
        let p = b.alloc(3, MigrateType::Movable).unwrap();
        assert_eq!(b.free_pages(), frames(16) - 8);
        b.free(p, 3);
        assert_eq!(b.pagetypeinfo(), before, "coalescing must fully restore");
    }

    #[test]
    fn blocks_are_aligned() {
        let mut b = BuddyAllocator::new(frames(16));
        for order in 0..MAX_ORDER {
            let p = b.alloc(order, MigrateType::Movable).unwrap();
            assert_eq!(p.index() % (1 << order), 0, "order {order} misaligned");
        }
    }

    #[test]
    fn smallest_sufficient_block_is_preferred() {
        let mut b = BuddyAllocator::new(frames(16));
        // Create a free order-0 block of the right type by alloc+free.
        let small = b.alloc(0, MigrateType::Unmovable).unwrap();
        b.free(small, 0);
        // The next order-0 unmovable alloc must reuse it rather than
        // splitting another large movable block.
        let again = b.alloc(0, MigrateType::Unmovable).unwrap();
        assert_eq!(again, small);
    }

    #[test]
    fn lifo_reuse_of_released_blocks() {
        let mut b = BuddyAllocator::new(frames(64));
        // Allocate two buddy pairs; free one block of each pair so the
        // freed blocks cannot coalesce with each other.
        let a = b.alloc(9, MigrateType::Unmovable).unwrap();
        let _a_buddy = b.alloc(9, MigrateType::Unmovable).unwrap();
        let c = b.alloc(9, MigrateType::Unmovable).unwrap();
        let _c_buddy = b.alloc(9, MigrateType::Unmovable).unwrap();
        b.free(a, 9);
        b.free(c, 9);
        // c was freed last → reused first.
        assert_eq!(b.alloc(9, MigrateType::Unmovable).unwrap(), c);
        assert_eq!(b.alloc(9, MigrateType::Unmovable).unwrap(), a);
    }

    #[test]
    fn unmovable_steals_from_movable_when_empty() {
        let mut b = BuddyAllocator::new(frames(16));
        assert_eq!(b.stats().steals, 0);
        let _p = b.alloc(0, MigrateType::Unmovable).unwrap();
        assert_eq!(b.stats().steals, 1);
        // Remainder of the stolen max-order block is now unmovable.
        assert!(b.pagetypeinfo().unmovable.total_pages() > 0);
        // Subsequent unmovable allocs need no further stealing.
        let _q = b.alloc(0, MigrateType::Unmovable).unwrap();
        assert_eq!(b.stats().steals, 1);
    }

    #[test]
    fn steal_takes_largest_block() {
        let mut b = BuddyAllocator::new(frames(64));
        let before = b.pagetypeinfo().movable.counts[10];
        let _p = b.alloc(0, MigrateType::Unmovable).unwrap();
        let after = b.pagetypeinfo().movable.counts[10];
        assert_eq!(after, before - 1, "steal should come from order-10");
    }

    #[test]
    fn oom_is_reported() {
        let mut b = BuddyAllocator::new(frames(1)); // 256 frames
        let mut held = Vec::new();
        loop {
            match b.alloc(0, MigrateType::Movable) {
                Ok(p) => held.push(p),
                Err(AllocError::OutOfMemory { order: 0 }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(held.len(), 256);
    }

    #[test]
    fn order_too_large() {
        let mut b = BuddyAllocator::new(frames(16));
        assert_eq!(
            b.alloc(MAX_ORDER, MigrateType::Movable),
            Err(AllocError::OrderTooLarge { order: MAX_ORDER })
        );
    }

    #[test]
    fn double_free_detected() {
        let mut b = BuddyAllocator::new(frames(16));
        let p = b.alloc(0, MigrateType::Movable).unwrap();
        b.free(p, 0);
        assert!(matches!(
            b.try_free(p, 0),
            Err(FreeError::NotAllocated { .. })
        ));
    }

    #[test]
    fn wrong_order_free_detected() {
        let mut b = BuddyAllocator::new(frames(16));
        let p = b.alloc(2, MigrateType::Movable).unwrap();
        assert!(matches!(
            b.try_free(p, 3),
            Err(FreeError::WrongOrder {
                allocated_order: 2,
                ..
            })
        ));
        b.free(p, 2);
    }

    #[test]
    fn pcp_caches_order0_traffic() {
        let mut b = BuddyAllocator::new(frames(16));
        let p = b.alloc_page(MigrateType::Unmovable).unwrap();
        b.free_page(p);
        let q = b.alloc_page(MigrateType::Unmovable).unwrap();
        // LIFO through the PCP: same page back.
        assert_eq!(q, p);
        assert!(b.stats().pcp_hits >= 2);
    }

    #[test]
    fn pcp_pages_count_as_free_and_as_noise() {
        let mut b = BuddyAllocator::new(frames(16));
        let p = b.alloc_page(MigrateType::Unmovable).unwrap();
        b.free_page(p);
        assert_eq!(b.free_pages(), frames(16));
        assert!(b.small_order_free_pages(MigrateType::Unmovable) > 0);
    }

    #[test]
    fn disabled_pcp_goes_straight_to_buddy() {
        let mut b = BuddyAllocator::with_pcp(frames(16), PcpConfig::disabled());
        let p = b.alloc_page(MigrateType::Movable).unwrap();
        b.free_page(p);
        assert_eq!(b.stats().pcp_hits, 0);
        assert_eq!(b.free_pages(), frames(16));
    }

    #[test]
    fn set_migrate_type_redirects_free() {
        let mut b = BuddyAllocator::new(frames(64));
        let p = b.alloc(9, MigrateType::Movable).unwrap();
        b.set_migrate_type(p, 9, MigrateType::Unmovable);
        b.free(p, 9);
        // The order-9 block now sits on the unmovable list — exactly the
        // state Page Steering engineers for released sub-blocks.
        let info = b.pagetypeinfo();
        assert!(info.unmovable.counts[9] >= 1 || info.unmovable.counts[10] >= 1);
    }

    #[test]
    fn small_order_metric_ignores_order9_plus() {
        let mut b = BuddyAllocator::new(frames(64));
        let p = b.alloc(9, MigrateType::Movable).unwrap();
        b.set_migrate_type(p, 9, MigrateType::Unmovable);
        b.free(p, 9);
        // Freshly freed order-9 block: no *small-order* unmovable pages
        // (merging may promote it to order 10; either way ≥ 9).
        assert_eq!(b.small_order_free_pages(MigrateType::Unmovable), 0);
    }

    #[test]
    fn allocator_reports_to_an_attached_tracer() {
        use hh_trace::{Counter, TraceMode, Tracer};
        let mut b = BuddyAllocator::new(frames(16));
        let tracer = Tracer::new(TraceMode::Metrics);
        b.set_tracer(tracer.clone());
        // Order-0 alloc from a fresh order-10 block: ten splits.
        let p = b.alloc(0, MigrateType::Movable).unwrap();
        b.free(p, 0);
        tracer.inspect(|sink| {
            let m = sink.metrics();
            assert_eq!(m.get(Counter::BuddyAllocs), 1);
            assert_eq!(m.get(Counter::BuddyFrees), 1);
            assert_eq!(m.get(Counter::BuddySplits), 10);
            assert_eq!(m.get(Counter::BuddyMerges), 10);
            assert_eq!(m.get(Counter::BuddyExhaustions), 0);
        });
        // Exhaustion is reported when no list can satisfy the order.
        for _ in 0..4 {
            b.alloc(10, MigrateType::Movable).unwrap();
        }
        assert!(b.alloc(10, MigrateType::Movable).is_err());
        tracer.inspect(|sink| {
            assert_eq!(sink.metrics().get(Counter::BuddyExhaustions), 1);
        });
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical_and_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuddySnapshot>();

        let mut b = BuddyAllocator::new(frames(16));
        // Dirty the state: allocations across orders and types, a PCP
        // round-trip, and a held page so `allocated` is non-empty.
        let held = b.alloc(3, MigrateType::Unmovable).unwrap();
        let p = b.alloc_page(MigrateType::Movable).unwrap();
        b.free_page(p);

        let snap = b.snapshot();
        let mut restored = BuddyAllocator::from_snapshot(&snap);
        assert_eq!(restored.pagetypeinfo(), b.pagetypeinfo());
        assert_eq!(restored.free_pages(), b.free_pages());
        assert_eq!(restored.stats(), b.stats());
        // Same state ⇒ same future decisions: the next allocations on
        // both allocators return the same frames.
        for order in [0u8, 2, 9] {
            assert_eq!(
                restored.alloc(order, MigrateType::Movable),
                b.alloc(order, MigrateType::Movable),
                "order-{order} alloc diverged after snapshot restore"
            );
        }
        assert_eq!(
            restored.alloc_page(MigrateType::Unmovable),
            b.alloc_page(MigrateType::Unmovable)
        );
        b.free(held, 3);
    }

    #[test]
    fn restore_free_state_recovers_lifo_order_not_just_counts() {
        let mut b = BuddyAllocator::new(frames(8));
        // Stir the lists so they are not in freshly-carved order.
        let held: Vec<_> = (0..6)
            .map(|_| b.alloc(2, MigrateType::Movable).unwrap())
            .collect();
        for p in held.iter().rev() {
            b.free(*p, 2);
        }
        let snap = b.snapshot();
        let digest = b.free_state_digest();

        // An alloc/free round trip restores the page *count* but not
        // the LIFO order (remove() swap-removes; coalescing re-pushes)
        // — the situation an aborted attempt leaves behind.
        let a1 = b.alloc(0, MigrateType::Movable).unwrap();
        let a2 = b.alloc(4, MigrateType::Unmovable).unwrap();
        b.free(a1, 0);
        b.free(a2, 4);
        assert_eq!(b.free_pages(), snap.total_frames());
        assert_ne!(
            b.free_state_digest(),
            digest,
            "the digest must be order-sensitive or this test is vacuous"
        );

        b.restore_free_state(&snap);
        assert_eq!(b.free_state_digest(), digest);
        // Same state ⇒ same future decisions.
        let mut reference = BuddyAllocator::from_snapshot(&snap);
        for order in [0u8, 2, 4] {
            assert_eq!(
                b.alloc(order, MigrateType::Movable),
                reference.alloc(order, MigrateType::Movable),
                "order-{order} alloc diverged after free-state restore"
            );
        }
    }

    #[test]
    fn snapshot_binary_encoding_is_canonical_and_round_trips() {
        let mut b = BuddyAllocator::new(frames(16));
        // Dirty every serialized component: held blocks, PCP lanes,
        // split/steal traffic.
        let _held = b.alloc(3, MigrateType::Unmovable).unwrap();
        let p = b.alloc_page(MigrateType::Movable).unwrap();
        b.free_page(p);
        let snap = b.snapshot();

        let mut enc = Enc::new();
        snap.encode_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let decoded = BuddySnapshot::decode(&mut dec).unwrap();
        dec.finish().unwrap();

        let restored = BuddyAllocator::from_snapshot(&decoded);
        assert_eq!(restored.free_state_digest(), b.free_state_digest());
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(restored.free_pages(), b.free_pages());

        // Canonical: decoding and re-encoding reproduces the bytes.
        let mut enc2 = Enc::new();
        decoded.encode_into(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
    }

    #[test]
    fn corrupt_snapshot_bytes_are_typed_errors_not_panics() {
        let b = BuddyAllocator::new(frames(8));
        let mut enc = Enc::new();
        b.snapshot().encode_into(&mut enc);
        let bytes = enc.into_bytes();

        // Every truncation point decodes to an error, never a panic.
        for len in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..len]);
            assert!(
                BuddySnapshot::decode(&mut dec).is_err(),
                "truncation at {len} must fail"
            );
        }

        // An out-of-zone PFN in the first non-empty free list.
        let mut evil = bytes.clone();
        // frames(8) zone: first populated list entry follows some empty
        // list counts; find the first nonzero count and poison its pfn.
        let mut off = 8; // skip frames
        loop {
            let count = u64::from_le_bytes(evil[off..off + 8].try_into().unwrap());
            off += 8;
            if count > 0 {
                evil[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                break;
            }
        }
        let mut dec = Dec::new(&evil);
        assert_eq!(
            BuddySnapshot::decode(&mut dec).err(),
            Some(SnapError::Corrupt("free-list pfn beyond zone"))
        );
    }

    #[test]
    fn exhaustive_alloc_free_is_balanced() {
        let mut b = BuddyAllocator::new(frames(8));
        let mut held = Vec::new();
        for order in [0u8, 1, 2, 3, 0, 5, 0, 7, 2] {
            held.push((b.alloc(order, MigrateType::Unmovable).unwrap(), order));
        }
        for (p, order) in held.drain(..) {
            b.free(p, order);
        }
        assert_eq!(b.free_pages(), frames(8));
        // Everything coalesced back to maximal blocks (possibly under
        // either migration type after stealing).
        let info = b.pagetypeinfo();
        let max_blocks = info.unmovable.counts[10] + info.movable.counts[10];
        assert_eq!(max_blocks, frames(8) >> 10);
    }
}

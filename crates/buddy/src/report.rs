//! `/proc/pagetypeinfo`-style introspection types.
//!
//! The paper's Figure 3 is produced by sampling the hypervisor's
//! `/proc/pagetypeinfo` while the attacker exhausts noise pages; these
//! types are the model's equivalent of that file.

use std::fmt;

use crate::allocator::MAX_ORDER;

/// Free-block counts per order for one migration type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrderCounts {
    /// `counts[order]` = number of free blocks of that order.
    pub counts: [u64; MAX_ORDER as usize],
}

impl OrderCounts {
    /// Total free pages across all orders.
    pub fn total_pages(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(order, &n)| n << order)
            .sum()
    }

    /// Free pages in blocks below `order` — the "would be consumed before
    /// an order-`order` block is split" population.
    pub fn pages_below_order(&self, order: u8) -> u64 {
        self.counts[..order as usize]
            .iter()
            .enumerate()
            .map(|(o, &n)| n << o)
            .sum()
    }
}

/// A snapshot of the allocator's free lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageTypeInfo {
    /// `MIGRATE_UNMOVABLE` free blocks.
    pub unmovable: OrderCounts,
    /// `MIGRATE_MOVABLE` free blocks.
    pub movable: OrderCounts,
    /// PCP-cached pages, `[unmovable, movable]`.
    pub pcp_pages: [u64; 2],
}

impl fmt::Display for PageTypeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<12} {:>6}", "type\\order", "counts")?;
        write!(f, "{:<12}", "Unmovable")?;
        for c in self.unmovable.counts {
            write!(f, " {c:>6}")?;
        }
        writeln!(f)?;
        write!(f, "{:<12}", "Movable")?;
        for c in self.movable.counts {
            write!(f, " {c:>6}")?;
        }
        writeln!(f)?;
        write!(
            f,
            "pcp: unmovable={} movable={}",
            self.pcp_pages[0], self.pcp_pages[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let mut c = OrderCounts::default();
        c.counts[0] = 3;
        c.counts[2] = 1;
        c.counts[9] = 2;
        assert_eq!(c.total_pages(), 3 + 4 + 1024);
        assert_eq!(c.pages_below_order(9), 7);
        assert_eq!(c.pages_below_order(1), 3);
    }

    #[test]
    fn display_is_nonempty() {
        let info = PageTypeInfo::default();
        assert!(format!("{info}").contains("Unmovable"));
    }
}

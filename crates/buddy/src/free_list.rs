//! An indexed LIFO free list.
//!
//! The kernel's `free_area` lists are intrusive doubly-linked lists with
//! head insertion and head removal, giving LIFO reuse (recently freed
//! blocks are allocated first) plus O(1) removal of an arbitrary block
//! when its buddy coalesces. This structure reproduces both properties
//! with a Vec-as-stack plus a position index.
//!
//! LIFO reuse is load-bearing for the reproduction: Page Steering counts
//! on the hypervisor re-using the sub-blocks the VM *just* released.

use std::collections::HashMap;

/// LIFO free list of block base PFNs with O(1) push/pop/remove.
#[derive(Debug, Clone, Default)]
pub(crate) struct FreeList {
    stack: Vec<u64>,
    index: HashMap<u64, usize>,
}

impl FreeList {
    /// Pushes a block to the head (most-recently-freed position).
    ///
    /// # Panics
    ///
    /// Panics if the block is already present (double free).
    pub fn push(&mut self, base: u64) {
        let prev = self.index.insert(base, self.stack.len());
        assert!(prev.is_none(), "block {base:#x} already on free list");
        self.stack.push(base);
    }

    /// Pops the most recently freed block.
    pub fn pop(&mut self) -> Option<u64> {
        let base = self.stack.pop()?;
        self.index.remove(&base);
        Some(base)
    }

    /// Removes a specific block (buddy coalescing path).
    ///
    /// Returns `true` if the block was present.
    pub fn remove(&mut self, base: u64) -> bool {
        let Some(pos) = self.index.remove(&base) else {
            return false;
        };
        let last = self.stack.pop().expect("index says list is non-empty");
        if last != base {
            self.stack[pos] = last;
            self.index.insert(last, pos);
        }
        true
    }

    /// Returns `true` if the block is on the list.
    #[allow(dead_code)] // used by tests and debugging assertions
    pub fn contains(&self, base: u64) -> bool {
        self.index.contains_key(&base)
    }

    /// Number of blocks on the list.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Returns `true` if the list is empty.
    #[allow(dead_code)] // symmetry with len(); used by future callers
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Iterates over the blocks (unspecified order).
    #[allow(dead_code)] // introspection helper for experiments
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.stack.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut fl = FreeList::default();
        fl.push(1);
        fl.push(2);
        fl.push(3);
        assert_eq!(fl.pop(), Some(3));
        assert_eq!(fl.pop(), Some(2));
        assert_eq!(fl.pop(), Some(1));
        assert_eq!(fl.pop(), None);
    }

    #[test]
    fn remove_middle_keeps_index_consistent() {
        let mut fl = FreeList::default();
        for i in 0..10 {
            fl.push(i);
        }
        assert!(fl.remove(4));
        assert!(!fl.remove(4));
        assert!(!fl.contains(4));
        assert_eq!(fl.len(), 9);
        // All remaining blocks still poppable exactly once.
        let mut seen = Vec::new();
        while let Some(b) = fl.pop() {
            seen.push(b);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn remove_head() {
        let mut fl = FreeList::default();
        fl.push(10);
        fl.push(20);
        assert!(fl.remove(20));
        assert_eq!(fl.pop(), Some(10));
    }

    #[test]
    #[should_panic(expected = "already on free list")]
    fn double_push_panics() {
        let mut fl = FreeList::default();
        fl.push(7);
        fl.push(7);
    }
}

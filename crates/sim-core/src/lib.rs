//! Simulation primitives shared by every crate in the HyperHammer
//! reproduction.
//!
//! The reproduction models a complete virtualized host — DRAM, the Linux
//! buddy allocator, a KVM-like hypervisor, and the attack itself — as a
//! deterministic simulation. This crate provides the vocabulary types that
//! keep the layers honest:
//!
//! * [`addr`] — newtypes for the four address spaces involved
//!   (host-physical, guest-physical, guest-virtual, I/O-virtual) plus page
//!   frame numbers. Mixing address spaces is the classic bug class in
//!   virtualization code; the type system rules it out.
//! * [`clock`] — a simulated nanosecond clock. All of the paper's reported
//!   costs (profiling hours, minutes per attack attempt) are reproduced as
//!   simulated time advanced by a calibrated cost model.
//! * [`rng`] — a deterministic, splittable PRNG (xoshiro256**) so every
//!   experiment is reproducible from a single seed.
//! * [`check`] — a miniature deterministic property-testing harness built
//!   on [`rng`].
//! * [`snap`] — bounds-checked little-endian encode/decode primitives
//!   for the versioned machine-snapshot format.
//! * [`size`] — human-friendly byte sizes.
//! * [`mem`] — process peak-RSS measurement (`VmHWM`), for the
//!   bounded-memory guarantees the streaming campaign path makes.
//!
//! # Examples
//!
//! ```
//! use hh_sim::{addr::{Hpa, PAGE_SIZE}, clock::Clock, rng::SimRng, size::ByteSize};
//!
//! let hpa = Hpa::new(0x4000_0000);
//! assert_eq!(hpa.pfn().index(), 0x4_0000);
//! assert!(hpa.is_aligned(PAGE_SIZE));
//!
//! let mut clock = Clock::new();
//! clock.advance_micros(250);
//! assert_eq!(clock.now_nanos(), 250_000);
//!
//! let mut rng = SimRng::seed_from(42);
//! let _coin: bool = rng.gen_bool(0.5);
//!
//! assert_eq!(ByteSize::gib(2).bytes(), 2 << 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod addr;
pub mod check;
pub mod clock;
pub mod mem;
pub mod rng;
pub mod size;
pub mod snap;

pub use addr::{Gpa, Gva, Hpa, Iova, Pfn, HUGE_PAGE_SIZE, PAGE_SIZE};
pub use clock::Clock;
pub use rng::SimRng;
pub use size::ByteSize;

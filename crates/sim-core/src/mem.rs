//! Process peak-memory measurement (`VmHWM`), std-only.
//!
//! The streaming campaign path exists to bound peak RSS; this module is
//! how the CLI, benches and the `memory-cap` CI stage observe whether
//! it worked. `VmHWM` ("high water mark") in `/proc/self/status` is the
//! kernel's own running maximum of the process's resident set — a
//! single read at exit captures the whole run's peak, with no sampling
//! loop and no dependency beyond procfs.

/// The process's peak resident set size in KiB (`VmHWM`), or `None`
/// where procfs is unavailable (non-Linux hosts, locked-down sandboxes)
/// — callers degrade to "not measured", never to a guess.
pub fn peak_rss_kib() -> Option<u64> {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Parses the `VmHWM:` line out of `/proc/<pid>/status` content.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: "VmHWM:     12345 kB" — fixed by procfs ABI.
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_procfs_status_format() {
        let status = "Name:\tcat\nVmPeak:\t  222 kB\nVmHWM:\t   8704 kB\nVmRSS:\t 1234 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(8704));
        assert_eq!(parse_vm_hwm("Name:\tcat\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn live_reading_is_plausible_on_linux() {
        if let Some(kib) = peak_rss_kib() {
            // A running test binary has at least a few hundred KiB
            // resident and far less than a TiB.
            assert!(kib > 100, "implausibly small VmHWM: {kib} KiB");
            assert!(kib < (1 << 30), "implausibly large VmHWM: {kib} KiB");
        }
    }
}

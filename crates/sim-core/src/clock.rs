//! A simulated nanosecond clock.
//!
//! HyperHammer's evaluation reports wall-clock costs — 72 hours of
//! profiling, ~4 minutes per attack attempt, an expected 137–192 days
//! end-to-end. Those times are products of *work* (hammer rounds, bytes
//! scanned, VM reboots) and *rates* (hardware speeds). The reproduction
//! performs the same work and charges it to this simulated clock using a
//! calibrated [`CostModel`], so the shapes of the paper's time figures are
//! preserved without real hardware.

use std::fmt;

/// A monotonically increasing simulated clock with nanosecond resolution.
///
/// # Examples
///
/// ```
/// use hh_sim::clock::Clock;
///
/// let mut clock = Clock::new();
/// clock.advance_millis(1_500);
/// assert_eq!(clock.now_nanos(), 1_500_000_000);
/// assert_eq!(clock.now().to_string(), "1.500s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Clock {
    nanos: u64,
}

impl Clock {
    /// Creates a clock at time zero.
    pub const fn new() -> Self {
        Self { nanos: 0 }
    }

    /// Returns the current simulated time.
    pub const fn now(&self) -> SimInstant {
        SimInstant { nanos: self.nanos }
    }

    /// Returns the current simulated time in nanoseconds.
    pub const fn now_nanos(&self) -> u64 {
        self.nanos
    }

    /// Advances the clock by `nanos` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the clock would overflow (≈ 584 simulated years).
    pub fn advance_nanos(&mut self, nanos: u64) {
        self.nanos = self
            .nanos
            .checked_add(nanos)
            .expect("simulated clock overflow");
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_micros(&mut self, micros: u64) {
        self.advance_nanos(micros.checked_mul(1_000).expect("clock overflow"));
    }

    /// Advances the clock by `millis` milliseconds.
    pub fn advance_millis(&mut self, millis: u64) {
        self.advance_nanos(millis.checked_mul(1_000_000).expect("clock overflow"));
    }

    /// Advances the clock by `secs` seconds.
    pub fn advance_secs(&mut self, secs: u64) {
        self.advance_nanos(secs.checked_mul(1_000_000_000).expect("clock overflow"));
    }

    /// Returns the time elapsed since `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is in the future of this clock.
    pub fn elapsed_since(&self, start: SimInstant) -> SimDuration {
        SimDuration {
            nanos: self
                .nanos
                .checked_sub(start.nanos)
                .expect("elapsed_since: start is in the future"),
        }
    }
}

/// A point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// Returns the instant as nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimDuration { nanos: self.nanos }.fmt(f)
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: Self = Self { nanos: 0 };

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self {
            nanos: micros * 1_000,
        }
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Returns the duration in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.nanos / 1_000_000_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Returns the duration as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Returns the duration as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Returns the duration as fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.as_hours_f64() / 24.0
    }

    /// Returns the sum of two durations, or `None` on overflow.
    pub const fn checked_add(self, other: Self) -> Option<Self> {
        match self.nanos.checked_add(other.nanos) {
            Some(nanos) => Some(Self { nanos }),
            None => None,
        }
    }

    /// Returns the sum of two durations, clamping at the representable
    /// maximum (≈ 584 simulated years) instead of overflowing.
    pub const fn saturating_add(self, other: Self) -> Self {
        Self {
            nanos: self.nanos.saturating_add(other.nanos),
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.nanos;
        if n >= 86_400_000_000_000 {
            write!(f, "{:.1}d", self.as_days_f64())
        } else if n >= 3_600_000_000_000 {
            write!(f, "{:.1}h", self.as_hours_f64())
        } else if n >= 60_000_000_000 {
            write!(f, "{:.1}min", self.as_mins_f64())
        } else if n >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.3}us", n as f64 / 1e3)
        } else {
            write!(f, "{n}ns")
        }
    }
}

/// Per-operation simulated costs, in nanoseconds.
///
/// The defaults are calibrated so that the work the paper describes takes
/// roughly the time the paper reports (see `EXPERIMENTS.md` for the
/// calibration). Machine presets override individual entries.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of one DRAM row activation pair in a hammer loop (two reads +
    /// flushes, uncached).
    pub hammer_activation_nanos: u64,
    /// Cost of scanning one byte of memory when checking for bit flips.
    pub scan_byte_nanos: u64,
    /// Cost of establishing one vIOMMU mapping (vmexit + IOPT update).
    pub viommu_map_nanos: u64,
    /// Cost of one virtio-mem unplug request round-trip.
    pub virtio_mem_unplug_nanos: u64,
    /// Cost of one hugepage split under the iTLB-Multihit countermeasure
    /// (page fault, EPT allocation, 512 EPTE writes, resume).
    pub hugepage_split_nanos: u64,
    /// Cost of rebooting the attacker VM for a fresh attempt.
    pub vm_reboot_nanos: u64,
    /// Cost of writing one byte when initializing buffers (e.g. magic
    /// values or the idling function body).
    pub write_byte_nanos: u64,
}

impl CostModel {
    /// Calibration such that 250 000 hammer rounds plus a 12 GiB scan per
    /// aggressor-pair lands full-memory profiling in the tens of hours and
    /// one attack attempt at a few simulated minutes.
    pub fn calibrated() -> Self {
        Self {
            hammer_activation_nanos: 320,
            scan_byte_nanos: 0,
            viommu_map_nanos: 25_000,
            virtio_mem_unplug_nanos: 150_000,
            hugepage_split_nanos: 60_000,
            // A full guest reboot (firmware + kernel + userspace) of a
            // 13 GiB VM: ~3 minutes, the dominant cost of a failed
            // attempt (§5.3.2's ~4 min/attempt).
            vm_reboot_nanos: 180_000_000_000,
            write_byte_nanos: 0,
        }
    }

    /// Cost of scanning `bytes` bytes of memory.
    ///
    /// Scans are charged in bulk at a fixed bandwidth (~10 GiB/s) rather
    /// than per byte, because per-byte accounting of multi-gigabyte scans
    /// would overflow the precision budget of the per-op table.
    pub fn scan_cost_nanos(&self, bytes: u64) -> u64 {
        // 10 GiB/s ≈ 0.0931 ns/byte; approximate as bytes / 10.
        bytes / 10 + self.scan_byte_nanos * (bytes % 10)
    }

    /// Cost of writing `bytes` bytes of memory (~5 GiB/s).
    pub fn write_cost_nanos(&self, bytes: u64) -> u64 {
        bytes / 5 + self.write_byte_nanos * (bytes % 5)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        let t0 = c.now();
        c.advance_secs(2);
        c.advance_millis(500);
        assert_eq!(c.elapsed_since(t0).as_nanos(), 2_500_000_000);
    }

    #[test]
    fn duration_display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_secs(59).to_string(), "59.000s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.5min");
        assert_eq!(SimDuration::from_secs(7200).to_string(), "2.0h");
        assert_eq!(SimDuration::from_secs(172_800).to_string(), "2.0d");
    }

    #[test]
    fn duration_unit_conversions() {
        let d = SimDuration::from_secs(3600);
        assert!((d.as_hours_f64() - 1.0).abs() < 1e-12);
        assert!((d.as_mins_f64() - 60.0).abs() < 1e-9);
        assert_eq!(d.as_secs(), 3600);
    }

    #[test]
    fn scan_cost_is_linear_in_bytes() {
        let m = CostModel::calibrated();
        let one = m.scan_cost_nanos(1 << 30);
        let two = m.scan_cost_nanos(2 << 30);
        assert_eq!(two, one * 2);
        // ~10 GiB/s: a 10 GiB scan takes about one simulated second.
        let ten_gib = m.scan_cost_nanos(10 << 30);
        assert!((0.9e9..1.2e9).contains(&(ten_gib as f64)));
    }

    #[test]
    fn checked_add_returns_none_on_overflow() {
        // Regression: this used to be named "checked" but panicked.
        let a = SimDuration::from_nanos(u64::MAX - 1);
        assert_eq!(
            a.checked_add(SimDuration::from_nanos(1)),
            Some(SimDuration::from_nanos(u64::MAX))
        );
        assert_eq!(a.checked_add(SimDuration::from_nanos(2)), None);
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        let a = SimDuration::from_nanos(u64::MAX - 1);
        assert_eq!(
            a.saturating_add(SimDuration::from_secs(5)),
            SimDuration::from_nanos(u64::MAX)
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_add(SimDuration::from_secs(2)),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    #[should_panic(expected = "future")]
    fn elapsed_since_future_panics() {
        let mut c = Clock::new();
        c.advance_secs(1);
        let later = c.now();
        Clock::new().elapsed_since(later);
    }
}

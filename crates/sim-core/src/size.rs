//! Human-friendly byte sizes.

use std::fmt;
use std::ops::{Add, Sub};

/// A size in bytes with binary-unit constructors and display.
///
/// # Examples
///
/// ```
/// use hh_sim::size::ByteSize;
///
/// let vm_mem = ByteSize::gib(13);
/// assert_eq!(vm_mem.bytes(), 13 * (1 << 30));
/// assert_eq!(vm_mem.to_string(), "13 GiB");
/// assert_eq!(ByteSize::mib(2).pages(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Creates a size from raw bytes.
    pub const fn bytes_exact(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a size of `n` KiB.
    pub const fn kib(n: u64) -> Self {
        Self(n << 10)
    }

    /// Creates a size of `n` MiB.
    pub const fn mib(n: u64) -> Self {
        Self(n << 20)
    }

    /// Creates a size of `n` GiB.
    pub const fn gib(n: u64) -> Self {
        Self(n << 30)
    }

    /// Returns the size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the number of whole 4 KiB pages this size spans.
    pub const fn pages(self) -> u64 {
        self.0 / crate::addr::PAGE_SIZE
    }

    /// Returns the number of whole 2 MiB hugepages this size spans.
    pub const fn huge_pages(self) -> u64 {
        self.0 / crate::addr::HUGE_PAGE_SIZE
    }

    /// Returns ⌈log₂ bytes⌉, the paper's `⌈log₂(mem_size)⌉` used to bound
    /// exploitable PFN bits (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if the size is zero.
    pub fn log2_ceil(self) -> u32 {
        assert!(self.0 > 0, "log2 of zero size");
        64 - (self.0 - 1).leading_zeros()
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: Self) -> Self {
        Self(self.0.checked_add(rhs.0).expect("byte size overflow"))
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;

    fn sub(self, rhs: Self) -> Self {
        Self(self.0.checked_sub(rhs.0).expect("byte size underflow"))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 && b.is_multiple_of(1 << 30) {
            write!(f, "{} GiB", b >> 30)
        } else if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
            write!(f, "{} MiB", b >> 20)
        } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
            write!(f, "{} KiB", b >> 10)
        } else {
            write!(f, "{b} B")
        }
    }
}

impl From<ByteSize> for u64 {
    fn from(s: ByteSize) -> u64 {
        s.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(ByteSize::kib(1).bytes(), 1024);
        assert_eq!(ByteSize::mib(1).bytes(), 1 << 20);
        assert_eq!(ByteSize::gib(1).bytes(), 1 << 30);
    }

    #[test]
    fn page_counts() {
        assert_eq!(ByteSize::gib(1).pages(), 262_144);
        assert_eq!(ByteSize::gib(1).huge_pages(), 512);
        assert_eq!(ByteSize::mib(2).huge_pages(), 1);
    }

    #[test]
    fn log2_ceil_matches_paper() {
        // The paper: "With 16 GB of memory, we have ⌈log₂(mem_size)⌉ = 34."
        assert_eq!(ByteSize::gib(16).log2_ceil(), 34);
        assert_eq!(ByteSize::gib(8).log2_ceil(), 33);
        assert_eq!(ByteSize::bytes_exact(1).log2_ceil(), 0);
        assert_eq!(ByteSize::bytes_exact(3).log2_ceil(), 2);
    }

    #[test]
    fn display_uses_largest_exact_unit() {
        assert_eq!(ByteSize::gib(2).to_string(), "2 GiB");
        assert_eq!(ByteSize::mib(2050).to_string(), "2050 MiB");
        assert_eq!(ByteSize::bytes_exact(100).to_string(), "100 B");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ByteSize::gib(1) + ByteSize::gib(1), ByteSize::gib(2));
        assert_eq!(ByteSize::gib(2) - ByteSize::mib(1024), ByteSize::gib(1));
    }
}

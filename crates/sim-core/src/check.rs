//! A miniature deterministic property-testing harness.
//!
//! The workspace's invariant tests used to be written against an external
//! property-testing crate; the vendored registry is offline, so this
//! module provides the small subset the tests actually need: run a
//! closure over many independently-seeded [`SimRng`] instances and let it
//! draw whatever random inputs it wants. Unlike shrinking-based property
//! testers the case streams are fully deterministic — a failure reports
//! the case seed, and re-running reproduces it exactly.
//!
//! # Examples
//!
//! ```
//! use hh_sim::check;
//!
//! check::cases(0xc0ffee, 64, |rng| {
//!     let x = rng.next_u64() | 1;
//!     assert_eq!(x % 2, 1);
//! });
//! ```

use crate::rng::SimRng;

/// Default number of cases, matching the old property-test budget.
pub const DEFAULT_CASES: usize = 256;

/// Runs `f` over `n` independently-seeded RNG streams derived from
/// `seed` via [`SimRng::split_seed`].
///
/// # Panics
///
/// Re-raises any panic from `f`, prefixed with the failing case's seed so
/// the exact input stream can be replayed with
/// `SimRng::seed_from(case_seed)`.
pub fn cases(seed: u64, n: usize, mut f: impl FnMut(&mut SimRng)) {
    for i in 0..n {
        let case_seed = SimRng::split_seed(seed, i as u64);
        let mut rng = SimRng::seed_from(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("check::cases failure: case {i} of {n}, case seed {case_seed:#x}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Draws a random-length `Vec` by calling `f` once per element; the
/// length is uniform in `min_len..max_len`.
pub fn vec_of<T>(
    rng: &mut SimRng,
    min_len: usize,
    max_len: usize,
    mut f: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| f(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_run_exactly_n_times_with_distinct_streams() {
        let mut seen = Vec::new();
        cases(1, 16, |rng| seen.push(rng.next_u64()));
        assert_eq!(seen.len(), 16);
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn cases_are_reproducible() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        cases(9, 8, |rng| a.push(rng.next_u64()));
        cases(9, 8, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        cases(2, 32, |rng| {
            let v = vec_of(rng, 1, 10, |r| r.next_u32());
            assert!((1..10).contains(&v.len()));
        });
    }
}

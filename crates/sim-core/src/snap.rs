//! Byte-level primitives for the versioned snapshot format.
//!
//! Every layer that serializes state for `hyperhammer-snap-v1` (the
//! buddy allocator's free lists, the sparse DRAM store, the host's RNG
//! and clock) encodes through [`Enc`] and decodes through [`Dec`]. The
//! wire rules are deliberately tiny and hand-rolled — no external
//! crates, mirroring how `hh_bench::baseline` hand-rolls its JSON:
//!
//! * all integers are **little-endian fixed width** (`u8`, `u32`,
//!   `u64`); floats are the IEEE-754 bit pattern of an `f64` as `u64`;
//! * variable-length data is **length-prefixed**: a `u64` count
//!   followed by the raw bytes (or that many fixed-width elements);
//! * decoding is **total**: every read is bounds-checked and returns a
//!   typed [`SnapError`] — corrupt input can never panic, and a lying
//!   length prefix can never trigger an allocation larger than the
//!   input itself (lengths are validated against the remaining input
//!   *before* any buffer is reserved).
//!
//! # Examples
//!
//! ```
//! use hh_sim::snap::{Dec, Enc};
//!
//! let mut enc = Enc::new();
//! enc.u32(7);
//! enc.bytes(b"free-list");
//! let buf = enc.into_bytes();
//!
//! let mut dec = Dec::new(&buf);
//! assert_eq!(dec.u32().unwrap(), 7);
//! assert_eq!(dec.bytes().unwrap(), b"free-list");
//! dec.finish().unwrap();
//! ```

use std::error::Error;
use std::fmt;

/// A typed decoding failure. Every variant is a *diagnosis*, not a
/// panic: snapshot files come from disk and may be truncated, from a
/// different build (wrong version), or simply corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a fixed-width read or a promised payload.
    Truncated {
        /// Bytes the read needed.
        needed: u64,
        /// Bytes actually left in the input.
        available: u64,
    },
    /// The leading magic string did not match the expected format tag.
    BadMagic,
    /// The format version is not one this decoder understands.
    UnsupportedVersion(u32),
    /// A structural invariant failed (impossible enum tag, value out of
    /// range, duplicate key…). The message names the field.
    Corrupt(&'static str),
    /// Decoding finished but input bytes remain.
    TrailingBytes(u64),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated snapshot: needed {needed} bytes, {available} available"
                )
            }
            SnapError::BadMagic => write!(f, "not a hyperhammer snapshot (bad magic)"),
            SnapError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} trailing bytes after decoding")
            }
        }
    }
}

impl Error for SnapError {}

/// Little-endian binary encoder accumulating into a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes with **no** length prefix (magic strings,
    /// already-framed sections).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact
    /// round-trip, no text formatting involved).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `u64` length prefix followed by the raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a string as length-prefixed UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian decoder over a borrowed byte slice.
///
/// All reads return [`SnapError`] on failure; none panic. Length
/// prefixes are validated against the remaining input before any
/// allocation, so a corrupt prefix cannot cause unbounded reservation.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads raw bytes with no length prefix (magic strings).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` stored as its bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte slice, borrowed from the input (no
    /// allocation; the length is checked against the remaining input).
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the prefix promises more bytes
    /// than remain.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(SnapError::Truncated {
                needed: len,
                available: self.remaining() as u64,
            });
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] on a lying prefix,
    /// [`SnapError::Corrupt`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| SnapError::Corrupt("non-UTF-8 string"))
    }

    /// Reads a `u64` element count for a sequence whose elements occupy
    /// at least `min_elem_size` bytes each, rejecting counts that could
    /// not possibly fit in the remaining input. This is the guard that
    /// makes `Vec::with_capacity(count)` safe downstream: the returned
    /// count is always ≤ `remaining / min_elem_size`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when the claimed count cannot fit.
    ///
    /// # Panics
    ///
    /// Panics when `min_elem_size` is zero (a caller bug, not an input
    /// property).
    pub fn count(&mut self, min_elem_size: usize) -> Result<usize, SnapError> {
        assert!(min_elem_size > 0, "elements must occupy at least one byte");
        let count = self.u64()?;
        let fit = (self.remaining() / min_elem_size) as u64;
        if count > fit {
            return Err(SnapError::Truncated {
                needed: count.saturating_mul(min_elem_size as u64),
                available: self.remaining() as u64,
            });
        }
        Ok(count as usize)
    }

    /// Asserts all input was consumed.
    ///
    /// # Errors
    ///
    /// [`SnapError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes(self.remaining() as u64));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut enc = Enc::new();
        enc.u8(0xab);
        enc.u32(0xdead_beef);
        enc.u64(u64::MAX - 1);
        enc.f64(0.125);
        let buf = enc.into_bytes();
        let mut dec = Dec::new(&buf);
        assert_eq!(dec.u8().unwrap(), 0xab);
        assert_eq!(dec.u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.f64().unwrap().to_bits(), 0.125f64.to_bits());
        dec.finish().unwrap();
    }

    #[test]
    fn bytes_and_str_round_trip() {
        let mut enc = Enc::new();
        enc.bytes(b"");
        enc.str("snap-v1 \u{1F980}");
        let buf = enc.into_bytes();
        let mut dec = Dec::new(&buf);
        assert_eq!(dec.bytes().unwrap(), b"");
        assert_eq!(dec.str().unwrap(), "snap-v1 \u{1F980}");
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut dec = Dec::new(&[1, 2, 3]);
        assert!(matches!(
            dec.u64(),
            Err(SnapError::Truncated {
                needed: 8,
                available: 3
            })
        ));
    }

    #[test]
    fn lying_length_prefix_is_rejected_before_allocation() {
        // A prefix claiming u64::MAX bytes over a 1-byte payload must be
        // rejected without reserving anything.
        let mut enc = Enc::new();
        enc.u64(u64::MAX);
        enc.u8(0);
        let buf = enc.into_bytes();
        let mut dec = Dec::new(&buf);
        assert!(matches!(dec.bytes(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn count_bounds_element_sequences() {
        let mut enc = Enc::new();
        enc.u64(1 << 40); // absurd element count
        let buf = enc.into_bytes();
        let mut dec = Dec::new(&buf);
        assert!(matches!(dec.count(8), Err(SnapError::Truncated { .. })));

        let mut enc = Enc::new();
        enc.u64(2);
        enc.u64(10);
        enc.u64(20);
        let buf = enc.into_bytes();
        let mut dec = Dec::new(&buf);
        assert_eq!(dec.count(8).unwrap(), 2);
        assert_eq!(dec.u64().unwrap(), 10);
        assert_eq!(dec.u64().unwrap(), 20);
        dec.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut dec = Dec::new(&[0, 0]);
        assert_eq!(dec.u8().unwrap(), 0);
        assert_eq!(dec.finish(), Err(SnapError::TrailingBytes(1)));
    }

    #[test]
    fn non_utf8_string_is_corrupt_not_panic() {
        let mut enc = Enc::new();
        enc.bytes(&[0xff, 0xfe]);
        let buf = enc.into_bytes();
        let mut dec = Dec::new(&buf);
        assert_eq!(dec.str(), Err(SnapError::Corrupt("non-UTF-8 string")));
    }
}

//! Deterministic pseudo-random number generation for the simulation.
//!
//! Every stochastic element of the reproduction — which DRAM cells are
//! vulnerable, flip stability, host background allocations — must be
//! reproducible from a single experiment seed so that tests and benchmarks
//! are stable. External RNG crates either refuse to promise a stable
//! stream across versions or cannot be vendored offline, so we implement
//! **xoshiro256\*\*** (public domain, Blackman & Vigna) seeded through
//! SplitMix64 and expose the handful of sampling methods the simulation
//! needs as inherent methods — no external traits, no external crates.

use std::ops::Range;

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use hh_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
/// let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
/// assert_eq!(xs, ys);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a single `u64` seed.
    ///
    /// The seed is expanded with SplitMix64, which guarantees the state is
    /// never all-zero (the one illegal xoshiro state).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            state: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    /// Creates a generator from an 8-byte little-endian seed.
    pub fn from_seed(seed: [u8; 8]) -> Self {
        Self::seed_from(u64::from_le_bytes(seed))
    }

    /// Derives an independent child generator for a named subsystem.
    ///
    /// Mixing a stream label into the seed keeps subsystems (fault model,
    /// host noise, profiling order…) statistically independent while
    /// remaining reproducible: the same `(seed, label)` always yields the
    /// same stream, and drawing more values in one subsystem never
    /// perturbs another.
    pub fn fork(&mut self, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from(self.next_u64() ^ h)
    }

    /// The raw generator state, for snapshot serialization. Restoring
    /// via [`SimRng::from_state`] resumes the stream exactly where this
    /// generator left off.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a [`SimRng::state`] capture.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which is not a valid xoshiro256**
    /// state (no seeding path can produce it, so encountering it means
    /// the snapshot bytes are corrupt and were not range-checked).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "all-zero xoshiro256** state is invalid"
        );
        Self { state }
    }

    /// Splits a base experiment seed into the seed for task `index`.
    ///
    /// This is the seed-splitting scheme the parallel campaign engine
    /// relies on: the derived seed depends only on `(base, index)`, never
    /// on worker count or scheduling order, so a grid cell's RNG stream —
    /// and therefore its results — are identical however the grid is
    /// executed.
    pub fn split_seed(base: u64, index: u64) -> u64 {
        let mut sm = SplitMix64::new(base);
        let expanded = sm.next();
        SplitMix64::new(expanded ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next()
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Produces the next 32 random bits (the upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fills `dest` with random bytes, consuming whole 64-bit words.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Samples uniformly below `n` with Lemire's multiply-shift rejection
    /// (unbiased; the stream is part of the determinism contract).
    fn gen_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        loop {
            let x = self.next();
            let m = u128::from(x) * u128::from(n);
            let lo = m as u64;
            if lo < n {
                let threshold = n.wrapping_neg() % n;
                if lo < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Samples uniformly from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use hh_sim::rng::SimRng;
    ///
    /// let mut rng = SimRng::seed_from(5);
    /// let v = rng.gen_range(10u64..20);
    /// assert!((10..20).contains(&v));
    /// ```
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "empty sampling range {lo}..{hi}");
        T::from_u64(lo + self.gen_u64_below(hi - lo))
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, the same construction rand uses.
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Integer types [`SimRng::gen_range`] can sample.
pub trait RangeSample: Copy + PartialOrd {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back from the sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

/// SplitMix64 seed expander (Steele, Lea & Flood; public domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates an expander from a raw seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produces the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // matches the reference C API, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(12345);
        let mut b = SimRng::seed_from(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut fault1 = parent1.fork("fault");
        let mut fault2 = parent2.fork("fault");
        assert_eq!(fault1.next_u64(), fault2.next_u64());

        let mut parent3 = SimRng::seed_from(9);
        let mut noise = parent3.fork("noise");
        assert_ne!(fault1.next_u64(), noise.next_u64());
    }

    #[test]
    fn split_seed_is_pure_and_decorrelated() {
        assert_eq!(SimRng::split_seed(7, 3), SimRng::split_seed(7, 3));
        let seeds: Vec<u64> = (0..64).map(|i| SimRng::split_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "split seeds collide");
        assert_ne!(SimRng::split_seed(7, 0), SimRng::split_seed(8, 0));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SimRng::seed_from(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SimRng::seed_from(77);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn gen_range_is_unbiased_over_small_domain() {
        let mut rng = SimRng::seed_from(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn state_capture_resumes_the_stream() {
        let mut rng = SimRng::seed_from(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = SimRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn seedable_rng_roundtrip() {
        let a = SimRng::from_seed(42u64.to_le_bytes());
        let b = SimRng::seed_from(42);
        assert_eq!(a, b);
    }
}

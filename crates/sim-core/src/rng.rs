//! Deterministic pseudo-random number generation for the simulation.
//!
//! Every stochastic element of the reproduction — which DRAM cells are
//! vulnerable, flip stability, host background allocations — must be
//! reproducible from a single experiment seed so that tests and benchmarks
//! are stable. `rand`'s `StdRng` explicitly does not promise a stable
//! stream across versions, so we implement **xoshiro256\*\*** (public
//! domain, Blackman & Vigna) seeded through SplitMix64, and expose it via
//! the [`rand::RngCore`] trait so the whole `rand` distribution toolbox
//! works on top.

use rand::{CryptoRng, RngCore, SeedableRng};

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use hh_sim::rng::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// let xs: Vec<u32> = (0..4).map(|_| a.gen()).collect();
/// let ys: Vec<u32> = (0..4).map(|_| b.gen()).collect();
/// assert_eq!(xs, ys);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a single `u64` seed.
    ///
    /// The seed is expanded with SplitMix64, which guarantees the state is
    /// never all-zero (the one illegal xoshiro state).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            state: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    /// Derives an independent child generator for a named subsystem.
    ///
    /// Mixing a stream label into the seed keeps subsystems (fault model,
    /// host noise, profiling order…) statistically independent while
    /// remaining reproducible: the same `(seed, label)` always yields the
    /// same stream, and drawing more values in one subsystem never
    /// perturbs another.
    pub fn fork(&mut self, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from(self.next_u64() ^ h)
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::seed_from(u64::from_le_bytes(seed))
    }
}

// Not cryptographically secure; deliberately NOT CryptoRng. The marker
// trait below exists only in a doc comment to make the decision explicit.
const _: fn() = || {
    fn assert_not_crypto<T: CryptoRng>() {}
    let _ = assert_not_crypto::<rand::rngs::OsRng>; // SimRng intentionally absent
};

/// SplitMix64 seed expander (Steele, Lea & Flood; public domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates an expander from a raw seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produces the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // matches the reference C API, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(12345);
        let mut b = SimRng::seed_from(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut fault1 = parent1.fork("fault");
        let mut fault2 = parent2.fork("fault");
        assert_eq!(fault1.next_u64(), fault2.next_u64());

        let mut parent3 = SimRng::seed_from(9);
        let mut noise = parent3.fork("noise");
        assert_ne!(fault1.next_u64(), noise.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SimRng::seed_from(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SimRng::seed_from(77);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn seedable_rng_roundtrip() {
        let a = SimRng::from_seed(42u64.to_le_bytes());
        let b = SimRng::seed_from(42);
        assert_eq!(a, b);
    }
}

//! Typed addresses for the four address spaces of a virtualized host.
//!
//! Hardware-assisted virtualization juggles four address spaces at once:
//! guest-virtual ([`Gva`]), guest-physical ([`Gpa`]), host-physical
//! ([`Hpa`]) and I/O-virtual ([`Iova`]). The paper's attack hinges on the
//! *relationships* between them (e.g. THP preserving the low 21 bits of a
//! GPA→HPA translation), so confusing them in the simulator would be fatal.
//! Each space gets its own newtype; conversions are explicit.

use std::fmt;

/// Size of a base (4 KiB) page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Size of a 2 MiB hugepage in bytes.
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;

/// Number of base pages in a hugepage (512).
pub const PAGES_PER_HUGE_PAGE: u64 = HUGE_PAGE_SIZE / PAGE_SIZE;

/// Number of low address bits preserved by a 2 MiB hugepage mapping (21).
///
/// When the hypervisor backs guest memory with transparent hugepages, the
/// low [`HUGE_PAGE_BITS`] bits of a guest-physical address equal the low
/// bits of the host-physical address — the property HyperHammer's memory
/// profiling step exploits (§4.1 of the paper).
pub const HUGE_PAGE_BITS: u32 = 21;

macro_rules! address_newtype {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates an address from a raw 64-bit value.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("# use hh_sim::addr::", stringify!($name), ";")]
            #[doc = concat!("let a = ", stringify!($name), "::new(0x1000);")]
            /// assert_eq!(a.raw(), 0x1000);
            /// ```
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value of the address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the page frame number (address divided by 4 KiB).
            #[inline]
            pub const fn pfn(self) -> Pfn {
                Pfn::new(self.0 / PAGE_SIZE)
            }

            /// Returns the byte offset within the containing 4 KiB page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 % PAGE_SIZE
            }

            /// Returns the byte offset within the containing 2 MiB hugepage.
            #[inline]
            pub const fn huge_page_offset(self) -> u64 {
                self.0 % HUGE_PAGE_SIZE
            }

            /// Returns the address rounded down to a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn align_down(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(self.0 & !(align - 1))
            }

            /// Returns the address rounded up to a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two or the rounded value
            /// overflows `u64`.
            #[inline]
            pub fn align_up(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(
                    self.0
                        .checked_add(align - 1)
                        .expect("address overflow in align_up")
                        & !(align - 1),
                )
            }

            /// Returns `true` if the address is a multiple of `align`.
            ///
            /// # Panics
            ///
            /// Panics if `align` is not a power of two.
            #[inline]
            pub fn is_aligned(self, align: u64) -> bool {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                self.0 & (align - 1) == 0
            }

            /// Returns the address advanced by `offset` bytes.
            ///
            /// # Panics
            ///
            /// Panics on `u64` overflow.
            #[inline]
            #[allow(clippy::should_implement_trait)] // deliberate: checked, non-operator addition
            pub fn add(self, offset: u64) -> Self {
                Self(self.0.checked_add(offset).expect("address overflow"))
            }

            /// Returns the distance in bytes from `other` to `self`.
            ///
            /// # Panics
            ///
            /// Panics if `other > self`.
            #[inline]
            pub fn offset_from(self, other: Self) -> u64 {
                self.0
                    .checked_sub(other.0)
                    .expect("offset_from: other is above self")
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

address_newtype!(
    /// A host-physical address: a byte address in the host machine's DRAM.
    ///
    /// This is the address space the DRAM model ([`hh-dram`]) indexes and
    /// the one the attacker ultimately gains arbitrary access to.
    ///
    /// [`hh-dram`]: https://docs.rs/hh-dram
    Hpa, "Hpa"
);
address_newtype!(
    /// A guest-physical address: what the guest OS believes is physical
    /// memory. Translated to an [`Hpa`] by the hypervisor's extended page
    /// tables (EPT).
    Gpa, "Gpa"
);
address_newtype!(
    /// A guest-virtual address: a virtual address inside the attacker VM,
    /// translated to a [`Gpa`] by the guest's own page tables.
    Gva, "Gva"
);
address_newtype!(
    /// An I/O-virtual address: the address space devices use for DMA,
    /// translated by the (virtual) IOMMU's page tables to a [`Gpa`] (from
    /// the guest's perspective) and ultimately an [`Hpa`].
    Iova, "Iova"
);

/// A page frame number: an address divided by the 4 KiB page size.
///
/// PFNs identify page-granular objects (buddy-allocator blocks, EPT page
/// frames, DRAM victim pages) without committing to a byte offset.
///
/// # Examples
///
/// ```
/// use hh_sim::addr::{Hpa, Pfn};
///
/// let pfn = Pfn::new(0x123);
/// assert_eq!(pfn.base_hpa(), Hpa::new(0x123000));
/// assert_eq!(Hpa::new(0x123fff).pfn(), pfn);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(u64);

impl Pfn {
    /// Creates a PFN from its raw index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw frame index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the host-physical address of the first byte of the frame.
    #[inline]
    pub const fn base_hpa(self) -> Hpa {
        Hpa::new(self.0 * PAGE_SIZE)
    }

    /// Returns the guest-physical address of the first byte of the frame,
    /// for PFNs that index guest-physical space.
    #[inline]
    pub const fn base_gpa(self) -> Gpa {
        Gpa::new(self.0 * PAGE_SIZE)
    }

    /// Returns the PFN advanced by `n` frames.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow.
    #[inline]
    #[allow(clippy::should_implement_trait)] // deliberate: checked, non-operator addition
    pub fn add(self, n: u64) -> Self {
        Self(self.0.checked_add(n).expect("pfn overflow"))
    }

    /// Returns `true` if this frame is the first frame of a 2 MiB hugepage.
    #[inline]
    pub const fn is_huge_aligned(self) -> bool {
        self.0.is_multiple_of(PAGES_PER_HUGE_PAGE)
    }

    /// Returns the first PFN of the hugepage containing this frame.
    #[inline]
    pub const fn huge_base(self) -> Self {
        Self(self.0 - self.0 % PAGES_PER_HUGE_PAGE)
    }
}

impl fmt::Debug for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pfn({:#x})", self.0)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Pfn> for u64 {
    fn from(p: Pfn) -> u64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_round_trips() {
        let a = Hpa::new(0x1234_5678);
        assert_eq!(a.align_down(PAGE_SIZE), Hpa::new(0x1234_5000));
        assert_eq!(a.align_up(PAGE_SIZE), Hpa::new(0x1234_6000));
        assert!(a.align_down(HUGE_PAGE_SIZE).is_aligned(HUGE_PAGE_SIZE));
        let already = Hpa::new(0x20_0000);
        assert_eq!(already.align_up(HUGE_PAGE_SIZE), already);
    }

    #[test]
    fn pfn_conversions() {
        let hpa = Hpa::new(0x7fff_f123);
        assert_eq!(hpa.pfn().base_hpa(), hpa.align_down(PAGE_SIZE));
        assert_eq!(hpa.page_offset(), 0x123);
        assert_eq!(hpa.huge_page_offset(), 0x1ff123);
    }

    #[test]
    fn huge_page_helpers() {
        let pfn = Pfn::new(513);
        assert!(!pfn.is_huge_aligned());
        assert_eq!(pfn.huge_base(), Pfn::new(512));
        assert!(Pfn::new(1024).is_huge_aligned());
    }

    #[test]
    fn address_spaces_are_distinct_types() {
        fn takes_hpa(_: Hpa) {}
        takes_hpa(Hpa::new(0));
        // The following would not compile, which is the point:
        // takes_hpa(Gpa::new(0));
    }

    #[test]
    fn offset_arithmetic() {
        let base = Gpa::new(0x1000);
        let further = base.add(0x2000);
        assert_eq!(further.offset_from(base), 0x2000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_rejects_non_power_of_two() {
        let _ = Hpa::new(0).align_down(3);
    }

    #[test]
    fn debug_formats_are_informative() {
        assert_eq!(format!("{:?}", Hpa::new(0x10)), "Hpa(0x10)");
        assert_eq!(format!("{:?}", Pfn::new(2)), "Pfn(0x2)");
        assert_eq!(format!("{:x}", Iova::new(0xff)), "ff");
    }
}

//! Property tests on the simulation primitives, driven by the
//! deterministic `hh_sim::check` harness.

use hh_sim::addr::{Hpa, Pfn, HUGE_PAGE_SIZE, PAGE_SIZE};
use hh_sim::check;
use hh_sim::clock::{Clock, CostModel, SimDuration};
use hh_sim::rng::{SimRng, SplitMix64};
use hh_sim::ByteSize;

/// Alignment laws: align_down ≤ x < align_down + align, and aligned
/// values are fixed points.
#[test]
fn align_laws() {
    check::cases(0xa11a, check::DEFAULT_CASES, |rng| {
        let raw = rng.gen_range(0u64..1 << 48);
        let shift = rng.gen_range(0u32..21);
        let align = 1u64 << (shift + 1);
        let a = Hpa::new(raw);
        let down = a.align_down(align);
        assert!(down <= a);
        assert!(a.raw() - down.raw() < align);
        assert!(down.is_aligned(align));
        assert_eq!(down.align_down(align), down);
        let up = a.align_up(align);
        assert!(up >= a);
        assert!(up.raw() - a.raw() < align);
        assert!(up.is_aligned(align));
    });
}

/// PFN/address conversions are inverse on page-aligned values.
#[test]
fn pfn_roundtrip() {
    check::cases(0x9f41, check::DEFAULT_CASES, |rng| {
        let frame = rng.gen_range(0u64..1 << 36);
        let pfn = Pfn::new(frame);
        assert_eq!(pfn.base_hpa().pfn(), pfn);
        assert_eq!(pfn.base_hpa().raw() % PAGE_SIZE, 0);
        assert_eq!(pfn.huge_base().base_hpa().raw() % HUGE_PAGE_SIZE, 0);
        assert!(pfn.huge_base() <= pfn);
        assert!(pfn.index() - pfn.huge_base().index() < 512);
    });
}

/// The clock is an exact accumulator.
#[test]
fn clock_accumulates_exactly() {
    check::cases(0xc10c, check::DEFAULT_CASES, |rng| {
        let steps = check::vec_of(rng, 1, 50, |r| r.gen_range(0u64..1_000_000));
        let mut clock = Clock::new();
        let t0 = clock.now();
        let mut total = 0u64;
        for s in &steps {
            clock.advance_nanos(*s);
            total += s;
        }
        assert_eq!(clock.elapsed_since(t0).as_nanos(), total);
    });
}

/// Duration unit conversions agree.
#[test]
fn duration_units() {
    check::cases(0xd04a, check::DEFAULT_CASES, |rng| {
        let secs = rng.gen_range(0u64..1_000_000);
        let d = SimDuration::from_secs(secs);
        assert_eq!(d.as_secs(), secs);
        assert!((d.as_mins_f64() * 60.0 - secs as f64).abs() < 1e-6);
        assert!((d.as_hours_f64() * 3600.0 - secs as f64).abs() < 1e-3);
    });
}

/// Scan cost is monotone and (block-)additive.
#[test]
fn scan_cost_monotone() {
    check::cases(0x5ca4, check::DEFAULT_CASES, |rng| {
        let a = rng.gen_range(0u64..1 << 34);
        let b = rng.gen_range(0u64..1 << 34);
        let m = CostModel::calibrated();
        assert!(m.scan_cost_nanos(a.max(b)) >= m.scan_cost_nanos(a.min(b)));
        // Additivity on multiples of 10 (the bandwidth divisor).
        let a10 = a / 10 * 10;
        let b10 = b / 10 * 10;
        assert_eq!(
            m.scan_cost_nanos(a10) + m.scan_cost_nanos(b10),
            m.scan_cost_nanos(a10 + b10)
        );
    });
}

/// ByteSize::log2_ceil is the true ceiling of log2.
#[test]
fn log2_ceil_correct() {
    check::cases(0x1062, check::DEFAULT_CASES, |rng| {
        let bytes = rng.gen_range(1u64..1 << 50);
        let l = ByteSize::bytes_exact(bytes).log2_ceil();
        if l > 0 {
            assert!(1u64.checked_shl(l - 1).unwrap() < bytes || bytes == 1);
        }
        assert!(u128::from(bytes) <= 1u128 << l);
    });
}

/// The RNG's fill_bytes agrees with next_u64 word-for-word.
#[test]
fn fill_bytes_matches_words() {
    check::cases(0xf111, check::DEFAULT_CASES, |rng| {
        let seed = rng.next_u64();
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let mut buf = [0u8; 32];
        a.fill_bytes(&mut buf);
        for chunk in buf.chunks(8) {
            let expect = b.next_u64().to_le_bytes();
            assert_eq!(chunk, &expect[..]);
        }
    });
}

/// SplitMix64 streams never collide for nearby seeds (sanity, not a
/// cryptographic claim).
#[test]
fn splitmix_seeds_decorrelate() {
    check::cases(0x5eed, check::DEFAULT_CASES, |rng| {
        let seed = rng.next_u64();
        let mut x = SplitMix64::new(seed);
        let mut y = SplitMix64::new(seed.wrapping_add(1));
        let same = (0..16).filter(|_| x.next() == y.next()).count();
        assert_eq!(same, 0);
    });
}

//! # hh-server — persistent campaign daemon
//!
//! A std-only campaign server: a hand-rolled HTTP/1.1 listener (module
//! [`http`]) in front of a priority job queue feeding the core crate's
//! work-stealing campaign runner, with per-scenario
//! [`MachineTemplate`]s kept warm in a shared cache so repeat jobs skip
//! the cold host-profiling setup the CLI pays on every invocation.
//!
//! The two layers are separable on purpose:
//!
//! * [`JobManager`] is the engine — submit/status/cancel/stream over an
//!   in-process job table, one runner thread draining a priority queue
//!   into [`CampaignGrid::run_streamed_with`]. Benches drive it
//!   directly to compare warm-server submissions against cold starts.
//! * [`CampaignServer`] wraps a manager with the HTTP API:
//!   `POST /jobs`, `GET /jobs/{id}`, `GET /jobs/{id}/stream` (chunked
//!   NDJSON in grid order), `DELETE /jobs/{id}`, `GET /healthz`,
//!   `GET /metrics` and `POST /shutdown`.
//!
//! ## Byte-identity
//!
//! A job's streamed NDJSON is byte-identical to the serial CLI run of
//! the same spec: grids are built through [`JobSpec::grid_for`] (so
//! parameters cannot drift) and the per-cell line formatter is injected
//! by the CLI itself — the server never formats cells on its own.
//!
//! ## Leak-free cancellation
//!
//! `DELETE /jobs/{id}` cancels a queued job immediately and flips a
//! running job's [`CancelToken`]; in-flight cells complete normally
//! (every host teardown still runs, so the buddy allocator's
//! `free_pages` invariant holds) and not-yet-started cells never boot a
//! host.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod json;

use std::collections::{BinaryHeap, HashMap};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hh_trace::{Counter, Metrics};
use hyperhammer::parallel::{CellConsumer, StreamError};
use hyperhammer::streamref::CampaignAggregate;
use hyperhammer::{CancelToken, CellResult, JobSpec, MachineTemplate};

use http::{error_response, json_escape, ChunkedWriter, Method, ParseError, Request, Response};

/// Per-cell NDJSON line formatter, injected by the CLI so the server
/// cannot drift from `campaign --json` output.
pub type CellFormatter = fn(&CellResult, &mut String);

/// A job's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the priority queue.
    Queued,
    /// Being executed by the runner thread.
    Running,
    /// Every cell completed.
    Done,
    /// Cancelled before all cells ran; completed cells remain valid.
    Cancelled,
    /// The run failed (hypervisor error); the message says how.
    Failed(String),
}

impl JobStatus {
    /// Stable lower-case wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed(_) => "failed",
        }
    }

    /// Whether the job will never make further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed(_)
        )
    }
}

/// Point-in-time view of one job, as returned by [`JobManager::status`].
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Job id.
    pub id: u64,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Queue priority the job was submitted with.
    pub priority: u8,
    /// Total cells in the job's grid.
    pub cells: usize,
    /// Cells completed so far.
    pub completed: usize,
    /// Execution order assigned when the runner picked the job up
    /// (0-based); `None` while still queued.
    pub start_order: Option<u64>,
    /// Aggregate statistics over the completed cells.
    pub aggregate: CampaignAggregate,
}

impl JobSnapshot {
    /// Serializes the snapshot as the `GET /jobs/{id}` response body.
    pub fn to_json(&self) -> String {
        let error = match &self.status {
            JobStatus::Failed(msg) => format!(", \"error\": {}", json_escape(msg)),
            _ => String::new(),
        };
        format!(
            "{{\"id\": {}, \"status\": {}, \"priority\": {}, \"cells\": {}, \
             \"completed\": {}, \"succeeded\": {}, \"attempts\": {}, \
             \"aborted_attempts\": {}{error}}}",
            self.id,
            json_escape(self.status.name()),
            self.priority,
            self.cells,
            self.completed,
            self.aggregate.succeeded,
            self.aggregate.attempts,
            self.aggregate.aborted_attempts,
        )
    }
}

/// What [`JobManager::wait_line`] found at a grid index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineWait {
    /// The cell finished; here is its NDJSON line (newline included).
    Line(String),
    /// The job is terminal and this cell never completed.
    End(JobStatus),
}

#[derive(Debug)]
struct JobState {
    status: JobStatus,
    /// Per-cell NDJSON lines, indexed by grid order; `None` until the
    /// cell completes. Filled out of order by workers, drained in grid
    /// order by streamers.
    lines: Vec<Option<String>>,
    completed: usize,
    start_order: Option<u64>,
    aggregate: CampaignAggregate,
}

/// Where one job persists itself when the manager runs with a spool
/// directory: the spec as JSON (written at submit) and one
/// `index\tndjson-line` record per completed cell (appended and fsynced
/// as cells finish). Both are deleted once the job goes terminal, so
/// after a crash the spool holds exactly the unfinished jobs.
#[derive(Debug)]
struct JobSpool {
    spec_path: PathBuf,
    lines_path: PathBuf,
}

impl JobSpool {
    fn for_job(dir: &Path, id: u64) -> Self {
        Self {
            spec_path: dir.join(format!("job-{id}.json")),
            lines_path: dir.join(format!("job-{id}.ndjson")),
        }
    }

    fn append_line(&self, index: usize, line: &str) -> io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.lines_path)?;
        // One write per record: a kill can tear at most the final line,
        // which the restart scan drops (that cell simply re-runs).
        file.write_all(format!("{index}\t{line}").as_bytes())?;
        file.sync_data()
    }

    fn remove(&self) {
        let _ = std::fs::remove_file(&self.spec_path);
        let _ = std::fs::remove_file(&self.lines_path);
    }
}

#[derive(Debug)]
struct Job {
    spec: JobSpec,
    cancel: CancelToken,
    state: Mutex<JobState>,
    wake: Condvar,
    spool: Option<JobSpool>,
}

impl Job {
    fn set_status(&self, status: JobStatus) {
        let terminal = status.is_terminal();
        {
            let mut state = self.state.lock().expect("job state poisoned");
            state.status = status;
            self.wake.notify_all();
        }
        if terminal {
            if let Some(spool) = &self.spool {
                spool.remove();
            }
        }
    }
}

/// Queue key: higher priority first; FIFO (lower submission sequence)
/// among equals.
#[derive(Debug, PartialEq, Eq)]
struct QueueEntry {
    priority: u8,
    seq: u64,
    id: u64,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct Registry {
    next_id: u64,
    next_seq: u64,
    next_start: u64,
    jobs: HashMap<u64, Arc<Job>>,
    queue: BinaryHeap<QueueEntry>,
    shutting_down: bool,
}

/// Cache key for warm [`MachineTemplate`]s. The template is built from
/// the *faulted* scenario (`Scenario::host_config` embeds the fault
/// plan), so the key must carry everything the resolved scenario does:
/// the base name, the attack variant (same-named jobs targeting
/// different variants must not share a template), and the fault
/// parameters. The fault rate is normalized before `to_bits` so `-0.0`
/// and `0.0` — equal rates — cannot split into two cache entries.
type TemplateKey = (&'static str, &'static str, u64, u64);

#[derive(Debug)]
struct Shared {
    fmt_cell: CellFormatter,
    registry: Mutex<Registry>,
    queue_wake: Condvar,
    templates: Mutex<HashMap<TemplateKey, Arc<MachineTemplate>>>,
    metrics: Mutex<Metrics>,
    /// Spool directory the queue persists to, when configured.
    spool: Option<PathBuf>,
}

impl Shared {
    fn bump(&self, counter: Counter, by: u64) {
        self.metrics
            .lock()
            .expect("metrics poisoned")
            .bump(counter, by);
    }
}

/// Per-worker sink: formats each finished cell with the injected
/// formatter and publishes it on the job's line table.
struct LineSink {
    job: Arc<Job>,
    fmt_cell: CellFormatter,
}

impl CellConsumer for LineSink {
    fn consume(
        &mut self,
        index: usize,
        result: CellResult,
    ) -> io::Result<Option<hh_trace::TraceSink>> {
        let mut line = String::new();
        (self.fmt_cell)(&result, &mut line);
        // Persist before publishing: a line a streamer saw must survive
        // a crash, the other way round merely re-runs a cell.
        if let Some(spool) = &self.job.spool {
            spool.append_line(index, &line)?;
        }
        let mut state = self.job.state.lock().expect("job state poisoned");
        state.aggregate.observe(&result);
        state.lines[index] = Some(line);
        state.completed += 1;
        self.job.wake.notify_all();
        Ok(None)
    }
}

/// The campaign engine: a priority job queue, a single runner thread
/// fanning each job out over the work-stealing pool, and a process-wide
/// warm template cache. All methods take `&self`; share it in an
/// [`Arc`].
#[derive(Debug)]
pub struct JobManager {
    shared: Arc<Shared>,
    runner: Mutex<Option<JoinHandle<()>>>,
}

impl JobManager {
    /// Starts the manager (and its runner thread) with the given
    /// per-cell line formatter. In-memory only — the queue dies with
    /// the process; use [`JobManager::with_spool`] to persist it.
    pub fn new(fmt_cell: CellFormatter) -> Self {
        Self::with_spool(fmt_cell, None).expect("an in-memory manager does no I/O")
    }

    /// Starts the manager with an optional spool directory. When given,
    /// every submitted spec and completed cell line is persisted there,
    /// and any unfinished job found on disk is restored under its
    /// original id (FIFO by id, original priority) with its completed
    /// cells pre-filled — the runner skips them and their streamed
    /// bytes stay identical to an uninterrupted run. Aggregate
    /// statistics only cover cells run after the restart.
    ///
    /// # Errors
    ///
    /// Spool directory creation or scan failures.
    pub fn with_spool(fmt_cell: CellFormatter, spool: Option<PathBuf>) -> io::Result<Self> {
        let mut registry = Registry::default();
        if let Some(dir) = &spool {
            std::fs::create_dir_all(dir)?;
            restore_spool(dir, &mut registry)?;
        }
        let shared = Arc::new(Shared {
            fmt_cell,
            registry: Mutex::new(registry),
            queue_wake: Condvar::new(),
            templates: Mutex::new(HashMap::new()),
            metrics: Mutex::new(Metrics::default()),
            spool,
        });
        let runner = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hh-job-runner".to_string())
                .spawn(move || runner_loop(&shared))
                .expect("spawn runner thread")
        };
        Ok(Self {
            shared,
            runner: Mutex::new(Some(runner)),
        })
    }

    /// Validates and enqueues a job; returns its id.
    ///
    /// # Errors
    ///
    /// The spec's own validation message, or a refusal while the
    /// manager is shutting down.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, String> {
        spec.validate()?;
        let cells = spec.cell_count();
        let mut registry = self.shared.registry.lock().expect("registry poisoned");
        if registry.shutting_down {
            return Err("server is shutting down".to_string());
        }
        let id = registry.next_id;
        registry.next_id += 1;
        let seq = registry.next_seq;
        registry.next_seq += 1;
        let spool = match &self.shared.spool {
            Some(dir) => {
                let spool = JobSpool::for_job(dir, id);
                // Spec on disk before the job is visible: the spool
                // never holds a job it cannot rebuild.
                std::fs::write(&spool.spec_path, json::job_spec_to_json(&spec))
                    .map_err(|e| format!("spool write failed: {e}"))?;
                Some(spool)
            }
            None => None,
        };
        let job = Arc::new(Job {
            spec: spec.clone(),
            cancel: CancelToken::new(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                lines: vec![None; cells],
                completed: 0,
                start_order: None,
                aggregate: CampaignAggregate::default(),
            }),
            wake: Condvar::new(),
            spool,
        });
        registry.jobs.insert(id, job);
        registry.queue.push(QueueEntry {
            priority: spec.priority,
            seq,
            id,
        });
        drop(registry);
        self.shared.bump(Counter::ServerJobsSubmitted, 1);
        self.shared.queue_wake.notify_all();
        Ok(id)
    }

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.shared
            .registry
            .lock()
            .expect("registry poisoned")
            .jobs
            .get(&id)
            .cloned()
    }

    /// A point-in-time snapshot of a job, or `None` for unknown ids.
    pub fn status(&self, id: u64) -> Option<JobSnapshot> {
        let job = self.job(id)?;
        let state = job.state.lock().expect("job state poisoned");
        Some(JobSnapshot {
            id,
            status: state.status.clone(),
            priority: job.spec.priority,
            cells: state.lines.len(),
            completed: state.completed,
            start_order: state.start_order,
            aggregate: state.aggregate.clone(),
        })
    }

    /// Cancels a job: a queued job becomes [`JobStatus::Cancelled`]
    /// immediately, a running job has its [`CancelToken`] flipped (the
    /// runner marks it cancelled once in-flight cells drain). Returns
    /// the status observed at cancel time, or `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let job = self.job(id)?;
        let mut state = job.state.lock().expect("job state poisoned");
        let observed = state.status.clone();
        match state.status {
            JobStatus::Queued => {
                state.status = JobStatus::Cancelled;
                job.wake.notify_all();
                drop(state);
                if let Some(spool) = &job.spool {
                    spool.remove();
                }
                self.shared.bump(Counter::ServerJobsCancelled, 1);
            }
            JobStatus::Running => {
                job.cancel.cancel();
            }
            _ => {}
        }
        Some(observed)
    }

    /// Blocks until cell `index` of job `id` completes (returning its
    /// NDJSON line) or the job goes terminal without it. `None` for
    /// unknown ids or out-of-range indices.
    pub fn wait_line(&self, id: u64, index: usize) -> Option<LineWait> {
        let job = self.job(id)?;
        let mut state = job.state.lock().expect("job state poisoned");
        if index >= state.lines.len() {
            return None;
        }
        loop {
            if let Some(line) = &state.lines[index] {
                return Some(LineWait::Line(line.clone()));
            }
            if state.status.is_terminal() {
                return Some(LineWait::End(state.status.clone()));
            }
            state = job.wake.wait(state).expect("job state poisoned");
        }
    }

    /// Blocks until the job is terminal; returns the final snapshot
    /// (`None` for unknown ids).
    pub fn wait(&self, id: u64) -> Option<JobSnapshot> {
        let job = self.job(id)?;
        let mut state = job.state.lock().expect("job state poisoned");
        while !state.status.is_terminal() {
            state = job.wake.wait(state).expect("job state poisoned");
        }
        drop(state);
        self.status(id)
    }

    /// Serializes the `GET /metrics` body: queue depth, job/template
    /// counts, and the server counters.
    pub fn metrics_json(&self) -> String {
        let (depth, jobs) = {
            let registry = self.shared.registry.lock().expect("registry poisoned");
            (registry.queue.len(), registry.jobs.len())
        };
        let templates = self
            .shared
            .templates
            .lock()
            .expect("templates poisoned")
            .len();
        let metrics = self
            .shared
            .metrics
            .lock()
            .expect("metrics poisoned")
            .clone();
        let counters = [
            Counter::ServerRequests,
            Counter::ServerJobsSubmitted,
            Counter::ServerJobsCompleted,
            Counter::ServerJobsCancelled,
            Counter::ServerTemplateHits,
            Counter::ServerTemplateMisses,
        ]
        .iter()
        .map(|&c| format!("\"{}\": {}", c.name(), metrics.get(c)))
        .collect::<Vec<_>>()
        .join(", ");
        format!(
            "{{\"queue_depth\": {depth}, \"jobs\": {jobs}, \"templates\": {templates}, \
             \"counters\": {{{counters}}}}}"
        )
    }

    /// Current value of one server counter (used by tests/benches).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.shared
            .metrics
            .lock()
            .expect("metrics poisoned")
            .get(counter)
    }

    /// Begins shutdown: refuses new submissions, cancels every queued
    /// job, and tells the runner to exit after the job it is currently
    /// executing. Idempotent; does not block.
    pub fn shutdown(&self) {
        let drained: Vec<Arc<Job>> = {
            let mut registry = self.shared.registry.lock().expect("registry poisoned");
            if registry.shutting_down {
                return;
            }
            registry.shutting_down = true;
            let ids: Vec<u64> = registry.queue.drain().map(|e| e.id).collect();
            ids.iter()
                .filter_map(|id| registry.jobs.get(id).cloned())
                .collect()
        };
        for job in drained {
            let mut state = job.state.lock().expect("job state poisoned");
            if state.status == JobStatus::Queued {
                state.status = JobStatus::Cancelled;
                job.wake.notify_all();
                drop(state);
                if let Some(spool) = &job.spool {
                    spool.remove();
                }
                self.shared.bump(Counter::ServerJobsCancelled, 1);
            }
        }
        self.shared.queue_wake.notify_all();
    }

    /// Blocks until the runner thread has exited (call after
    /// [`JobManager::shutdown`]). Idempotent.
    pub fn join(&self) {
        let handle = self.runner.lock().expect("runner handle poisoned").take();
        if let Some(handle) = handle {
            handle.join().expect("runner thread panicked");
        }
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

/// Rebuilds the registry from a spool directory: every `job-<id>.json`
/// spec becomes a queued job under its original id (FIFO by id among
/// equal priorities), with the completed cell lines recorded in
/// `job-<id>.ndjson` pre-filled so the runner skips those cells.
fn restore_spool(dir: &Path, registry: &mut Registry) -> io::Result<()> {
    let mut found: Vec<(u64, JobSpec)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id) = name
            .strip_prefix("job-")
            .and_then(|n| n.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let text = std::fs::read_to_string(entry.path())?;
        match json::job_spec_from_json(&text).and_then(|s| s.validate().map(|()| s)) {
            Ok(spec) => found.push((id, spec)),
            Err(msg) => eprintln!("spool: skipping unreadable {name}: {msg}"),
        }
    }
    found.sort_by_key(|(id, _)| *id);
    for (id, spec) in found {
        let cells = spec.cell_count();
        let spool = JobSpool::for_job(dir, id);
        let mut lines: Vec<Option<String>> = vec![None; cells];
        if let Ok(text) = std::fs::read_to_string(&spool.lines_path) {
            let records: Vec<&str> = text.split('\n').collect();
            for (pos, raw) in records.iter().enumerate() {
                if raw.is_empty() {
                    continue;
                }
                let parsed = raw.split_once('\t').and_then(|(index, line)| {
                    index
                        .parse::<usize>()
                        .ok()
                        .filter(|i| *i < cells)
                        .map(|i| (i, line))
                });
                match parsed {
                    Some((index, line)) => lines[index] = Some(format!("{line}\n")),
                    // A crash can tear the final record; drop it and
                    // simply re-run that cell.
                    None if pos + 1 == records.len() => {}
                    None => eprintln!(
                        "spool: ignoring corrupt record {}:{}",
                        spool.lines_path.display(),
                        pos + 1
                    ),
                }
            }
        }
        let completed = lines.iter().filter(|l| l.is_some()).count();
        let priority = spec.priority;
        let job = Arc::new(Job {
            spec,
            cancel: CancelToken::new(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                lines,
                completed,
                start_order: None,
                aggregate: CampaignAggregate::default(),
            }),
            wake: Condvar::new(),
            spool: Some(spool),
        });
        registry.next_id = registry.next_id.max(id + 1);
        let seq = registry.next_seq;
        registry.next_seq += 1;
        registry.jobs.insert(id, job);
        registry.queue.push(QueueEntry { priority, seq, id });
    }
    Ok(())
}

fn runner_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut registry = shared.registry.lock().expect("registry poisoned");
            loop {
                if let Some(entry) = registry.queue.pop() {
                    if let Some(job) = registry.jobs.get(&entry.id).cloned() {
                        // Skip entries cancelled while queued.
                        let queued = {
                            let state = job.state.lock().expect("job state poisoned");
                            state.status == JobStatus::Queued
                        };
                        if queued {
                            let order = registry.next_start;
                            registry.next_start += 1;
                            break Some((job, order));
                        }
                    }
                    continue;
                }
                if registry.shutting_down {
                    break None;
                }
                registry = shared.queue_wake.wait(registry).expect("registry poisoned");
            }
        };
        let Some((job, order)) = job else { return };
        {
            let mut state = job.state.lock().expect("job state poisoned");
            state.status = JobStatus::Running;
            state.start_order = Some(order);
            job.wake.notify_all();
        }
        run_job(shared, &job);
    }
}

/// Fetches (or builds) the warm template for one scenario of a job.
fn warm_template(
    shared: &Shared,
    spec: &JobSpec,
    scenario: &hyperhammer::Scenario,
) -> Arc<MachineTemplate> {
    let rate = if spec.fault_rate == 0.0 {
        0.0_f64 // collapse -0.0 into +0.0: equal rates, one entry
    } else {
        spec.fault_rate
    };
    let key: TemplateKey = (
        scenario.name,
        scenario.variant().label(),
        rate.to_bits(),
        spec.fault_seed,
    );
    let mut cache = shared.templates.lock().expect("templates poisoned");
    if let Some(template) = cache.get(&key) {
        shared.bump(Counter::ServerTemplateHits, 1);
        return Arc::clone(template);
    }
    shared.bump(Counter::ServerTemplateMisses, 1);
    let template = Arc::new(MachineTemplate::for_scenario(scenario));
    cache.insert(key, Arc::clone(&template));
    template
}

fn run_job(shared: &Arc<Shared>, job: &Arc<Job>) {
    let grid = match job.spec.to_grid() {
        Ok(grid) => grid,
        Err(msg) => {
            job.set_status(JobStatus::Failed(msg));
            return;
        }
    };
    // Templates are built from the grid's scenarios (fault plan already
    // applied), keyed so only truly identical machines share.
    let templates: Vec<Arc<MachineTemplate>> = grid
        .scenarios()
        .iter()
        .map(|scenario| warm_template(shared, &job.spec, scenario))
        .collect();
    let refs: Vec<&MachineTemplate> = templates.iter().map(Arc::as_ref).collect();
    let cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let jobs = NonZeroUsize::new(job.spec.jobs.unwrap_or(cpus).max(1)).expect("max(1) is non-zero");
    // Cells restored from the spool (or already present for any other
    // reason) are skipped; their published lines stay as-is.
    let done: Vec<bool> = {
        let state = job.state.lock().expect("job state poisoned");
        state.lines.iter().map(Option::is_some).collect()
    };
    let outcome = grid.run_streamed_resume(jobs, &refs, &job.cancel, &|i| done[i], |_| LineSink {
        job: Arc::clone(job),
        fmt_cell: shared.fmt_cell,
    });
    match outcome {
        Ok(_) => {
            job.set_status(JobStatus::Done);
            shared.bump(Counter::ServerJobsCompleted, 1);
        }
        Err(StreamError::Cancelled) => {
            job.set_status(JobStatus::Cancelled);
            shared.bump(Counter::ServerJobsCancelled, 1);
        }
        Err(e) => {
            job.set_status(JobStatus::Failed(e.to_string()));
        }
    }
}

/// How long connection reads wait before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

#[derive(Debug)]
struct ServerCtx {
    manager: Arc<JobManager>,
    addr: SocketAddr,
    shutdown: AtomicBool,
}

/// The HTTP front of a [`JobManager`]: accepts connections on a
/// `TcpListener`, one handler thread per connection, keep-alive aware.
#[derive(Debug)]
pub struct CampaignServer {
    ctx: Arc<ServerCtx>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl CampaignServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving on background threads.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn start(addr: &str, fmt_cell: CellFormatter) -> io::Result<Self> {
        Self::start_with_spool(addr, fmt_cell, None)
    }

    /// [`CampaignServer::start`] with an optional spool directory the
    /// job queue persists to (see [`JobManager::with_spool`]): after a
    /// crash or kill, restarting with the same directory resumes every
    /// unfinished job from its last completed cell.
    ///
    /// # Errors
    ///
    /// Socket bind or spool directory failures.
    pub fn start_with_spool(
        addr: &str,
        fmt_cell: CellFormatter,
        spool: Option<PathBuf>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let ctx = Arc::new(ServerCtx {
            manager: Arc::new(JobManager::with_spool(fmt_cell, spool)?),
            addr: local,
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("hh-accept".to_string())
                .spawn(move || accept_loop(&listener, &ctx))
                .expect("spawn accept thread")
        };
        Ok(Self {
            ctx,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// The underlying engine (benches and tests drive it directly).
    pub fn manager(&self) -> &Arc<JobManager> {
        &self.ctx.manager
    }

    /// Begins shutdown: stops accepting, cancels queued jobs, lets the
    /// in-flight job finish. Idempotent; does not block.
    pub fn shutdown(&self) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.ctx.manager.shutdown();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.ctx.addr);
    }

    /// Blocks until every server thread (accept loop, connection
    /// handlers, job runner) has exited. Returns once a client's
    /// `POST /shutdown` — or a local [`CampaignServer::shutdown`] —
    /// has drained the server.
    pub fn join(&self) {
        let handle = self.accept.lock().expect("accept handle poisoned").take();
        if let Some(handle) = handle {
            handle.join().expect("accept thread panicked");
        }
        self.ctx.manager.join();
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<ServerCtx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Reap finished handlers so long-lived servers don't accumulate
        // join handles.
        handlers.retain(|h| !h.is_finished());
        let ctx = Arc::clone(ctx);
        let handle = std::thread::Builder::new()
            .name("hh-conn".to_string())
            .spawn(move || handle_connection(stream, &ctx))
            .expect("spawn connection thread");
        handlers.push(handle);
    }
    for handle in handlers {
        handle.join().expect("connection thread panicked");
    }
}

fn handle_connection(stream: TcpStream, ctx: &Arc<ServerCtx>) {
    // Poll-style reads so idle keep-alive connections notice shutdown.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(request) => request,
            Err(ParseError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(err) => {
                if let Some(resp) = error_response(&err) {
                    let _ = resp.write_to(&mut writer, false);
                }
                return;
            }
        };
        ctx.manager.shared.bump(Counter::ServerRequests, 1);
        let keep_alive = request.keep_alive;
        match route(ctx, &request, &mut writer) {
            Ok(Handled::Response(resp)) => {
                if resp.write_to(&mut writer, keep_alive).is_err() {
                    return;
                }
            }
            // Streamed bodies write themselves and always close.
            Ok(Handled::Streamed) => return,
            Err(_) => return,
        }
        if !keep_alive || ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

enum Handled {
    Response(Response),
    Streamed,
}

fn route(ctx: &Arc<ServerCtx>, request: &Request, writer: &mut TcpStream) -> io::Result<Handled> {
    let manager = &ctx.manager;
    let segments: Vec<&str> = request
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    let resp = match (request.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => Response::json(200, "{\"ok\": true}"),
        (Method::Get, ["metrics"]) => Response::json(200, manager.metrics_json()),
        (Method::Post, ["shutdown"]) => {
            let resp = Response::json(200, "{\"shutting_down\": true}");
            resp.write_to(writer, false)?;
            shutdown_from_handler(ctx);
            return Ok(Handled::Streamed);
        }
        (Method::Post, ["jobs"]) => match submit_body(manager, &request.body) {
            Ok((id, cells)) => Response::json(202, format!("{{\"id\": {id}, \"cells\": {cells}}}")),
            Err(msg) => Response::json(400, format!("{{\"error\": {}}}", json_escape(&msg))),
        },
        (Method::Get, ["jobs", id]) => {
            match id.parse::<u64>().ok().and_then(|id| manager.status(id)) {
                Some(snapshot) => Response::json(200, snapshot.to_json()),
                None => not_found(),
            }
        }
        (Method::Delete, ["jobs", id]) => match id.parse::<u64>().ok() {
            Some(id) => match manager.cancel(id) {
                Some(observed) => Response::json(
                    202,
                    format!(
                        "{{\"id\": {id}, \"was\": {}}}",
                        json_escape(observed.name())
                    ),
                ),
                None => not_found(),
            },
            None => not_found(),
        },
        (Method::Get, ["jobs", id, "stream"]) => match id.parse::<u64>().ok() {
            Some(id) if manager.status(id).is_some() => {
                stream_job(manager, id, writer)?;
                return Ok(Handled::Streamed);
            }
            _ => not_found(),
        },
        _ => Response::json(404, "{\"error\": \"no such route\"}"),
    };
    Ok(Handled::Response(resp))
}

fn not_found() -> Response {
    Response::json(404, "{\"error\": \"no such job\"}")
}

fn submit_body(manager: &JobManager, body: &[u8]) -> Result<(u64, usize), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body must be UTF-8 JSON".to_string())?;
    if text.trim().is_empty() {
        return Err("POST /jobs needs a JSON job spec body (with Content-Length)".to_string());
    }
    let spec = json::job_spec_from_json(text)?;
    let cells = spec.cell_count();
    let id = manager.submit(spec)?;
    Ok((id, cells))
}

/// Streams a job's NDJSON lines in grid order as a chunked response,
/// blocking on each cell until it completes. A cancelled job's stream
/// ends cleanly at the first cell that never ran.
fn stream_job(manager: &JobManager, id: u64, writer: &mut TcpStream) -> io::Result<()> {
    // Streaming writes must not inherit the poll-read timeout semantics
    // on platforms where it also bounds writes; reads are done anyway.
    let mut chunked = ChunkedWriter::start(writer, 200, "application/x-ndjson")?;
    let mut index = 0;
    while let Some(wait) = manager.wait_line(id, index) {
        match wait {
            LineWait::Line(line) => {
                chunked.write_chunk(line.as_bytes())?;
                index += 1;
            }
            LineWait::End(_) => break,
        }
    }
    chunked.finish()
}

/// Shutdown initiated from inside a connection handler: run the
/// blocking part on a detached thread so the handler (which the accept
/// loop joins) can exit immediately.
fn shutdown_from_handler(ctx: &Arc<ServerCtx>) {
    if ctx.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    ctx.manager.shutdown();
    let _ = TcpStream::connect(ctx.addr);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic test formatter (the real one lives in the CLI).
    fn fmt(result: &CellResult, out: &mut String) {
        out.push_str(&format!(
            "{{\"scenario\": \"{}\", \"seed\": {}}}\n",
            result.scenario, result.seed
        ));
    }

    fn tiny_spec() -> JobSpec {
        JobSpec {
            scenarios: vec!["tiny".to_string()],
            seeds: 2,
            attempts: 2,
            bits: 4,
            base_seed: 0xbeef,
            ..JobSpec::default()
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        heap.push(QueueEntry {
            priority: 1,
            seq: 0,
            id: 10,
        });
        heap.push(QueueEntry {
            priority: 5,
            seq: 1,
            id: 11,
        });
        heap.push(QueueEntry {
            priority: 5,
            seq: 2,
            id: 12,
        });
        heap.push(QueueEntry {
            priority: 0,
            seq: 3,
            id: 13,
        });
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.id).collect();
        assert_eq!(order, vec![11, 12, 10, 13]);
    }

    #[test]
    fn manager_runs_jobs_to_byte_identical_lines() {
        let manager = JobManager::new(fmt);
        let spec = tiny_spec();
        let id = manager.submit(spec.clone()).unwrap();
        let done = manager.wait(id).unwrap();
        assert_eq!(done.status, JobStatus::Done);
        assert_eq!(done.completed, spec.cell_count());
        assert!(done.aggregate.cells == spec.cell_count() as u64);

        // Reference: serial in-process run through the same spec path.
        let grid = spec.to_grid().unwrap();
        let results = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
        for (index, result) in results.iter().enumerate() {
            let mut expected = String::new();
            fmt(result, &mut expected);
            assert_eq!(
                manager.wait_line(id, index),
                Some(LineWait::Line(expected)),
                "cell {index} line must match the serial run"
            );
        }
    }

    #[test]
    fn warm_templates_are_shared_across_jobs() {
        let manager = JobManager::new(fmt);
        let first = manager.submit(tiny_spec()).unwrap();
        manager.wait(first).unwrap();
        assert_eq!(manager.counter(Counter::ServerTemplateMisses), 1);
        assert_eq!(manager.counter(Counter::ServerTemplateHits), 0);

        let second = manager.submit(tiny_spec()).unwrap();
        manager.wait(second).unwrap();
        assert_eq!(
            manager.counter(Counter::ServerTemplateMisses),
            1,
            "cache stays warm"
        );
        assert_eq!(manager.counter(Counter::ServerTemplateHits), 1);

        // A different fault plan must not share the warm template.
        let mut faulted = tiny_spec();
        faulted.fault_rate = 0.05;
        faulted.fault_seed = 7;
        let third = manager.submit(faulted).unwrap();
        manager.wait(third).unwrap();
        assert_eq!(manager.counter(Counter::ServerTemplateMisses), 2);
    }

    #[test]
    fn warm_templates_never_shared_across_variants() {
        let manager = JobManager::new(fmt);
        let base = manager.submit(tiny_spec()).unwrap();
        manager.wait(base).unwrap();
        assert_eq!(manager.counter(Counter::ServerTemplateMisses), 1);

        // Same base scenario name, different attack variant: the key
        // must differ even though `Scenario::name` is identical.
        let mut balloon = tiny_spec();
        balloon.scenarios = vec!["tiny@balloon".to_string()];
        let job = manager.submit(balloon).unwrap();
        manager.wait(job).unwrap();
        assert_eq!(
            manager.counter(Counter::ServerTemplateMisses),
            2,
            "tiny and tiny@balloon must not share a warm template"
        );
        assert_eq!(manager.counter(Counter::ServerTemplateHits), 0);

        // Re-submitting the variant job hits its own cached template.
        let mut again = tiny_spec();
        again.scenarios = vec!["tiny@balloon".to_string()];
        let job = manager.submit(again).unwrap();
        manager.wait(job).unwrap();
        assert_eq!(manager.counter(Counter::ServerTemplateMisses), 2);
        assert_eq!(manager.counter(Counter::ServerTemplateHits), 1);
    }

    #[test]
    fn warm_template_key_collapses_negative_zero_rate() {
        let manager = JobManager::new(fmt);
        let first = manager.submit(tiny_spec()).unwrap();
        manager.wait(first).unwrap();
        assert_eq!(manager.counter(Counter::ServerTemplateMisses), 1);

        // -0.0 == 0.0: the same (absent) fault plan must reuse the
        // template instead of splitting the cache on the sign bit.
        let mut negzero = tiny_spec();
        negzero.fault_rate = -0.0;
        let job = manager.submit(negzero).unwrap();
        manager.wait(job).unwrap();
        assert_eq!(manager.counter(Counter::ServerTemplateMisses), 1);
        assert_eq!(manager.counter(Counter::ServerTemplateHits), 1);
    }

    #[test]
    fn priority_decides_execution_order_behind_a_blocker() {
        let manager = JobManager::new(fmt);
        // While the blocker runs, both rivals sit in the queue; the
        // runner must pick the high-priority one first.
        let blocker = manager.submit(tiny_spec()).unwrap();
        let mut low = tiny_spec();
        low.priority = 1;
        let mut high = tiny_spec();
        high.priority = 9;
        let low = manager.submit(low).unwrap();
        let high = manager.submit(high).unwrap();
        manager.wait(blocker).unwrap();
        manager.wait(low).unwrap();
        manager.wait(high).unwrap();
        let low_order = manager.status(low).unwrap().start_order.unwrap();
        let high_order = manager.status(high).unwrap().start_order.unwrap();
        assert!(
            high_order < low_order,
            "priority 9 (order {high_order}) must start before priority 1 (order {low_order})"
        );
    }

    #[test]
    fn cancelling_a_queued_job_never_runs_it() {
        let manager = JobManager::new(fmt);
        let blocker = manager.submit(tiny_spec()).unwrap();
        let victim = manager.submit(tiny_spec()).unwrap();
        // The runner is busy with the blocker (or about to be); either
        // way the victim sits behind it in FIFO order, so cancel wins.
        let observed = manager.cancel(victim).unwrap();
        let done = manager.wait(victim).unwrap();
        if observed == JobStatus::Queued {
            assert_eq!(done.status, JobStatus::Cancelled);
            assert_eq!(done.completed, 0, "a queued-cancelled job runs no cells");
            assert_eq!(done.start_order, None);
        }
        manager.wait(blocker).unwrap();
        // The manager keeps serving after a cancellation.
        let after = manager.submit(tiny_spec()).unwrap();
        assert_eq!(manager.wait(after).unwrap().status, JobStatus::Done);
    }

    #[test]
    fn cancelling_a_running_job_keeps_finished_lines_valid() {
        let manager = JobManager::new(fmt);
        let mut spec = tiny_spec();
        spec.seeds = 12;
        spec.jobs = Some(1);
        let id = manager.submit(spec).unwrap();
        // Wait for the first cell so the job is demonstrably mid-run.
        let first = manager.wait_line(id, 0).unwrap();
        assert!(matches!(first, LineWait::Line(_)));
        manager.cancel(id).unwrap();
        let done = manager.wait(id).unwrap();
        assert!(done.completed >= 1);
        match done.status {
            JobStatus::Cancelled => assert!(done.completed < done.cells),
            JobStatus::Done => assert_eq!(done.completed, done.cells),
            other => panic!("unexpected terminal status {other:?}"),
        }
    }

    #[test]
    fn shutdown_cancels_queued_jobs_and_joins() {
        let manager = JobManager::new(fmt);
        let running = manager.submit(tiny_spec()).unwrap();
        let queued = manager.submit(tiny_spec()).unwrap();
        manager.shutdown();
        assert!(
            manager.submit(tiny_spec()).is_err(),
            "no submissions during shutdown"
        );
        manager.join();
        assert!(manager.wait(running).unwrap().status.is_terminal());
        let queued = manager.wait(queued).unwrap();
        assert!(queued.status.is_terminal());
    }

    #[test]
    fn spool_restores_unfinished_jobs_and_skips_completed_cells() {
        let dir = std::env::temp_dir().join(format!("hh-spool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Simulate a killed server: a spec on disk plus one completed
        // cell whose line carries marker bytes a re-run could never
        // produce — if it survives, the cell was really skipped.
        let spec = tiny_spec();
        std::fs::write(dir.join("job-7.json"), json::job_spec_to_json(&spec)).unwrap();
        std::fs::write(dir.join("job-7.ndjson"), "0\t{\"marker\": true}\n").unwrap();

        let manager = JobManager::with_spool(fmt, Some(dir.clone())).unwrap();
        let done = manager.wait(7).expect("job restored under its original id");
        assert_eq!(done.status, JobStatus::Done);
        assert_eq!(done.completed, spec.cell_count());
        assert_eq!(
            manager.wait_line(7, 0),
            Some(LineWait::Line("{\"marker\": true}\n".to_string()))
        );
        // The re-run cell matches the serial reference byte-for-byte.
        let grid = spec.to_grid().unwrap();
        let results = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
        let mut expected = String::new();
        fmt(&results[1], &mut expected);
        assert_eq!(manager.wait_line(7, 1), Some(LineWait::Line(expected)));
        // Terminal jobs clean up their spool files, and fresh ids
        // continue past the restored ones.
        assert!(!dir.join("job-7.json").exists());
        assert!(!dir.join("job-7.ndjson").exists());
        let next = manager.submit(tiny_spec()).unwrap();
        assert_eq!(next, 8, "ids continue after the restored job");
        manager.wait(next).unwrap();
        drop(manager);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_round_trip_submit_stream_cancel_shutdown() {
        let server = CampaignServer::start("127.0.0.1:0", fmt).unwrap();
        let addr = server.local_addr().to_string();
        let api = client::Client::new(&addr);

        assert!(api.healthz().unwrap().contains("true"));

        let spec = tiny_spec();
        let body = json::job_spec_to_json(&spec);
        let id = api.submit(&body).unwrap();
        let mut streamed = Vec::new();
        api.stream(id, &mut streamed).unwrap();

        // Byte-identity vs the in-process serial run.
        let grid = spec.to_grid().unwrap();
        let results = grid.run(NonZeroUsize::new(1).unwrap()).unwrap();
        let mut expected = String::new();
        for result in &results {
            fmt(result, &mut expected);
        }
        assert_eq!(String::from_utf8(streamed).unwrap(), expected);

        let status = api.status(id).unwrap();
        assert!(status.contains("\"status\": \"done\""), "got: {status}");

        // Unknown jobs 404, bad specs 400.
        assert!(api.status(999).is_err());
        assert!(api.submit("{\"scenarios\": [\"warp9\"]}").is_err());
        let metrics = api.metrics().unwrap();
        assert!(metrics.contains("server_jobs_submitted"), "got: {metrics}");

        // DELETE an (already finished) job answers with its status.
        let cancel = api.cancel(id).unwrap();
        assert!(cancel.contains("\"was\""), "got: {cancel}");

        api.shutdown().unwrap();
        server.join();
    }
}

//! Hand-rolled HTTP/1.1 message layer (std-only).
//!
//! Modeled on firecracker's `micro_http`: a blocking request reader
//! over `BufRead` with hard size limits, a plain response writer, and a
//! chunked-transfer writer for the NDJSON streaming endpoint. Only the
//! slice of HTTP/1.1 the campaign server needs is implemented — GET /
//! POST / DELETE, `Content-Length` bodies, keep-alive connections, and
//! `Transfer-Encoding: chunked` responses.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body (job specs are a few hundred bytes).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Request methods the server routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `DELETE`
    Delete,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// Request target as sent (path only; no scheme/authority support).
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Clean end of stream before a request line: the peer closed an
    /// idle keep-alive connection. Not an error worth responding to.
    Eof,
    /// Malformed request — respond `400` with the message.
    BadRequest(String),
    /// A `POST`/`DELETE` with a body but no `Content-Length` — `411`.
    LengthRequired,
    /// Head or body over the hard limits — respond `431`/`413`.
    TooLarge(String),
    /// The transport failed mid-request.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Eof => write!(f, "connection closed"),
            ParseError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ParseError::LengthRequired => write!(f, "Content-Length required"),
            ParseError::TooLarge(msg) => write!(f, "request too large: {msg}"),
            ParseError::Io(e) => write!(f, "request I/O: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Reads one `\r\n`-terminated line, charging its bytes against
/// `budget`. Returns the line without the terminator.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ParseError> {
    let mut raw = Vec::new();
    // Read byte-wise up to the budget so a header flood cannot buffer
    // unbounded memory before we notice it is over the limit.
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if raw.is_empty() {
                    return Err(ParseError::Eof);
                }
                return Err(ParseError::BadRequest("truncated line".to_string()));
            }
            Ok(_) => {}
            Err(e) => return Err(ParseError::Io(e)),
        }
        if *budget == 0 {
            return Err(ParseError::TooLarge(format!(
                "request head over {MAX_HEAD_BYTES} bytes"
            )));
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            break;
        }
        raw.push(byte[0]);
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ParseError::BadRequest("non-UTF-8 header".to_string()))
}

/// Reads and parses one request, enforcing [`MAX_HEAD_BYTES`] /
/// [`MAX_BODY_BYTES`].
///
/// # Errors
///
/// [`ParseError::Eof`] on a cleanly closed idle connection; the other
/// variants map to `4xx` responses.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "DELETE" => Method::Delete,
        other => {
            return Err(ParseError::BadRequest(format!(
                "unsupported method {other}"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(ParseError::BadRequest(format!(
                "unsupported version {other}"
            )))
        }
    };

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget) {
            Ok(line) => line,
            Err(ParseError::Eof) => {
                return Err(ParseError::BadRequest("truncated headers".to_string()))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => Some(
            v.parse::<usize>()
                .map_err(|_| ParseError::BadRequest(format!("unparseable Content-Length {v:?}")))?,
        ),
        None => None,
    };
    let body = match content_length {
        Some(len) if len > MAX_BODY_BYTES => {
            return Err(ParseError::TooLarge(format!(
                "body of {len} bytes over the {MAX_BODY_BYTES}-byte limit"
            )))
        }
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).map_err(ParseError::Io)?;
            body
        }
        // A POST that wants to carry a body must declare its length;
        // bodyless POSTs (e.g. /shutdown) are fine.
        None if method == Method::Post => Vec::new(),
        None => Vec::new(),
    };

    let keep_alive = match headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => http11,
    };

    Ok(Request {
        method,
        path: path.to_string(),
        headers,
        body,
        keep_alive,
    })
}

/// Reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// A complete (non-chunked) response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (the server speaks JSON throughout).
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// Writes status line, headers and body.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Maps a [`ParseError`] to the `4xx` response it deserves (`None` for
/// [`ParseError::Eof`]/[`ParseError::Io`], which get no response).
pub fn error_response(err: &ParseError) -> Option<Response> {
    let (status, msg) = match err {
        ParseError::Eof | ParseError::Io(_) => return None,
        ParseError::BadRequest(msg) => (400, msg.clone()),
        ParseError::LengthRequired => (411, "Content-Length required".to_string()),
        ParseError::TooLarge(msg) => {
            let status = if msg.contains("head") { 431 } else { 413 };
            (status, msg.clone())
        }
    };
    Some(Response::json(
        status,
        format!("{{\"error\": {}}}", json_escape(&msg)),
    ))
}

/// Serializes `s` as a JSON string literal (quotes included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writer for a `Transfer-Encoding: chunked` response body.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    inner: W,
    finished: bool,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the body writer. Chunked
    /// responses always close the connection when done: the streaming
    /// endpoint is a terminal request.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn start(mut inner: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            inner,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        )?;
        inner.flush()?;
        Ok(Self {
            inner,
            finished: false,
        })
    }

    /// Sends one chunk (empty input sends nothing — an empty chunk
    /// would terminate the stream).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", data.len())?;
        self.inner.write_all(data)?;
        self.inner.write_all(b"\r\n")?;
        self.inner.flush()
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn finish(mut self) -> io::Result<()> {
        self.finished = true;
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse(b"GET /jobs/7 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/jobs/7");
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"{\"a\": 1}\n");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /jobs\r\n\r\n",
            b"GET /jobs HTTP/1.1 extra\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
            b"PATCH /jobs HTTP/1.1\r\n\r\n",
            b"GET /jobs HTTP/2\r\n\r\n",
        ] {
            let err = parse(raw).expect_err("must reject");
            assert!(
                matches!(err, ParseError::BadRequest(_)),
                "{raw:?} gave {err:?}"
            );
            let resp = error_response(&err).expect("400 response");
            assert_eq!(resp.status, 400);
        }
    }

    #[test]
    fn rejects_bad_content_length_and_headers() {
        let err = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: many\r\n\r\n").unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)), "got {err:?}");
        let err = parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)), "got {err:?}");
        // Missing Content-Length on a bodyless POST is fine.
        let req = parse(b"POST /shutdown HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn enforces_size_limits() {
        // Oversized head: one huge header.
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        raw.extend_from_slice(b"\r\n\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, ParseError::TooLarge(_)), "got {err:?}");
        assert_eq!(error_response(&err).unwrap().status, 431);

        // Oversized body: declared length over the limit, body not sent.
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::TooLarge(_)), "got {err:?}");
        assert_eq!(error_response(&err).unwrap().status, 413);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, ParseError::Io(_)), "got {err:?}");
        assert!(error_response(&err).is_none());
    }

    #[test]
    fn keep_alive_connection_serves_sequential_requests() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n\
                    POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}\
                    GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let first = read_request(&mut reader).unwrap();
        assert_eq!(
            (first.method, first.path.as_str()),
            (Method::Get, "/healthz")
        );
        assert!(first.keep_alive);
        let second = read_request(&mut reader).unwrap();
        assert_eq!(second.method, Method::Post);
        assert_eq!(second.body, b"{}");
        assert!(second.keep_alive);
        let third = read_request(&mut reader).unwrap();
        assert_eq!(third.path, "/metrics");
        assert!(!third.keep_alive, "Connection: close honoured");
        // The stream is drained: the next read is a clean EOF.
        assert!(matches!(read_request(&mut reader), Err(ParseError::Eof)));
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive() {
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn response_and_chunked_writer_emit_wire_format() {
        let mut wire = Vec::new();
        Response::json(200, "{\"ok\": true}")
            .write_to(&mut wire, true)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"), "{text}");

        let mut wire = Vec::new();
        let mut chunked = ChunkedWriter::start(&mut wire, 200, "application/x-ndjson").unwrap();
        chunked.write_chunk(b"{\"cell\": 0}\n").unwrap();
        chunked.write_chunk(b"").unwrap(); // no-op, must not terminate
        chunked.write_chunk(b"{\"cell\": 1}\n").unwrap();
        chunked.finish().unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(
            text.ends_with("c\r\n{\"cell\": 0}\n\r\nc\r\n{\"cell\": 1}\n\r\n0\r\n\r\n"),
            "{text}"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}

//! Blocking HTTP/1.1 client for the campaign server (std-only).
//!
//! The client keeps one connection alive across requests: a
//! `submit`/`status`/`stream` sequence re-uses the same TCP stream
//! instead of paying a fresh handshake per call. A request that finds
//! the cached connection stale (the server closed it while idle) is
//! retried once on a fresh connection before it could have been
//! processed; streamed bodies end with the server closing, so those
//! connections are not cached back.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;

use crate::json::{self, Json};

/// A client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: String,
    /// Cached keep-alive connection; `None` until the first request or
    /// after a response that closed (or tainted) the stream.
    conn: Mutex<Option<BufReader<TcpStream>>>,
}

impl Clone for Client {
    /// Clones the address only; the clone opens its own connection.
    fn clone(&self) -> Self {
        Self::new(&self.addr)
    }
}

/// One decoded response.
#[derive(Debug)]
struct HttpResponse {
    status: u16,
    body: Vec<u8>,
}

impl Client {
    /// Creates a client for `addr` (`host:port`).
    pub fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_string(),
            conn: Mutex::new(None),
        }
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, String> {
        self.request_to(method, path, body, None)
            .map_err(|e| format!("{method} {path} against {}: {e}", self.addr))
    }

    /// Sends one request over the cached keep-alive connection
    /// (connecting fresh when there is none); a streamed (chunked) body
    /// is copied to `tee` as it arrives when given, in addition to
    /// being collected.
    fn request_to(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        tee: Option<&mut dyn Write>,
    ) -> io::Result<HttpResponse> {
        let mut cached = self.conn.lock().expect("client connection poisoned").take();
        loop {
            let reused = cached.is_some();
            let mut reader = match cached.take() {
                Some(reader) => reader,
                None => BufReader::new(TcpStream::connect(&self.addr)?),
            };
            // Send and read the status line in one fallible step: a
            // stale cached connection fails here — before the server
            // can have processed anything — and is retried once fresh.
            let opened = send_request(&mut reader, &self.addr, method, path, body)
                .and_then(|()| read_crlf_line(&mut reader))
                .and_then(|line| {
                    if line.is_empty() {
                        // EOF on a dead connection reads as an empty line.
                        Err(bad("connection closed before status line"))
                    } else {
                        Ok(line)
                    }
                });
            match opened {
                Ok(status_line) => {
                    let (response, alive) = read_response(&mut reader, &status_line, tee)?;
                    if alive {
                        *self.conn.lock().expect("client connection poisoned") = Some(reader);
                    }
                    return Ok(response);
                }
                Err(_) if reused => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn expect_ok(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
        let resp = self.request(method, path, body)?;
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        if (200..300).contains(&resp.status) {
            Ok(text)
        } else {
            Err(format!("{method} {path}: HTTP {}: {text}", resp.status))
        }
    }

    /// Submits a job-spec JSON document; returns the job id.
    ///
    /// # Errors
    ///
    /// Transport failures, non-2xx responses (the server's validation
    /// message is included), or an id-less response.
    pub fn submit(&self, spec_json: &str) -> Result<u64, String> {
        let body = self.expect_ok("POST", "/jobs", Some(spec_json))?;
        json::parse(&body)?
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("submit response without id: {body}"))
    }

    /// Fetches a job's status JSON.
    ///
    /// # Errors
    ///
    /// Transport failures or non-2xx responses (404 for unknown jobs).
    pub fn status(&self, id: u64) -> Result<String, String> {
        self.expect_ok("GET", &format!("/jobs/{id}"), None)
    }

    /// Cancels a job; returns the server's response body.
    ///
    /// # Errors
    ///
    /// Transport failures or non-2xx responses.
    pub fn cancel(&self, id: u64) -> Result<String, String> {
        self.expect_ok("DELETE", &format!("/jobs/{id}"), None)
    }

    /// Streams a job's NDJSON to `out` as chunks arrive, blocking until
    /// the job's stream ends.
    ///
    /// # Errors
    ///
    /// Transport failures or non-2xx responses.
    pub fn stream(&self, id: u64, out: &mut impl Write) -> Result<(), String> {
        let path = format!("/jobs/{id}/stream");
        let resp = self
            .request_to("GET", &path, None, Some(out))
            .map_err(|e| format!("GET {path} against {}: {e}", self.addr))?;
        if (200..300).contains(&resp.status) {
            Ok(())
        } else {
            Err(format!(
                "GET {path}: HTTP {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            ))
        }
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Transport failures or non-2xx responses.
    pub fn healthz(&self) -> Result<String, String> {
        self.expect_ok("GET", "/healthz", None)
    }

    /// `GET /metrics`.
    ///
    /// # Errors
    ///
    /// Transport failures or non-2xx responses.
    pub fn metrics(&self) -> Result<String, String> {
        self.expect_ok("GET", "/metrics", None)
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures or non-2xx responses.
    pub fn shutdown(&self) -> Result<(), String> {
        self.expect_ok("POST", "/shutdown", None).map(|_| ())
    }
}

/// Writes one keep-alive request onto the cached stream.
fn send_request(
    reader: &mut BufReader<TcpStream>,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    let stream = reader.get_mut();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Reads the headers and body following an already-read status line.
/// Returns the response and whether the connection may be cached for
/// the next request — only when the body was fully framed by
/// `Content-Length` and the server did not announce `Connection:
/// close` (the server closes after chunked streams, so those are never
/// cached back).
fn read_response(
    reader: &mut BufReader<TcpStream>,
    status_line: &str,
    mut tee: Option<&mut dyn Write>,
) -> io::Result<(HttpResponse, bool)> {
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut close = false;
    loop {
        let line = read_crlf_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = Some(value.parse().map_err(|_| bad("bad Content-Length"))?);
        } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_crlf_line(reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Consume the trailing CRLF after the last chunk.
                let _ = read_crlf_line(reader);
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            if let Some(tee) = tee.as_deref_mut() {
                tee.write_all(&chunk)?;
            }
            body.extend_from_slice(&chunk);
        }
    } else if let Some(len) = content_length {
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    let alive = !close && !chunked && content_length.is_some();
    Ok((HttpResponse { status, body }, alive))
}

fn read_crlf_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut raw = Vec::new();
    reader.read_until(b'\n', &mut raw)?;
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| bad("non-UTF-8 response line"))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

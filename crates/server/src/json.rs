//! Minimal JSON parsing for job specs (std-only).
//!
//! Numbers keep their raw lexeme so `u64` seeds survive beyond 2^53 —
//! a float round-trip would silently corrupt `base_seed`/`fault_seed`
//! values like `0xffff_ffff_ffff_fff1`.

use hyperhammer::JobSpec;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw lexeme.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        // Validate the lexeme is a number at all.
        raw.parse::<f64>()
            .map_err(|_| format!("invalid number {raw:?} at byte {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for job
                            // specs; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A position-annotated description of the first syntax problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

/// Decodes a job-spec JSON object into a [`JobSpec`], starting from the
/// spec defaults. Unknown keys are rejected by name so a typo like
/// `"seedz"` fails loudly instead of silently running the default.
///
/// # Errors
///
/// Syntax errors, unknown keys, wrong member types, or a spec that
/// fails [`JobSpec::validate`] (e.g. an unregistered scenario name).
pub fn job_spec_from_json(text: &str) -> Result<JobSpec, String> {
    let doc = parse(text)?;
    let Json::Obj(members) = &doc else {
        return Err("job spec must be a JSON object".to_string());
    };
    let mut spec = JobSpec::default();
    for (key, value) in members {
        match key.as_str() {
            "scenarios" => {
                let items = value
                    .as_array()
                    .ok_or("\"scenarios\" must be an array of names")?;
                spec.scenarios = items
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "\"scenarios\" entries must be strings".to_string())
                    })
                    .collect::<Result<_, _>>()?;
            }
            "seeds" => spec.seeds = need_usize(key, value)?,
            "base_seed" => spec.base_seed = need_u64(key, value)?,
            "attempts" => spec.attempts = need_usize(key, value)?,
            "bits" => spec.bits = need_usize(key, value)?,
            "jobs" => {
                spec.jobs = match value {
                    Json::Null => None,
                    _ => Some(need_usize(key, value)?),
                }
            }
            "priority" => {
                let raw = need_u64(key, value)?;
                spec.priority = u8::try_from(raw)
                    .map_err(|_| format!("\"priority\" must fit a u8, got {raw}"))?;
            }
            "fault_rate" => {
                spec.fault_rate = value.as_f64().ok_or("\"fault_rate\" must be a number")?;
            }
            "fault_seed" => spec.fault_seed = need_u64(key, value)?,
            "max_retries" => {
                let raw = need_u64(key, value)?;
                spec.max_retries = u32::try_from(raw)
                    .map_err(|_| format!("\"max_retries\" must fit a u32, got {raw}"))?;
            }
            "backoff_ms" => spec.backoff_ms = need_u64(key, value)?,
            other => {
                return Err(format!(
                    "unknown job-spec key {other:?} (known: scenarios, seeds, base_seed, \
                     attempts, bits, jobs, priority, fault_rate, fault_seed, max_retries, \
                     backoff_ms)"
                ))
            }
        }
    }
    spec.validate()?;
    Ok(spec)
}

fn need_usize(key: &str, value: &Json) -> Result<usize, String> {
    value
        .as_usize()
        .ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

fn need_u64(key: &str, value: &Json) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

/// Serializes a [`JobSpec`] back to the JSON the server accepts — used
/// by the CLI client so flag-built specs round-trip exactly.
pub fn job_spec_to_json(spec: &JobSpec) -> String {
    use crate::http::json_escape;
    let scenarios = spec
        .scenarios
        .iter()
        .map(|s| json_escape(s))
        .collect::<Vec<_>>()
        .join(", ");
    let jobs = match spec.jobs {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"scenarios\": [{scenarios}], \"seeds\": {}, \"base_seed\": {}, \
         \"attempts\": {}, \"bits\": {}, \"jobs\": {jobs}, \"priority\": {}, \
         \"fault_rate\": {}, \"fault_seed\": {}, \"max_retries\": {}, \"backoff_ms\": {}}}",
        spec.seeds,
        spec.base_seed,
        spec.attempts,
        spec.bits,
        spec.priority,
        spec.fault_rate,
        spec.fault_seed,
        spec.max_retries,
        spec.backoff_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn big_u64_seeds_survive() {
        let doc = parse(r#"{"base_seed": 18446744073709551615}"#).unwrap();
        assert_eq!(doc.get("base_seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn job_spec_round_trips_through_json() {
        let spec = JobSpec {
            scenarios: vec!["tiny".to_string(), "micro".to_string()],
            seeds: 3,
            base_seed: u64::MAX - 14,
            attempts: 7,
            bits: 5,
            jobs: Some(2),
            priority: 9,
            fault_rate: 0.25,
            fault_seed: 0xfa01,
            max_retries: 2,
            backoff_ms: 1,
        };
        let text = job_spec_to_json(&spec);
        let parsed = job_spec_from_json(&text).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn partial_spec_fills_defaults() {
        let spec = job_spec_from_json(r#"{"scenarios": ["tiny"], "seeds": 2}"#).unwrap();
        assert_eq!(spec.scenarios, vec!["tiny".to_string()]);
        assert_eq!(spec.seeds, 2);
        let defaults = JobSpec::default();
        assert_eq!(spec.attempts, defaults.attempts);
        assert_eq!(spec.bits, defaults.bits);
    }

    #[test]
    fn unknown_keys_and_bad_scenarios_fail_loudly() {
        let err = job_spec_from_json(r#"{"seedz": 2}"#).unwrap_err();
        assert!(err.contains("unknown job-spec key \"seedz\""), "got: {err}");
        assert!(err.contains("scenarios"), "error must list known keys");

        let err = job_spec_from_json(r#"{"scenarios": ["warp9"]}"#).unwrap_err();
        assert!(err.contains("unknown scenario warp9"), "got: {err}");
        assert!(err.contains("registered"), "got: {err}");

        let err = job_spec_from_json(r#"{"scenarios": "tiny"}"#).unwrap_err();
        assert!(err.contains("array"), "got: {err}");

        let err = job_spec_from_json(r#"{"priority": 300}"#).unwrap_err();
        assert!(err.contains("u8"), "got: {err}");
    }
}

//! Micro-benchmarks for the EPT: translation walks, hugepage
//! splits (the multihit countermeasure), and guest memory access.

use hh_bench::harness::{BatchSize, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hh_hv::{Host, HostConfig, VmConfig};
use hh_sim::Gpa;
use std::hint::black_box;

fn setup() -> (Host, hh_hv::Vm) {
    let mut host = Host::new(HostConfig::small_test());
    let vm = host.create_vm(VmConfig::small_test()).unwrap();
    (host, vm)
}

fn bench_ept(c: &mut Criterion) {
    let mut group = c.benchmark_group("ept");

    group.bench_function("translate_huge", |b| {
        let (host, vm) = setup();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 0x1337) % (16 << 20);
            black_box(vm.translate_gpa(&host, Gpa::new(i)).unwrap())
        })
    });

    group.bench_function("translate_4k_after_split", |b| {
        let (mut host, mut vm) = setup();
        vm.exec_gpa(&mut host, Gpa::new(0)).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 0x137) % (2 << 20);
            black_box(vm.translate_gpa(&host, Gpa::new(i)).unwrap())
        })
    });

    group.bench_function("multihit_split", |b| {
        b.iter_batched(
            setup,
            |(mut host, mut vm)| {
                // Split every chunk of boot memory once.
                for i in 0..2u64 {
                    vm.exec_gpa(&mut host, Gpa::new(i << 21)).unwrap();
                }
                (host, vm)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("guest_read_u64", |b| {
        let (mut host, mut vm) = setup();
        vm.write_u64_gpa(&mut host, Gpa::new(0x4000), 42).unwrap();
        b.iter(|| black_box(vm.read_u64_gpa(&host, Gpa::new(0x4000)).unwrap()))
    });

    group.bench_function("vm_create_destroy", |b| {
        b.iter_batched_ref(
            || Host::new(HostConfig::small_test()),
            |host| {
                let vm = host.create_vm(VmConfig::small_test()).unwrap();
                vm.destroy(host);
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_ept);
criterion_main!(benches);

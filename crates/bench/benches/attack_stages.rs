//! Criterion benchmarks for the attack stages on the tiny scenario:
//! noise exhaustion, EPT spraying, magic stamping and corruption scans.

use hh_bench::harness::{BatchSize, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hyperhammer::exploit::{magic_of, ExploitParams, Exploiter};
use hyperhammer::machine::Scenario;
use hyperhammer::steering::PageSteering;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    group.sample_size(10);
    group.meta("tiny_demo", 0);

    // Every stage hammers through the device's plan cache: repeated
    // patterns (noise exhaustion probes, stability re-hammers) compile
    // once per device and hit thereafter.
    let scenario = Scenario::tiny_demo();

    group.bench_function("exhaust_noise_2k_mappings", |b| {
        b.iter_batched(
            || {
                let mut host = scenario.boot_host();
                let vm = host.create_vm(scenario.vm_config()).unwrap();
                (host, vm)
            },
            |(mut host, mut vm)| {
                let steering = PageSteering::new(scenario.steering_params());
                black_box(steering.exhaust_noise(&mut host, &mut vm).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("spray_ept_48_hugepages", |b| {
        b.iter_batched(
            || {
                let mut host = scenario.boot_host();
                let vm = host.create_vm(scenario.vm_config()).unwrap();
                (host, vm)
            },
            |(mut host, mut vm)| {
                let steering = PageSteering::new(scenario.steering_params());
                black_box(steering.spray_ept(&mut host, &mut vm, 96 << 20).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("stamp_magic_96mib", |b| {
        b.iter_batched(
            || {
                let mut host = scenario.boot_host();
                let vm = host.create_vm(scenario.vm_config()).unwrap();
                (host, vm)
            },
            |(mut host, mut vm)| {
                let ex = Exploiter::new(ExploitParams::paper());
                black_box(ex.stamp_magic(&mut host, &mut vm).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("scan_magic_clean", |b| {
        let mut host = scenario.boot_host();
        let mut vm = host.create_vm(scenario.vm_config()).unwrap();
        let ex = Exploiter::new(ExploitParams::paper());
        ex.stamp_magic(&mut host, &mut vm).unwrap();
        let (base, len) = vm.usable_ranges()[0];
        b.iter(|| black_box(vm.scan_magic(&mut host, base, len, &magic_of)))
    });

    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);

//! Throughput scaling of the deterministic parallel campaign engine.
//!
//! Runs the same (tiny_demo × 8 seed) campaign grid on 1, 2, 4 and 8
//! workers. Results are bit-identical across worker counts (asserted
//! here against the serial reference), so the only thing that changes
//! is wall-clock time — the per-worker-count sample times ARE the
//! scaling curve.

use std::num::NonZeroUsize;

use hh_bench::harness::{quick, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hyperhammer::driver::DriverParams;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::CampaignGrid;
use std::hint::black_box;

fn grid() -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        ..DriverParams::paper()
    };
    let seeds = if quick() { 4 } else { 8 };
    CampaignGrid::new(vec![Scenario::tiny_demo()], params, 3).with_seed_count(0x5ca1e, seeds)
}

fn bench_scaling(c: &mut Criterion) {
    let grid = grid();
    let reference = grid.run_serial().expect("serial reference runs");

    let worker_counts: &[usize] = if quick() { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(if quick() { 3 } else { 10 });
    group.meta("tiny_demo", 0x5ca1e);
    for &workers in worker_counts {
        let jobs = NonZeroUsize::new(workers).expect("non-zero");
        let name = format!("tiny_demo_{}cells_{workers}w", grid.len());
        group.bench_function(&name, |b| {
            b.iter(|| {
                let results = grid.run(jobs).expect("grid runs");
                assert_eq!(results, reference, "determinism across worker counts");
                black_box(results)
            })
        });
    }
    group.finish();

    // Throughput summary: best-of-3 wall clock per worker count, as
    // cells/second and speedup over the 1-worker run. Flat scaling on a
    // single-CPU machine is expected — the grid's cells are pure CPU.
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let cells = grid.len();
    println!("\ncampaign throughput ({cells} cells, {cores} CPUs available):");
    let timings = if quick() { 1 } else { 3 };
    let mut base = None;
    for &workers in worker_counts {
        let jobs = NonZeroUsize::new(workers).expect("non-zero");
        let best = (0..timings)
            .map(|_| {
                let t0 = std::time::Instant::now();
                black_box(grid.run(jobs).expect("grid runs"));
                t0.elapsed()
            })
            .min()
            .expect("at least one timing");
        let cells_per_sec = grid.len() as f64 / best.as_secs_f64();
        let speedup = base.get_or_insert(best).as_secs_f64() / best.as_secs_f64();
        println!(
            "  {workers} worker(s): {:>8.1} ms | {cells_per_sec:>6.1} cells/s | {speedup:.2}x",
            best.as_secs_f64() * 1e3
        );
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);

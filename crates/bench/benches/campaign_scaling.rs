//! Throughput scaling of the deterministic parallel campaign engine.
//!
//! Runs tiny_demo campaign grids of several sizes on 1, 2, 4 and 8
//! workers. Results are bit-identical across worker counts (asserted
//! here against the serial reference), so the only thing that changes
//! is wall-clock time — the per-worker-count sample times ARE the
//! scaling curve.
//!
//! Worker counts are requests: [`CampaignGrid::run`] clamps the
//! effective width to the machine's available parallelism, so on a
//! single-CPU host every variant degenerates to the serial fast path
//! and the curve is flat at ~1.0x (the pre-clamp engine was ~24 %
//! *slower* at 4 workers there). The ≥1.5x speedup check therefore
//! only fires on machines with at least 4 CPUs.

use std::num::NonZeroUsize;

use hh_bench::harness::{quick, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hyperhammer::driver::DriverParams;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::CampaignGrid;
use std::hint::black_box;

fn grid(cells: usize) -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        ..DriverParams::paper()
    };
    CampaignGrid::new(vec![Scenario::tiny_demo()], params, 3).with_seed_count(0x5ca1e, cells)
}

fn bench_scaling(c: &mut Criterion) {
    // Quick mode keeps the historical 4-cell variants (baseline
    // continuity) plus an 8-cell grid; full mode runs the 8- and
    // 32-cell grids from the scaling experiment.
    let cell_counts: &[usize] = if quick() { &[4, 8] } else { &[8, 32] };
    let worker_counts: &[usize] = if quick() { &[1, 4] } else { &[1, 2, 4, 8] };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(if quick() { 3 } else { 10 });
    group.meta("tiny_demo", 0x5ca1e);
    for &cells in cell_counts {
        let grid = grid(cells);
        let reference = grid.run_serial().expect("serial reference runs");
        for &workers in worker_counts {
            let jobs = NonZeroUsize::new(workers).expect("non-zero");
            let name = format!("tiny_demo_{cells}cells_{workers}w");
            group.bench_function(&name, |b| {
                b.iter(|| {
                    let results = grid.run(jobs).expect("grid runs");
                    assert_eq!(results, reference, "determinism across worker counts");
                    black_box(results)
                })
            });
        }
    }
    group.finish();

    // Throughput summary: best-of-N wall clock per worker count, as
    // cells/second and speedup over the 1-worker run.
    let timings = if quick() { 1 } else { 3 };
    for &cells in cell_counts {
        let grid = grid(cells);
        println!("\ncampaign throughput ({cells} cells, {cores} CPUs available):");
        let mut base = None;
        let mut speedup_at_4 = None;
        for &workers in worker_counts {
            let jobs = NonZeroUsize::new(workers).expect("non-zero");
            let best = (0..timings)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    black_box(grid.run(jobs).expect("grid runs"));
                    t0.elapsed()
                })
                .min()
                .expect("at least one timing");
            let cells_per_sec = grid.len() as f64 / best.as_secs_f64();
            let speedup = base.get_or_insert(best).as_secs_f64() / best.as_secs_f64();
            if workers == 4 {
                speedup_at_4 = Some(speedup);
            }
            println!(
                "  {workers} worker(s): {:>8.1} ms | {cells_per_sec:>6.1} cells/s | {speedup:.2}x",
                best.as_secs_f64() * 1e3
            );
        }
        if let Some(speedup) = speedup_at_4 {
            if cores >= 4 && cells >= 8 {
                assert!(
                    speedup >= 1.5,
                    "4 workers on {cells} cells only reached {speedup:.2}x (expected >= 1.5x \
                     with {cores} CPUs)"
                );
            } else if cells >= 8 {
                println!(
                    "  (skipping the >=1.5x @ 4-worker check: only {cores} CPU(s) available, \
                     workers are clamped)"
                );
            }
        }
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);

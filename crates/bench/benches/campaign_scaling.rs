//! Throughput scaling of the deterministic parallel campaign engine,
//! plus the bounded-memory streaming series (`campaign_memory`): peak
//! RSS of a `run_streamed` campaign must stay flat as the grid grows,
//! and each record carries `peak_rss_kib` so bench-diff guards the
//! ceiling across commits.
//!
//! Runs tiny_demo campaign grids of several sizes on 1, 2, 4 and 8
//! workers. Results are bit-identical across worker counts (asserted
//! here against the serial reference), so the only thing that changes
//! is wall-clock time — the per-worker-count sample times ARE the
//! scaling curve.
//!
//! Worker counts are requests: [`CampaignGrid::run`] clamps the
//! effective width to the machine's available parallelism, so on a
//! single-CPU host every variant degenerates to the serial fast path
//! and the curve is flat at ~1.0x (the pre-clamp engine was ~24 %
//! *slower* at 4 workers there). The ≥1.5x speedup check therefore
//! only fires on machines with at least 4 CPUs.

use std::num::NonZeroUsize;

use hh_bench::harness::{quick, BatchSize, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hyperhammer::driver::DriverParams;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::{CampaignGrid, CellResult};
use hyperhammer::streamref::{merge_shards, CampaignAggregate, CampaignStreamer};
use std::hint::black_box;

fn grid(cells: usize) -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        ..DriverParams::paper()
    };
    CampaignGrid::new(vec![Scenario::tiny_demo()], params, 3).with_seed_count(0x5ca1e, cells)
}

fn bench_scaling(c: &mut Criterion) {
    // Quick mode keeps the historical 4-cell variants (baseline
    // continuity) plus an 8-cell grid; full mode runs the 8- and
    // 32-cell grids from the scaling experiment.
    let cell_counts: &[usize] = if quick() { &[4, 8] } else { &[8, 32] };
    let worker_counts: &[usize] = if quick() { &[1, 4] } else { &[1, 2, 4, 8] };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(if quick() { 3 } else { 10 });
    group.meta("tiny_demo", 0x5ca1e);
    for &cells in cell_counts {
        let grid = grid(cells);
        let reference = grid.run_serial().expect("serial reference runs");
        for &workers in worker_counts {
            let jobs = NonZeroUsize::new(workers).expect("non-zero");
            let name = format!("tiny_demo_{cells}cells_{workers}w");
            group.bench_function(&name, |b| {
                b.iter(|| {
                    let results = grid.run(jobs).expect("grid runs");
                    assert_eq!(results, reference, "determinism across worker counts");
                    black_box(results)
                })
            });
        }
    }
    group.finish();

    // Throughput summary: best-of-N wall clock per worker count, as
    // cells/second and speedup over the 1-worker run.
    let timings = if quick() { 1 } else { 3 };
    for &cells in cell_counts {
        let grid = grid(cells);
        println!("\ncampaign throughput ({cells} cells, {cores} CPUs available):");
        let mut base = None;
        let mut speedup_at_4 = None;
        for &workers in worker_counts {
            let jobs = NonZeroUsize::new(workers).expect("non-zero");
            let best = (0..timings)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    black_box(grid.run(jobs).expect("grid runs"));
                    t0.elapsed()
                })
                .min()
                .expect("at least one timing");
            let cells_per_sec = grid.len() as f64 / best.as_secs_f64();
            let speedup = base.get_or_insert(best).as_secs_f64() / best.as_secs_f64();
            if workers == 4 {
                speedup_at_4 = Some(speedup);
            }
            println!(
                "  {workers} worker(s): {:>8.1} ms | {cells_per_sec:>6.1} cells/s | {speedup:.2}x",
                best.as_secs_f64() * 1e3
            );
        }
        if let Some(speedup) = speedup_at_4 {
            if cores >= 4 && cells >= 8 {
                assert!(
                    speedup >= 1.5,
                    "4 workers on {cells} cells only reached {speedup:.2}x (expected >= 1.5x \
                     with {cores} CPUs)"
                );
            } else if cells >= 8 {
                println!(
                    "  (skipping the >=1.5x @ 4-worker check: only {cores} CPU(s) available, \
                     workers are clamped)"
                );
            }
        }
    }
}

/// One full streaming run: spill to a scratch dir, merge into the
/// void, fold the aggregate — the production pipeline minus stdout.
fn run_streamed_discard(grid: &CampaignGrid, jobs: NonZeroUsize, dir: &std::path::Path) {
    type Fmt = fn(&CellResult, &mut String);
    let fmt_cell: Fmt = |r, out| {
        use std::fmt::Write as _;
        writeln!(
            out,
            "{} {} {}",
            r.seed,
            r.catalog_bits,
            r.stats.attempts.len()
        )
        .expect("write to String");
    };
    let fmt_trace: Fmt = |_, _| {};
    let consumers = grid
        .run_streamed(jobs, |worker| {
            CampaignStreamer::new(dir, worker, false, fmt_cell, fmt_trace)
        })
        .expect("streamed grid runs");
    let mut aggregates = Vec::new();
    let mut shards = Vec::new();
    for consumer in consumers {
        let (aggregate, cells, _) = consumer.finish().expect("spill flush");
        aggregates.push(aggregate);
        shards.extend(cells);
    }
    merge_shards(shards, grid.len(), &mut std::io::sink()).expect("shards tile the grid");
    black_box(CampaignAggregate::merged(&aggregates));
}

/// The bounded-memory series: peak RSS of a streaming campaign must not
/// grow with cell count. Runs before `bench_scaling` because `VmHWM` is
/// a process-wide monotonic high-water mark — in-memory grid runs would
/// raise it past anything the streaming path allocates.
fn bench_memory(c: &mut Criterion) {
    let params = DriverParams {
        bits_per_attempt: 4,
        ..DriverParams::paper()
    };
    let make_grid = |cells| {
        CampaignGrid::new(vec![Scenario::micro_demo()], params.clone(), 2)
            .with_seed_count(0x111c40, cells)
    };
    let jobs = NonZeroUsize::new(2).expect("non-zero");
    let cell_counts: [usize; 2] = if quick() { [64, 512] } else { [64, 4096] };
    let dir = std::env::temp_dir().join(format!("hh-bench-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create spill dir");

    let mut group = c.benchmark_group("campaign_memory");
    group.sample_size(2);
    group.meta("micro_demo", 0x111c40);
    let mut peaks = Vec::new();
    for cells in cell_counts {
        let grid = make_grid(cells);
        group.bench_function(&format!("micro_stream_{cells}cells_2w"), |b| {
            b.iter_batched(
                || (),
                |()| run_streamed_discard(&grid, jobs, &dir),
                BatchSize::SmallInput,
            );
            // Stamped into the JSON record so bench-diff tracks the
            // memory ceiling across commits like any other number.
            b.record_peak_rss();
        });
        peaks.push(hh_sim::mem::peak_rss_kib());
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);

    // The point of streaming: a {64,~8}x bigger grid stays within 2x
    // the small grid's peak (slack for allocator hysteresis), where the
    // in-memory path grows O(cells).
    if let (Some(Some(small)), Some(Some(large))) = (peaks.first().copied(), peaks.last().copied())
    {
        println!(
            "\ncampaign memory: {} cells peaked at {small} KiB, {} cells at {large} KiB",
            cell_counts[0], cell_counts[1]
        );
        assert!(
            large <= small * 2,
            "streaming peak RSS grew with cell count: {small} KiB -> {large} KiB"
        );
    }
}

/// Per-variant cost of a campaign cell: one micro cell per attack
/// variant, so bench-diff catches any variant's pipeline getting
/// disproportionately slower. Also asserts the five-variant grid stays
/// bit-identical across worker counts — the property the variant-matrix
/// CI stage byte-compares end to end.
fn bench_variants(c: &mut Criterion) {
    use hyperhammer::machine::AttackVariant;

    let params = DriverParams {
        bits_per_attempt: 4,
        ..DriverParams::paper()
    };
    let scenarios: Vec<Scenario> = AttackVariant::ALL
        .iter()
        .map(|v| Scenario::micro_demo().with_variant(*v))
        .collect();
    let grid = CampaignGrid::new(scenarios, params.clone(), 2).with_seed_count(0x7a21a, 1);
    let reference = grid.run_serial().expect("serial reference runs");
    for workers in [2, 4] {
        let jobs = NonZeroUsize::new(workers).expect("non-zero");
        let results = grid.run(jobs).expect("grid runs");
        assert_eq!(results, reference, "variant grid determinism at {workers}w");
    }

    let mut group = c.benchmark_group("campaign_variants");
    group.sample_size(if quick() { 3 } else { 10 });
    group.meta("micro_demo", 0x7a21a);
    let serial = NonZeroUsize::new(1).expect("non-zero");
    for variant in AttackVariant::ALL {
        let cell = CampaignGrid::new(
            vec![Scenario::micro_demo().with_variant(variant)],
            params.clone(),
            2,
        )
        .with_seed_count(0x7a21a, 1);
        group.bench_function(&format!("micro_{}_1cell", variant.label()), |b| {
            b.iter(|| black_box(cell.run(serial).expect("cell runs")))
        });
    }
    group.finish();
}

/// Absolute path of the release `hyperhammer-sim` binary, building it
/// if a bench run got here before anything else did.
fn release_cli() -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map_or_else(|| root.join("target"), std::path::PathBuf::from);
    let bin = target.join("release/hyperhammer-sim");
    if !bin.exists() {
        let built = std::process::Command::new("cargo")
            .args(["build", "--release", "--offline", "-p", "hyperhammer-cli"])
            .current_dir(&root)
            .status()
            .expect("spawn cargo build");
        assert!(built.success(), "building hyperhammer-cli failed");
    }
    bin
}

/// Warm-server jobs vs cold CLI starts: submitting to a long-lived
/// [`hh_server::JobManager`] (machine template already cached, process
/// already up) must beat spawning `hyperhammer-sim campaign` cold for
/// the same spec — the whole point of running a daemon.
fn bench_server(c: &mut Criterion) {
    use hh_server::JobManager;
    use hyperhammer::JobSpec;

    let fmt: fn(&CellResult, &mut String) = |r, out| {
        use std::fmt::Write as _;
        writeln!(out, "{} {}", r.seed, r.catalog_bits).expect("write to String");
    };
    // A minimal job (one cell, one attempt): the smaller the campaign,
    // the larger the share of a cold start that is pure start-up cost.
    let spec = JobSpec {
        scenarios: vec!["tiny".to_string()],
        seeds: 1,
        base_seed: 0x5e12e,
        attempts: 1,
        bits: 4,
        jobs: Some(1),
        ..JobSpec::default()
    };
    let warm_job = |manager: &JobManager| {
        let id = manager.submit(spec.clone()).expect("submit");
        let snapshot = manager.wait(id).expect("job exists");
        assert_eq!(snapshot.completed, snapshot.cells, "job ran to completion");
        black_box(snapshot);
    };
    let cli = release_cli();
    let cold_cli = || {
        let out = std::process::Command::new(&cli)
            .args([
                "campaign",
                "--scenarios",
                "tiny",
                "--seeds",
                "1",
                "--base-seed",
                "385326", // 0x5e12e — the same spec the warm job runs
                "--attempts",
                "1",
                "--bits",
                "4",
                "--jobs",
                "1",
                "--json",
            ])
            .output()
            .expect("spawn hyperhammer-sim");
        assert!(out.status.success(), "cold CLI campaign failed");
        black_box(out.stdout);
    };

    let warm = JobManager::new(fmt);
    warm_job(&warm); // prime the template cache

    let mut group = c.benchmark_group("campaign_server");
    group.sample_size(if quick() { 2 } else { 5 });
    group.meta("tiny_demo", 0x5e12e);
    group.bench_function("tiny_cold_cli_start", |b| b.iter(cold_cli));
    group.bench_function("tiny_warm_job", |b| b.iter(|| warm_job(&warm)));
    group.finish();

    // Headline check. Cold and warm timings are interleaved (so slow
    // drift hits both alike) and compared on best-of-N, where scheduler
    // noise cancels and what remains is the start-up cost the daemon
    // elides: process spawn, machine-template build, first-touch
    // allocations.
    let timings = if quick() { 5 } else { 9 };
    let time_one = |f: &dyn Fn()| {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed()
    };
    let mut colds = Vec::new();
    let mut warms = Vec::new();
    for _ in 0..timings {
        colds.push(time_one(&cold_cli));
        warms.push(time_one(&|| warm_job(&warm)));
    }
    let cold_best = colds.iter().min().copied().expect("timed at least once");
    let warm_best = warms.iter().min().copied().expect("timed at least once");
    println!(
        "\ncampaign server: cold {:.1} ms vs warm {:.1} ms ({:.2}x)",
        cold_best.as_secs_f64() * 1e3,
        warm_best.as_secs_f64() * 1e3,
        cold_best.as_secs_f64() / warm_best.as_secs_f64()
    );
    // The mechanism behind the gap is deterministic even when the
    // wall clock is not: every job after the priming one must hit the
    // template cache.
    use hh_trace::Counter;
    let misses = warm.counter(Counter::ServerTemplateMisses);
    let hits = warm.counter(Counter::ServerTemplateHits);
    assert_eq!(misses, 1, "only the priming job may build a template");
    assert!(hits >= timings as u64, "warm jobs must hit the cache");

    // The wall-clock comparison itself is only trustworthy with real
    // cores behind it — on a 1-CPU host the warm path's thread handoffs
    // (submit -> runner -> wait) cost as much as the spawn they save,
    // and scheduler noise swamps the residue. Same convention as the
    // scaling bench's >=1.5x check.
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    if cores >= 4 {
        assert!(
            warm_best.as_secs_f64() <= cold_best.as_secs_f64() * 1.10,
            "warm-server job ({warm_best:?}) should not lose to a cold CLI start ({cold_best:?})"
        );
    } else {
        println!(
            "  (skipping the warm<=cold wall-clock check: only {cores} CPU(s) available, \
             thread-handoff noise dominates)"
        );
    }
}

criterion_group!(
    benches,
    bench_memory,
    bench_scaling,
    bench_variants,
    bench_server
);
criterion_main!(benches);

//! Micro-benchmarks for the DRAM model: address mapping,
//! hammer bursts, and timing-probe measurements.

use hh_bench::harness::{BatchSize, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hh_dram::geometry::{BankFunction, DramGeometry};
use hh_dram::timing::{AccessTiming, TimingProbe};
use hh_dram::{DimmProfile, DramDevice, HammerPattern};
use hh_sim::Hpa;
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");

    let geom = DramGeometry::new(BankFunction::core_i3_10100(), 1 << 30);
    group.bench_function("bank_of", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x40_1040) & ((1 << 30) - 1);
            black_box(geom.bank_of(Hpa::new(addr)))
        })
    });

    group.bench_function("addr_in_bank_row", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(geom.addr_in((i % 32) as u32, i % 1024))
        })
    });

    group.bench_function("hammer_burst_single_sided", |b| {
        b.iter_batched_ref(
            || {
                let mut dev = DramDevice::new(DimmProfile::test_profile(64 << 20), 99);
                dev.fill(Hpa::new(0), 64 << 20, 0xff);
                dev
            },
            |dev| {
                let pattern = HammerPattern::single_sided_for(dev.geometry(), 3, 100);
                black_box(dev.hammer(&pattern, 250_000))
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("timing_probe_pair", |b| {
        let probe = TimingProbe::new(geom.clone(), AccessTiming::ddr4_2666());
        let mut i = 0u64;
        b.iter(|| {
            i += 0x1040;
            black_box(probe.measure_pair(Hpa::new(0), Hpa::new(i & ((1 << 30) - 1))))
        })
    });

    group.bench_function("store_fill_2mib", |b| {
        b.iter_batched_ref(
            || DramDevice::new(DimmProfile::test_profile(64 << 20), 1),
            |dev| dev.fill(Hpa::new(0), 2 << 20, 0x55),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);

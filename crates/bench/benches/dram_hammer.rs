//! Micro-benchmarks for the DRAM model: address mapping, hammer-plan
//! compilation, hammer bursts (cold and cached plans), and timing-probe
//! measurements.

use hh_bench::harness::{BatchSize, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hh_dram::geometry::{BankFunction, DramGeometry};
use hh_dram::timing::{AccessTiming, TimingProbe};
use hh_dram::{DimmProfile, DramDevice, HammerPattern};
use hh_sim::Hpa;
use std::hint::black_box;

const DIMM: u64 = 64 << 20;
const SEED: u64 = 99;
const ROUNDS: u64 = 250_000;

fn device() -> DramDevice {
    let mut dev = DramDevice::new(DimmProfile::test_profile(DIMM), SEED);
    dev.fill(Hpa::new(0), DIMM, 0xff);
    dev
}

fn pattern(dev: &DramDevice) -> HammerPattern {
    // Bank 3 / row 80 deterministically flips cells at this seed, so the
    // burst benches exercise the full path (TRR, thresholds, RNG draws,
    // store writes) and the JSON report gets a non-zero flips/sec.
    HammerPattern::single_sided_for(dev.geometry(), 3, 80)
}

/// Deterministic flips of the first burst on a fresh device — every
/// batched sample below starts from this exact state.
fn flips_per_burst() -> usize {
    let mut dev = device();
    let p = pattern(&dev);
    dev.hammer(&p, ROUNDS).flips.len()
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.meta("test_profile_64mib", SEED);
    let flips = flips_per_burst();

    let geom = DramGeometry::new(BankFunction::core_i3_10100(), 1 << 30);
    group.bench_function("bank_of", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x40_1040) & ((1 << 30) - 1);
            black_box(geom.bank_of(Hpa::new(addr)))
        })
    });

    group.bench_function("addr_in_bank_row", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(geom.addr_in((i % 32) as u32, i % 1024))
        })
    });

    group.bench_function("plan_compile_single_sided", |b| {
        b.iter_batched_ref(
            || {
                let dev = device();
                let p = pattern(&dev);
                (dev, p)
            },
            |(dev, p)| black_box(dev.compile_plan(p)),
            BatchSize::SmallInput,
        )
    });

    // The headline burst bench: plan warmed in setup, so the routine
    // measures a cache-hit burst — the steady state of every profiling /
    // steering / exploit loop.
    group.bench_function("hammer_burst_single_sided", |b| {
        b.iter_batched_ref(
            || {
                let mut dev = device();
                let p = pattern(&dev);
                dev.warm_plan(&p);
                (dev, p)
            },
            |(dev, p)| black_box(dev.hammer(p, ROUNDS)),
            BatchSize::SmallInput,
        );
        b.flips_per_iter(flips as f64);
    });

    // Worst case: cold cache, the burst pays for its own compile.
    group.bench_function("hammer_burst_cold_plan", |b| {
        b.iter_batched_ref(
            || {
                let dev = device();
                let p = pattern(&dev);
                (dev, p)
            },
            |(dev, p)| black_box(dev.hammer(p, ROUNDS)),
            BatchSize::SmallInput,
        );
        b.flips_per_iter(flips as f64);
    });

    // Steady-state plan reuse on one long-lived device, the way the
    // profiler's stability loop re-hammers: no per-burst setup at all.
    group.bench_function("hammer_planned_steady_state", |b| {
        let mut dev = device();
        let p = pattern(&dev);
        let plan = dev.plan_for(&p);
        b.iter(|| black_box(dev.hammer_planned(&plan, ROUNDS)))
    });

    group.bench_function("timing_probe_pair", |b| {
        let probe = TimingProbe::new(geom.clone(), AccessTiming::ddr4_2666());
        let mut i = 0u64;
        b.iter(|| {
            i += 0x1040;
            black_box(probe.measure_pair(Hpa::new(0), Hpa::new(i & ((1 << 30) - 1))))
        })
    });

    group.bench_function("store_fill_2mib", |b| {
        b.iter_batched_ref(
            || DramDevice::new(DimmProfile::test_profile(DIMM), 1),
            |dev| dev.fill(Hpa::new(0), 2 << 20, 0x55),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
